"""Benchmark-harness helpers.

Each ``test_eXX_*.py`` regenerates one experiment of EXPERIMENTS.md: it
computes the experiment's table once (module-scoped fixture), asserts
the reproduction targets, writes the rendered table to
``benchmarks/out/EXX.txt``, echoes it to the terminal, and times the
experiment's hot path with pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).resolve().parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def publish(out_dir):
    """Write an experiment's rendered table and echo it."""

    def _publish(experiment_id: str, text: str) -> None:
        path = out_dir / f"{experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[{experiment_id} written to {path}]")

    return _publish
