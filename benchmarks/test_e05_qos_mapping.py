"""E5 — §6 QoS mapping: maxBitRate / avgBitRate tables + presets.

Regenerates the mapping the prototype computes for every stored variant:
``maxBitRate = (maximum frame length) × (frame rate)`` etc., plus the
[Ste 90] delay/jitter/loss presets (video: jitter 10 ms, loss 0.003).
"""

import pytest

from repro.core.mapping import QoSMapper
from repro.documents.builder import DEFAULT_RATE_MODEL, MonomediaBuilder
from repro.documents.media import AudioGrade, Codecs, ColorMode, Language
from repro.documents.quality import AudioQoS, VideoQoS
from repro.network.qosparams import STEINMETZ_PRESETS
from repro.util.tables import render_table
from repro.util.units import format_bitrate

FRAME_RATES = (5, 15, 25, 30, 60)
GRADES = (AudioGrade.TELEPHONE, AudioGrade.RADIO, AudioGrade.CD)


def _video_variant(frame_rate: int):
    builder = MonomediaBuilder("e5.video", "video", "clip", 60.0)
    builder.add_variant(
        Codecs.MPEG1,
        VideoQoS(color=ColorMode.COLOR, frame_rate=frame_rate, resolution=720),
        "server-a",
    )
    return builder.build().variants[0]


def _audio_variant(grade: AudioGrade):
    builder = MonomediaBuilder("e5.audio", "audio", "track", 60.0)
    builder.add_variant(
        Codecs.MPEG_AUDIO,
        AudioQoS(grade=grade, language=Language.ENGLISH),
        "server-a",
    )
    return builder.build().variants[0]


@pytest.fixture(scope="module")
def mapping_rows():
    mapper = QoSMapper()
    video_rows = []
    for rate in FRAME_RATES:
        variant = _video_variant(rate)
        spec = mapper.flow_spec(variant)
        stats = variant.block_stats
        # The §6 formulas, verified literally.
        assert spec.max_bit_rate == pytest.approx(stats.max_block_bits * rate)
        assert spec.avg_bit_rate == pytest.approx(stats.avg_block_bits * rate)
        video_rows.append(
            (f"video color/720px @{rate} f/s",
             format_bitrate(spec.max_bit_rate),
             format_bitrate(spec.avg_bit_rate),
             f"{spec.max_jitter_s * 1e3:.0f} ms",
             f"{spec.max_loss_rate:g}")
        )
    audio_rows = []
    for grade in GRADES:
        variant = _audio_variant(grade)
        spec = mapper.flow_spec(variant)
        stats = variant.block_stats
        assert spec.max_bit_rate == pytest.approx(
            stats.max_block_bits * stats.blocks_per_second
        )
        audio_rows.append(
            (f"audio {grade}",
             format_bitrate(spec.max_bit_rate),
             format_bitrate(spec.avg_bit_rate),
             f"{spec.max_jitter_s * 1e3:.0f} ms",
             f"{spec.max_loss_rate:g}")
        )
    return video_rows + audio_rows


def test_e05_mapping_table(benchmark, mapping_rows, publish):
    mapper = QoSMapper()
    variants = [_video_variant(r) for r in FRAME_RATES] + [
        _audio_variant(g) for g in GRADES
    ]
    benchmark(lambda: [mapper.flow_spec(v) for v in variants])

    # Paper presets: video jitter 10 ms, loss 0.003.
    assert STEINMETZ_PRESETS["video"].jitter_s == pytest.approx(0.010)
    assert STEINMETZ_PRESETS["video"].loss_rate == pytest.approx(0.003)

    publish(
        "E05",
        render_table(
            ("stream", "maxBitRate", "avgBitRate", "jitter bound",
             "loss bound"),
            mapping_rows,
            title="E5 - Sec 6 mapping: user QoS -> system parameters "
                  "(maxBitRate = max frame length x frame rate)",
        ),
    )
