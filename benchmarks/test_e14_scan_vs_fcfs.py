"""E14 — ablation: SCAN vs FCFS round scheduling in the CMFS.

The CMFS substrate serves each admitted stream once per round; SCAN
orders the reads by track position.  This ablation measures the mean
abstract seek cost per round for both policies over many randomized
rounds — the design reason the round scheduler exists.

Target: SCAN's mean seek cost is strictly below FCFS's, and never above
it on any sampled round (elevator order is optimal for a single sweep).
"""

import numpy as np
import pytest

from repro.cmfs.disk import DiskModel
from repro.cmfs.scheduler import RoundScheduler, SchedulingPolicy
from repro.util.tables import render_table

SEED = 99
ROUNDS = 200
STREAMS = (2, 8, 24)


def mean_seek_cost(policy: SchedulingPolicy, n_streams: int) -> float:
    rng = np.random.default_rng(SEED)
    total = 0.0
    for _ in range(ROUNDS):
        scheduler = RoundScheduler(DiskModel(), policy)
        for i, position in enumerate(rng.random(n_streams)):
            scheduler.add_stream(f"s{i}", 1e6, track_position=float(position))
        total += scheduler.plan_round().seek_cost
    return total / ROUNDS


@pytest.fixture(scope="module")
def results():
    return {
        (policy, n): mean_seek_cost(policy, n)
        for policy in SchedulingPolicy
        for n in STREAMS
    }


def test_e14_scan_beats_fcfs(benchmark, results, publish):
    benchmark(lambda: mean_seek_cost(SchedulingPolicy.SCAN, 8))

    rows = []
    for n in STREAMS:
        fcfs = results[(SchedulingPolicy.FCFS, n)]
        scan = results[(SchedulingPolicy.SCAN, n)]
        assert scan < fcfs, f"{n} streams"
        rows.append(
            (n, f"{fcfs:.2f}", f"{scan:.2f}", f"{fcfs / scan:.1f}x")
        )
    publish(
        "E14",
        render_table(
            ("streams/round", "FCFS mean seek", "SCAN mean seek",
             "improvement"),
            rows,
            title=f"E14 - ablation: round scheduling policy "
                  f"({ROUNDS} randomized rounds, seed {SEED})",
        ),
    )
