"""Standalone entry point for the negotiation throughput benchmark.

Thin wrapper over :mod:`repro.perf.bench` so the harness can be run
directly from a checkout without installing the package::

    PYTHONPATH=src python benchmarks/bench_negotiation.py [--quick]

Equivalent to ``python -m repro bench``.  Writes
``BENCH_negotiation.json`` and exits non-zero when the streaming and
full-sort pipelines commit different offers on any seed scenario.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.perf.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
