"""E3 — §5.2.2 setting (2): cost importance 0 ("the QoS is the main
constraint").  Paper: OIF {20, 23, 24, 27}; order offer4, offer3,
offer2, offer1.
"""

import pytest

from repro.core.classification import classify_offers
from repro.paperdata import (
    EXPECTED_OIF_SETTING_2,
    EXPECTED_ORDER_SETTING_2,
    importance_setting_2,
    section_5_offers,
    section_521_profile,
)
from repro.util.tables import render_table


@pytest.fixture(scope="module")
def ranked():
    importance = importance_setting_2()
    profile = section_521_profile(importance)
    return classify_offers(section_5_offers(), profile, importance)


def test_e03_oif_and_order(benchmark, ranked, publish):
    importance = importance_setting_2()
    profile = section_521_profile(importance)
    offers = section_5_offers()

    benchmark(lambda: classify_offers(offers, profile, importance))

    measured_order = tuple(c.offer.offer_id for c in ranked)
    assert measured_order == EXPECTED_ORDER_SETTING_2

    rows = []
    for rank, classified in enumerate(ranked, start=1):
        name = classified.offer.offer_id
        expected = EXPECTED_OIF_SETTING_2[name]
        assert classified.oif == pytest.approx(expected), name
        rows.append(
            (rank, name, str(classified.sns), classified.oif, expected)
        )
    publish(
        "E03",
        render_table(
            ("rank", "offer", "SNS", "OIF (measured)", "OIF (paper)"),
            rows,
            title="E3 - Sec 5.2.2 setting 2 (cost importance 0): "
                  f"paper order {', '.join(EXPECTED_ORDER_SETTING_2)}",
        ),
    )
