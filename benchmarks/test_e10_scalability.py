"""E10 — classification at scale: vectorized vs scalar.

§5's classification runs over the cartesian offer space, which grows as
variants^monomedia.  This experiment measures enumeration+classification
time as the space grows and verifies the vectorized path's speedup over
the scalar reference while producing identical rankings (the equivalence
is property-tested; here we time it).
"""

import time

import pytest

from repro.client.machine import ClientMachine
from repro.core.classification import classify_offers, classify_space
from repro.core.cost import default_cost_model
from repro.core.enumeration import build_offer_space
from repro.core.importance import default_importance
from repro.core.profile_manager import standard_profiles
from repro.documents.builder import make_news_article
from repro.documents.media import Codecs, ColorMode
from repro.util.tables import render_table

PROFILE = next(p for p in standard_profiles() if p.name == "balanced")


def space_of_size(frame_rates, colors, resolutions):
    document = make_news_article(
        "doc.e10",
        video_codecs=(Codecs.MPEG1, Codecs.MPEG2),
        frame_rates=frame_rates,
        colors=colors,
        resolutions=resolutions,
        audio_servers=("server-a", "server-b"),
    )
    client = ClientMachine("c1")
    return build_offer_space(document, client, default_cost_model())


SIZES = {
    "small": ((25, 15), (ColorMode.COLOR,), (720,)),
    "medium": ((25, 15, 5), (ColorMode.COLOR, ColorMode.GREY), (720,)),
    "large": (
        (25, 15, 10, 5),
        (ColorMode.COLOR, ColorMode.GREY, ColorMode.BLACK_AND_WHITE),
        (720, 360),
    ),
}


@pytest.fixture(scope="module")
def timings():
    importance = default_importance()
    rows = []
    for label, (rates, colors, resolutions) in SIZES.items():
        space = space_of_size(rates, colors, resolutions)

        start = time.perf_counter()
        vectorized = classify_space(space, PROFILE, importance, top_k=10)
        t_vector = time.perf_counter() - start

        start = time.perf_counter()
        scalar = classify_offers(space.materialize(), PROFILE, importance)
        t_scalar = time.perf_counter() - start

        assert [c.offer.variant_ids for c in vectorized] == [
            c.offer.variant_ids for c in scalar[:10]
        ]
        rows.append((label, space.offer_count, t_scalar, t_vector))
    return rows


def test_e10_scalability(benchmark, timings, publish):
    importance = default_importance()
    space = space_of_size(*SIZES["large"])
    benchmark(lambda: classify_space(space, PROFILE, importance, top_k=10))

    rows = [
        (
            label,
            count,
            f"{t_scalar * 1e3:.1f} ms",
            f"{t_vector * 1e3:.1f} ms",
            f"{t_scalar / t_vector:.1f}x",
        )
        for label, count, t_scalar, t_vector in timings
    ]
    # The vectorized classifier must win on the largest space.
    label, count, t_scalar, t_vector = timings[-1]
    assert t_vector < t_scalar

    publish(
        "E10",
        render_table(
            ("space", "offers", "scalar classify", "vectorized (top-10)",
             "speedup"),
            rows,
            title="E10 - enumeration+classification cost vs offer-space "
                  "size (identical top-10 rankings)",
        ),
    )
