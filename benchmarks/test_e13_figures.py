"""F1–F7 — the paper's figures regenerated from live objects.

Figure 1 (document model) and Figure 2 (MM profile) render as structure
trees; Figures 3–7 (the QoS GUI windows) render as text windows driven
by the profile manager and a real negotiation outcome.
"""

import pytest

from repro.client.machine import ClientMachine
from repro.cmfs import MediaServer
from repro.core import ProfileManager, QoSManager
from repro.documents import make_news_article
from repro.metadata import MetadataDatabase
from repro.network import Topology, TransportSystem
from repro.ui import (
    audio_profile_window,
    cost_profile_window,
    document_model_figure,
    information_window,
    main_window,
    mm_profile_figure,
    profile_component_window,
    video_profile_window,
)


@pytest.fixture(scope="module")
def deployment():
    document = make_news_article("doc.f")
    database = MetadataDatabase()
    database.insert_document(document)
    topology = Topology()
    topology.connect("client-net", "backbone", 100e6)
    topology.connect("backbone", "server-a-net", 155e6)
    topology.connect("backbone", "server-b-net", 155e6)
    servers = {
        server.server_id: server
        for server in (MediaServer("server-a"), MediaServer("server-b"))
    }
    manager = QoSManager(
        database=database,
        transport=TransportSystem(topology),
        servers=servers,
    )
    return document, manager


def test_f1_f2_structure_figures(benchmark, deployment, publish):
    document, _ = deployment
    profiles = ProfileManager()
    profile = profiles.get("balanced")

    benchmark(lambda: document_model_figure(document))

    fig1 = document_model_figure(document)
    fig2 = mm_profile_figure(profile)
    assert "multimedia" in fig1 and "Variant" in fig1
    assert "MM profile (desired)" in fig2 and "importance profile" in fig2
    publish(
        "F01-F02",
        "Figure 1 - document model (instantiated):\n" + fig1
        + "\n\nFigure 2 - MM profile (instantiated):\n" + fig2,
    )


def test_f3_f7_gui_windows(benchmark, deployment, publish):
    document, manager = deployment
    profiles = ProfileManager()
    profile = profiles.get("balanced")
    client = ClientMachine("alice", access_point="client-net")

    result = manager.negotiate(document.document_id, profile, client)

    def render_all():
        return "\n\n".join(
            (
                main_window(profiles),
                profile_component_window(profile),
                video_profile_window(profile, offer=result.user_offer),
                audio_profile_window(profile, offer=result.user_offer),
                cost_profile_window(profile),
                information_window(result),
            )
        )

    text = benchmark(render_all)
    assert "QoS GUI" in text           # Fig. 3/4 main window
    assert "Profile components" in text  # Fig. 5
    assert "Video profile" in text       # Fig. 6
    assert "Information" in text         # Fig. 7
    assert "SUCCEEDED" in text
    publish("F03-F07", "Figures 3-7 - the QoS GUI windows:\n\n" + text)
    result.commitment.release()
