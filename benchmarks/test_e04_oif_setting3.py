"""E4 — §5.2.2 setting (3): all QoS importances 0, cost importance 4
("the cost is the main constraint").

Paper: OIF {−10, −16, −12, −20} and the printed order offer1, offer3,
offer2, offer4 — the *pure-OIF* order.  Under the SNS-primary rule the
paper states in §5.2.2(c), offer4 (the only ACCEPTABLE offer) would rank
first; the COST_GATED policy (cost overrun breaks acceptability)
recovers the printed order.  All three policies are tabled.
"""

import pytest

from repro.core.classification import ClassificationPolicy, classify_offers
from repro.paperdata import (
    EXPECTED_OIF_SETTING_3,
    EXPECTED_ORDER_SETTING_3,
    importance_setting_3,
    section_5_offers,
    section_521_profile,
)
from repro.util.tables import render_table


@pytest.fixture(scope="module")
def per_policy():
    importance = importance_setting_3()
    profile = section_521_profile(importance)
    offers = section_5_offers()
    return {
        policy: classify_offers(offers, profile, importance, policy=policy)
        for policy in ClassificationPolicy
    }


def test_e04_oif_values_and_orders(benchmark, per_policy, publish):
    importance = importance_setting_3()
    profile = section_521_profile(importance)
    offers = section_5_offers()

    benchmark(
        lambda: classify_offers(
            offers, profile, importance, policy=ClassificationPolicy.PURE_OIF
        )
    )

    # OIF values match the paper exactly under every policy.
    for ranked in per_policy.values():
        for classified in ranked:
            assert classified.oif == pytest.approx(
                EXPECTED_OIF_SETTING_3[classified.offer.offer_id]
            )

    pure = tuple(
        c.offer.offer_id for c in per_policy[ClassificationPolicy.PURE_OIF]
    )
    gated = tuple(
        c.offer.offer_id for c in per_policy[ClassificationPolicy.COST_GATED]
    )
    sns_primary = tuple(
        c.offer.offer_id for c in per_policy[ClassificationPolicy.SNS_PRIMARY]
    )
    assert pure == EXPECTED_ORDER_SETTING_3          # the paper's printed order
    assert gated == EXPECTED_ORDER_SETTING_3         # recovered via cost gating
    assert sns_primary[0] == "offer4"                # the stated rule's order

    rows = [
        ("paper (printed)", ", ".join(EXPECTED_ORDER_SETTING_3)),
        ("pure-OIF", ", ".join(pure)),
        ("cost-gated", ", ".join(gated)),
        ("sns-primary (stated rule)", ", ".join(sns_primary)),
    ]
    oif_rows = [
        (name, EXPECTED_OIF_SETTING_3[name])
        for name in ("offer1", "offer2", "offer3", "offer4")
    ]
    publish(
        "E04",
        render_table(
            ("offer", "OIF (measured = paper)"), oif_rows,
            title="E4 - Sec 5.2.2 setting 3 (QoS importance 0, cost 4)",
        )
        + "\n\n"
        + render_table(
            ("policy", "classification order"), rows,
            title="E4 - order per classification policy "
                  "(see DESIGN.md: paper example follows pure OIF)",
        ),
    )
