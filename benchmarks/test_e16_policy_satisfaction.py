"""E16 — ablation: classification policy vs user satisfaction.

§5.1 argues that classifying by cost alone or QoS alone "is neither
optimal nor suitable".  This ablation runs the identical workload under
each classification policy (plus the cost-only/qos-only baselines) and
measures *satisfaction*: the fraction of all requests ending SUCCEEDED —
served with both the QoS and the cost the user asked for.

Target: the paper's SNS-primary classification achieves the highest
satisfaction; cost-only serves many requests but satisfies fewer.
"""

import pytest

from repro.core.classification import ClassificationPolicy
from repro.sim.baselines import CostOnlyNegotiator, QoSOnlyNegotiator, SmartNegotiator
from repro.sim.experiment import RunConfig, run_workload
from repro.sim.scenario import ScenarioSpec, build_scenario
from repro.sim.workload import WorkloadSpec, generate_requests
from repro.util.tables import render_table

SEED = 71
RATE = 0.2
HORIZON = 900.0
SPEC = ScenarioSpec(server_count=2, client_count=2, document_count=4)


def run_policy(label):
    scenario = build_scenario(SPEC)
    if label in ("cost-only", "qos-only"):
        negotiator = (
            CostOnlyNegotiator(scenario.manager)
            if label == "cost-only"
            else QoSOnlyNegotiator(scenario.manager)
        )
    else:
        scenario.manager.policy = ClassificationPolicy(label)
        negotiator = SmartNegotiator(scenario.manager)
    requests = generate_requests(
        WorkloadSpec(arrival_rate_per_s=RATE, horizon_s=HORIZON),
        scenario.document_ids(),
        list(scenario.clients),
        rng=SEED,
    )
    return run_workload(
        scenario, negotiator, requests,
        config=RunConfig(adaptation_enabled=False),
    )


LABELS = ("sns-primary", "pure-oif", "cost-gated", "cost-only", "qos-only")


@pytest.fixture(scope="module")
def sweep():
    return {label: run_policy(label) for label in LABELS}


def test_e16_policy_satisfaction(benchmark, sweep, publish):
    benchmark.pedantic(
        lambda: run_policy("sns-primary"), rounds=2, iterations=1
    )

    rows = []
    for label in LABELS:
        stats = sweep[label]
        counts = stats.statuses
        satisfaction = counts.success_rate
        rows.append(
            (
                label,
                counts.total,
                counts.served,
                counts.succeeded,
                f"{satisfaction * 100:.1f}%",
                str(stats.revenue),
            )
        )

    best = max(LABELS, key=lambda l: sweep[l].statuses.success_rate)
    # The paper's policy satisfies at least as many users as any
    # single-criterion alternative.
    assert (
        sweep["sns-primary"].statuses.success_rate
        >= sweep["cost-only"].statuses.success_rate
    )
    assert (
        sweep["sns-primary"].statuses.success_rate
        >= sweep["qos-only"].statuses.success_rate
    )

    publish(
        "E16",
        render_table(
            ("policy", "requests", "served", "SUCCEEDED", "satisfaction",
             "revenue"),
            rows,
            title=f"E16 - ablation: classification policy vs user "
                  f"satisfaction (best: {best}; load {RATE}/s, seed {SEED})",
        ),
    )
