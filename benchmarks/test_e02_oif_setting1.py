"""E2 — §5.2.2 setting (1): OIF values and classification order.

Importance: color 9, grey 6, b&w 2, TV resolution 9, 25 f/s 9,
15 f/s 5, cost importance 4.  Paper: OIF {10, 7, 12, 7}; classification
offer4, offer3, offer1, offer2 (SNS primary, OIF secondary).
"""

import pytest

from repro.core.classification import classify_offers
from repro.paperdata import (
    EXPECTED_OIF_SETTING_1,
    EXPECTED_ORDER_SETTING_1,
    importance_setting_1,
    section_5_offers,
    section_521_profile,
)
from repro.util.tables import render_table


@pytest.fixture(scope="module")
def ranked():
    importance = importance_setting_1()
    profile = section_521_profile(importance)
    return classify_offers(section_5_offers(), profile, importance)


def test_e02_oif_and_order(benchmark, ranked, publish):
    importance = importance_setting_1()
    profile = section_521_profile(importance)
    offers = section_5_offers()

    benchmark(lambda: classify_offers(offers, profile, importance))

    measured_order = tuple(c.offer.offer_id for c in ranked)
    assert measured_order == EXPECTED_ORDER_SETTING_1

    rows = []
    for rank, classified in enumerate(ranked, start=1):
        name = classified.offer.offer_id
        expected = EXPECTED_OIF_SETTING_1[name]
        assert classified.oif == pytest.approx(expected), name
        rows.append(
            (rank, name, str(classified.sns), classified.oif, expected,
             str(classified.offer.cost))
        )
    publish(
        "E02",
        render_table(
            ("rank", "offer", "SNS", "OIF (measured)", "OIF (paper)", "cost"),
            rows,
            title="E2 - Sec 5.2.2 setting 1 (cost importance 4): "
                  f"paper order {', '.join(EXPECTED_ORDER_SETTING_1)}",
        ),
    )
