"""E1 — §5.2.1 worked example: static negotiation status per offer.

Regenerates the paper's table: offers 1–3 CONSTRAINT, offer 4 ACCEPTABLE
(QoS equal to desired, cost above the maximum), and times the SNS
computation.
"""

import pytest

from repro.core.classification import compute_sns
from repro.paperdata import (
    EXPECTED_SNS,
    section_5_offers,
    section_521_profile,
)
from repro.util.tables import render_table


@pytest.fixture(scope="module")
def computed():
    offers = section_5_offers()
    profile = section_521_profile()
    return [(offer, compute_sns(offer, profile)) for offer in offers]


def test_e01_sns_table(benchmark, computed, publish):
    offers = section_5_offers()
    profile = section_521_profile()

    benchmark(lambda: [compute_sns(offer, profile) for offer in offers])

    rows = []
    for offer, sns in computed:
        qos = next(iter(offer.presented.values()))
        expected = EXPECTED_SNS[offer.offer_id]
        assert sns.name == expected, offer.offer_id
        rows.append((offer.offer_id, str(qos), str(offer.cost), sns.name, expected))
    publish(
        "E01",
        render_table(
            ("offer", "QoS", "cost", "SNS (measured)", "SNS (paper)"),
            rows,
            title="E1 - Sec 5.2.1: static negotiation status "
                  "(user asks color/TV/25 f/s, max $4.00)",
        ),
    )
