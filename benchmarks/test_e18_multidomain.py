"""E18 — extension ([Haf 95b]): hierarchical multi-domain negotiation.

The end-to-end path crosses three administrative domains (campus,
metro, provider); each domain's agent reserves its own segment and may
refuse on policy grounds (a transit quota) independently of raw link
capacity.  Compared against the flat single-authority transport on the
identical topology and demand:

* admission decisions coincide while no quota binds;
* once the metro quota binds, the hierarchical system blocks flows the
  flat system would admit — policy-driven blocking, the phenomenon the
  hierarchical negotiation exists to express;
* the price is signalling: 2 messages per domain segment per set-up.
"""

import pytest

from repro.network.domains import Domain, DomainMap, HierarchicalTransport
from repro.network.qosparams import FlowSpec
from repro.network.topology import Topology
from repro.network.transport import TransportSystem
from repro.util.errors import CapacityError
from repro.util.tables import render_table

SPEC = FlowSpec(
    max_bit_rate=8e6, avg_bit_rate=3e6,
    max_delay_s=0.25, max_jitter_s=0.05, max_loss_rate=0.05,
)
QUOTA = 40e6  # metro transit quota: 5 flows of 8 Mbps


def build_topology():
    topo = Topology()
    topo.connect("srv", "metro-a", 622e6, link_id="L1")
    topo.connect("metro-a", "metro-b", 622e6, link_id="L2")
    topo.connect("metro-b", "campus-gw", 622e6, link_id="L3")
    topo.connect("campus-gw", "cli", 622e6, link_id="L4")
    return topo


def build_hierarchical(quota=QUOTA):
    topo = build_topology()
    dmap = DomainMap(
        [Domain("provider"), Domain("metro", transit_quota_bps=quota),
         Domain("campus")]
    )
    dmap.assign("srv", "provider")
    dmap.assign("metro-a", "metro")
    dmap.assign("metro-b", "metro")
    dmap.assign("campus-gw", "campus")
    dmap.assign("cli", "campus")
    return HierarchicalTransport(topo, dmap)


def admit_until_blocked(transport):
    admitted = 0
    while True:
        try:
            transport.reserve("srv", "cli", SPEC)
        except CapacityError:
            return admitted
        admitted += 1
        if admitted > 1000:
            raise AssertionError("never blocked")


@pytest.fixture(scope="module")
def outcomes():
    flat = TransportSystem(build_topology())
    flat_admitted = admit_until_blocked(flat)

    hierarchical = build_hierarchical()
    hier_admitted = admit_until_blocked(hierarchical)

    unlimited = build_hierarchical(quota=1e12)
    unlimited_admitted = admit_until_blocked(unlimited)

    return {
        "flat (single authority)": (flat_admitted, None, None),
        "hierarchical, metro quota 40 Mbps": (
            hier_admitted,
            hierarchical.total_messages,
            hierarchical.agents["metro"].refusals,
        ),
        "hierarchical, unlimited quotas": (
            unlimited_admitted,
            unlimited.total_messages,
            unlimited.agents["metro"].refusals,
        ),
    }


def test_e18_multidomain(benchmark, outcomes, publish):
    benchmark.pedantic(
        lambda: admit_until_blocked(build_hierarchical()),
        rounds=3, iterations=1,
    )

    flat_admitted = outcomes["flat (single authority)"][0]
    quota_admitted = outcomes["hierarchical, metro quota 40 Mbps"][0]
    open_admitted = outcomes["hierarchical, unlimited quotas"][0]

    # Without a binding quota the hierarchy changes nothing.
    assert open_admitted == flat_admitted
    # With the quota, policy blocks flows capacity would admit.
    assert quota_admitted == int(QUOTA // SPEC.max_bit_rate)
    assert quota_admitted < flat_admitted

    rows = [
        (
            label,
            admitted,
            "-" if messages is None else messages,
            "-" if refusals is None else refusals,
        )
        for label, (admitted, messages, refusals) in outcomes.items()
    ]
    publish(
        "E18",
        render_table(
            ("transport", "flows admitted", "signalling messages",
             "policy refusals"),
            rows,
            title="E18 - hierarchical multi-domain negotiation "
                  "(8 Mbps flows until blocked; 622 Mbps links)",
        ),
    )
