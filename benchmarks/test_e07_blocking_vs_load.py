"""E7 — availability: blocking probability vs offered load, smart vs
baselines.

The paper's central system-level claim (§1/§8): smart negotiation
"increases the availability of the system and the user satisfaction"
relative to static, a-priori-configuration negotiation.  We sweep the
arrival rate over a fixed deployment and compare the served fraction of
the paper's negotiator against the four baselines.

Reproduction target (shape): the smart negotiator's served fraction
dominates the static negotiator's at every load, with the gap widening
as the system saturates.
"""

import pytest

from repro.sim.baselines import (
    CostOnlyNegotiator,
    FirstFitNegotiator,
    QoSOnlyNegotiator,
    SmartNegotiator,
    StaticNegotiator,
)
from repro.sim.experiment import RunConfig, run_workload
from repro.sim.scenario import ScenarioSpec, build_scenario
from repro.sim.workload import WorkloadSpec, generate_requests
from repro.util.tables import render_table

SEED = 7
LOADS = (0.05, 0.15, 0.40)
HORIZON = 900.0
SPEC = ScenarioSpec(server_count=2, client_count=2, document_count=4)
NEGOTIATORS = (
    SmartNegotiator,
    StaticNegotiator,
    FirstFitNegotiator,
    CostOnlyNegotiator,
    QoSOnlyNegotiator,
)


def run_one(negotiator_cls, rate):
    scenario = build_scenario(SPEC)
    requests = generate_requests(
        WorkloadSpec(arrival_rate_per_s=rate, horizon_s=HORIZON),
        scenario.document_ids(),
        list(scenario.clients),
        rng=SEED,
    )
    stats = run_workload(
        scenario,
        negotiator_cls(scenario.manager),
        requests,
        config=RunConfig(adaptation_enabled=False),
    )
    return stats


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for rate in LOADS:
        for cls in NEGOTIATORS:
            results[(cls.__name__, rate)] = run_one(cls, rate)
    return results


def test_e07_blocking_sweep(benchmark, sweep, publish):
    # Time one representative run (lightest load, paper's negotiator).
    benchmark.pedantic(
        lambda: run_one(SmartNegotiator, LOADS[0]), rounds=3, iterations=1
    )

    rows = []
    for cls in NEGOTIATORS:
        name = cls(build_scenario(SPEC).manager).name
        cells = [name]
        for rate in LOADS:
            stats = sweep[(cls.__name__, rate)]
            served = stats.statuses.served / max(stats.statuses.total, 1)
            cells.append(f"{served * 100:.1f}%")
        rows.append(tuple(cells))

    # Shape assertions: smart serves at least as many as static at every
    # load, strictly more once the system saturates.
    for rate in LOADS:
        smart = sweep[("SmartNegotiator", rate)].statuses.served
        static = sweep[("StaticNegotiator", rate)].statuses.served
        assert smart >= static, f"load {rate}"
    heavy = LOADS[-1]
    assert (
        sweep[("SmartNegotiator", heavy)].statuses.served
        > sweep[("StaticNegotiator", heavy)].statuses.served
    )

    publish(
        "E07",
        render_table(
            ("negotiator",) + tuple(f"served @ {r}/s" for r in LOADS),
            rows,
            title="E7 - served fraction vs offered load "
                  f"(identical workload, seed {SEED}, horizon {HORIZON:g}s)",
        ),
    )


def test_e07_success_vs_degraded(benchmark, sweep, publish):
    """Second series: how the smart negotiator's served requests split
    between SUCCEEDED and FAILEDWITHOFFER as load grows — the paper's
    step-5 fallback becoming visible."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for rate in LOADS:
        stats = sweep[("SmartNegotiator", rate)]
        counts = stats.statuses
        rows.append(
            (
                f"{rate}/s",
                counts.total,
                counts.succeeded,
                counts.as_dict().get("FAILEDWITHOFFER", 0),
                counts.as_dict().get("FAILEDTRYLATER", 0),
                f"{counts.blocking_probability * 100:.1f}%",
            )
        )
    # Blocking grows with load.
    blocking = [
        sweep[("SmartNegotiator", rate)].blocking_probability for rate in LOADS
    ]
    assert blocking == sorted(blocking)
    publish(
        "E07b",
        render_table(
            ("load", "requests", "SUCCEEDED", "FAILEDWITHOFFER",
             "FAILEDTRYLATER", "blocked"),
            rows,
            title="E7b - smart negotiator outcome mix vs load",
        ),
    )
