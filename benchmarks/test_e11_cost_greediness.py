"""E11 — the cost rationale of §7: "The cost will limit the greediness
of the users.  Without cost constraints, the users will ask for the best
QoS available, increasing the blocking probability of the system".

Two user populations under identical load:

* **greedy** — premium profiles only, cost importance 0 (cost is no
  constraint; the negotiation picks the highest-quality reservable
  offer);
* **cost-aware** — the standard mix with real budgets and cost
  importance.

Reproduction target (shape): the greedy population burns more bandwidth
per served request and blocks more; the cost-aware population serves
more requests in total.
"""

import pytest

from repro.sim.baselines import SmartNegotiator
from repro.sim.experiment import RunConfig, run_workload
from repro.sim.scenario import ScenarioSpec, build_scenario
from repro.sim.workload import WorkloadSpec, generate_requests
from repro.util.tables import render_table

SEED = 33
RATE = 0.25
HORIZON = 900.0
SPEC = ScenarioSpec(server_count=2, client_count=2, document_count=4)

MIXES = {
    "greedy (premium only, cost ignored)": (("premium", 1.0),),
    "cost-aware mix": (
        ("premium", 0.2), ("balanced", 0.5), ("economy", 0.3),
    ),
}


def run_mix(mix):
    scenario = build_scenario(SPEC)
    requests = generate_requests(
        WorkloadSpec(
            arrival_rate_per_s=RATE, horizon_s=HORIZON, profile_mix=mix
        ),
        scenario.document_ids(),
        list(scenario.clients),
        rng=SEED,
    )
    stats = run_workload(
        scenario,
        SmartNegotiator(scenario.manager),
        requests,
        config=RunConfig(adaptation_enabled=False),
    )
    return stats


@pytest.fixture(scope="module")
def outcomes():
    return {label: run_mix(mix) for label, mix in MIXES.items()}


def test_e11_greediness(benchmark, outcomes, publish):
    benchmark.pedantic(
        lambda: run_mix(MIXES["cost-aware mix"]), rounds=3, iterations=1
    )

    greedy = outcomes["greedy (premium only, cost ignored)"]
    aware = outcomes["cost-aware mix"]

    # §7's claim, measured: greed blocks more users.
    assert aware.statuses.served > greedy.statuses.served
    assert greedy.blocking_probability > aware.blocking_probability
    # And each greedy service consumes more network per request.
    greedy_per = greedy.network_utilization.mean(HORIZON) / max(
        greedy.statuses.served, 1
    )
    aware_per = aware.network_utilization.mean(HORIZON) / max(
        aware.statuses.served, 1
    )
    assert greedy_per > aware_per

    rows = []
    for label, stats in outcomes.items():
        rows.append(
            (
                label,
                stats.statuses.total,
                stats.statuses.served,
                f"{stats.blocking_probability * 100:.1f}%",
                f"{stats.network_utilization.mean(HORIZON) / 1e6:.1f} Mbps",
                str(stats.revenue),
            )
        )
    publish(
        "E11",
        render_table(
            ("population", "requests", "served", "blocked",
             "mean net reserved", "revenue"),
            rows,
            title="E11 - Sec 7: cost constraints limit greediness "
                  f"(identical load {RATE}/s, seed {SEED})",
        ),
    )
