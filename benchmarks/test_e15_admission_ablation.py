"""E15 — ablation: CMFS admission control on vs off.

With admission control, an overloaded deployment *blocks* new requests
(FAILEDTRYLATER) and every admitted stream keeps its round guarantee.
Without it, the server accepts everything and the disk round becomes
infeasible — every stream's deadline is at risk.

Target: no-admission serves more requests but drives peak disk
utilization beyond 1.0; with admission the utilization stays ≤ 1 and
blocking absorbs the excess load.
"""

import pytest

from repro.cmfs.admission import AdmissionController
from repro.cmfs.disk import DiskModel
from repro.sim.baselines import SmartNegotiator
from repro.sim.experiment import RunConfig, run_workload
from repro.sim.scenario import ScenarioSpec, build_scenario
from repro.sim.workload import WorkloadSpec, generate_requests
from repro.util.tables import render_table

SEED = 17
RATE = 0.3
HORIZON = 600.0
SPEC = ScenarioSpec(server_count=2, client_count=2, document_count=3)


def run_with_admission(enforce: bool):
    scenario = build_scenario(SPEC)
    if not enforce:
        for server in scenario.servers.values():
            server.admission = AdmissionController(
                disk=DiskModel(),
                enforce_disk=False,
                enforce_buffer=False,
                enforce_nic=False,
                max_streams=100_000,
            )
    peak_util = 0.0
    requests = generate_requests(
        WorkloadSpec(arrival_rate_per_s=RATE, horizon_s=HORIZON),
        scenario.document_ids(),
        list(scenario.clients),
        rng=SEED,
    )

    # Observe disk feasibility at every arrival through a wrapper.
    negotiator = SmartNegotiator(scenario.manager)
    original = negotiator.negotiate

    def observing(document, profile, client):
        nonlocal peak_util
        result = original(document, profile, client)
        peak_util = max(
            peak_util,
            max(s.disk_utilization for s in scenario.servers.values()),
        )
        return result

    negotiator.negotiate = observing
    stats = run_workload(
        scenario, negotiator, requests,
        config=RunConfig(adaptation_enabled=False),
    )
    return stats, peak_util


@pytest.fixture(scope="module")
def outcomes():
    return {
        "admission enforced": run_with_admission(True),
        "admission disabled": run_with_admission(False),
    }


def test_e15_admission_ablation(benchmark, outcomes, publish):
    benchmark.pedantic(
        lambda: run_with_admission(True), rounds=2, iterations=1
    )

    enforced_stats, enforced_peak = outcomes["admission enforced"]
    open_stats, open_peak = outcomes["admission disabled"]

    # The trade: without admission everything network-feasible gets in...
    assert open_stats.statuses.served >= enforced_stats.statuses.served
    # ...but the disk round budget is blown; with admission it never is.
    assert open_peak > 1.0
    assert enforced_peak <= 1.0 + 1e-9

    rows = [
        (
            label,
            stats.statuses.total,
            stats.statuses.served,
            f"{stats.blocking_probability * 100:.1f}%",
            f"{peak:.2f}",
            "guaranteed" if peak <= 1.0 else "VIOLATED",
        )
        for label, (stats, peak) in outcomes.items()
    ]
    publish(
        "E15",
        render_table(
            ("configuration", "requests", "served", "blocked",
             "peak disk round utilization", "stream deadlines"),
            rows,
            title="E15 - ablation: CMFS admission control "
                  f"(load {RATE}/s, seed {SEED})",
        ),
    )
