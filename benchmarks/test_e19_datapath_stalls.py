"""E19 — data path: what the user actually sees per admission policy.

E15 showed the admission ablation in resource terms (peak disk-round
utilization); this experiment pushes the same loads through the
round-by-round data-path simulation and reports the *user-visible*
outcome: stall seconds per 2-minute session as the stream population
grows past the admission limit.

Target: at or below the admission limit, zero stalls; past it, stall
time grows with the overload — the guarantee the §4 resource commitment
buys.
"""

import pytest

from repro.cmfs.disk import DiskModel
from repro.session.datapath import StreamDemand, simulate_rounds
from repro.util.tables import render_table

SEED = 47
DURATION = 120.0
AVG = 6e6
PEAK = 9e6


def run_population(count):
    disk = DiskModel()
    demands = [
        StreamDemand(f"s{i}", avg_bps=AVG, max_bps=PEAK, prebuffer_s=1.0)
        for i in range(count)
    ]
    reports = simulate_rounds(disk, demands, DURATION, rng=SEED)
    stalls = [r.stall_s for r in reports.values()]
    infeasible = max(r.infeasible_rounds for r in reports.values())
    return sum(stalls) / len(stalls), max(stalls), infeasible


@pytest.fixture(scope="module")
def sweep():
    disk = DiskModel()
    limit = disk.max_streams_at_rate(PEAK)
    # The peak-rate admission limit is deliberately conservative: mild
    # oversubscription (limit+2) survives on buffers; the sweep extends
    # far enough past it that stalls actually materialise.
    populations = (limit - 1, limit, limit + 2, limit + 4, 2 * limit)
    return limit, {n: run_population(n) for n in populations}


def test_e19_datapath_stalls(benchmark, sweep, publish):
    limit, results = sweep
    benchmark.pedantic(
        lambda: run_population(limit), rounds=3, iterations=1
    )

    rows = []
    for count, (mean_stall, worst_stall, infeasible) in results.items():
        note = "admitted" if count <= limit else "OVER admission limit"
        rows.append(
            (
                count,
                note,
                infeasible,
                f"{mean_stall:.1f} s",
                f"{worst_stall:.1f} s",
            )
        )

    # At/below the peak-rate admission limit playout is smooth.
    assert results[limit][0] == 0.0
    assert results[limit - 1][0] == 0.0
    # Past it, stall time is monotone in the overload and materialises
    # by limit+4 (the conservative peak-rate limit gives the first
    # couple of extra streams a buffer-funded grace).
    over = [results[n][0] for n in sorted(results) if n > limit]
    assert over == sorted(over)
    assert results[2 * limit][0] > results[limit + 4][0] * 0.0
    assert results[2 * limit][0] > 0.0
    assert results[limit + 4][0] > 0.0

    publish(
        "E19",
        render_table(
            ("streams", "admission verdict", "infeasible rounds",
             "mean stall / session", "worst stall"),
            rows,
            title=f"E19 - user-visible stalls vs stream population "
                  f"(admission limit {limit} at {PEAK / 1e6:.0f} Mbps peak, "
                  f"{DURATION:.0f} s sessions, seed {SEED})",
        ),
    )
