"""E12 — step 6: the ``choicePeriod`` confirmation timer and
renegotiation.

§8: "A timer is initialized to a value choicePeriod and started at the
time the window is displayed.  If a time-out is reached before pressing
OK, the session is simply aborted."  Reserved resources sit idle while
the user decides; this experiment sweeps the user's think time against
the choice period and measures (a) how many sessions are lost to the
timer, (b) how much reservation-time is wasted by expired offers, and
(c) the renegotiation path (reject → relax profile → negotiate again).
"""

import pytest

from repro.core.profiles import MMProfile, TimeProfile, UserProfile
from repro.sim.baselines import SmartNegotiator
from repro.sim.experiment import RunConfig, run_workload
from repro.sim.scenario import ScenarioSpec, build_scenario
from repro.sim.workload import WorkloadSpec, generate_requests
from repro.util.tables import render_table

SEED = 55
SPEC = ScenarioSpec(server_count=2, client_count=2, document_count=3)
CHOICE_PERIOD = 30.0
THINK_TIMES = (5.0, 20.0, 45.0)  # the last exceeds the choice period


def profile_with_choice_period(base: UserProfile) -> UserProfile:
    time = TimeProfile(choice_period_s=CHOICE_PERIOD)
    return UserProfile(
        name=base.name,
        desired=MMProfile(
            video=base.desired.video, audio=base.desired.audio,
            image=base.desired.image, text=base.desired.text,
            cost=base.desired.cost, time=time,
        ),
        worst=MMProfile(
            video=base.worst.video, audio=base.worst.audio,
            image=base.worst.image, text=base.worst.text,
            cost=base.worst.cost, time=time,
        ),
        importance=base.importance,
    )


def run_think_time(think_s: float):
    from repro.core.profile_manager import standard_profiles

    scenario = build_scenario(SPEC)
    profiles = [profile_with_choice_period(p) for p in standard_profiles()]
    requests = generate_requests(
        WorkloadSpec(arrival_rate_per_s=0.05, horizon_s=900.0),
        scenario.document_ids(),
        list(scenario.clients),
        rng=SEED,
        profiles=profiles,
    )
    stats = run_workload(
        scenario,
        SmartNegotiator(scenario.manager),
        requests,
        config=RunConfig(
            adaptation_enabled=False, confirm_delay_s=think_s
        ),
    )
    return stats


@pytest.fixture(scope="module")
def sweep():
    return {think: run_think_time(think) for think in THINK_TIMES}


def test_e12_choice_period_sweep(benchmark, sweep, publish):
    benchmark.pedantic(
        lambda: run_think_time(THINK_TIMES[0]), rounds=3, iterations=1
    )

    rows = []
    for think, stats in sweep.items():
        reserved = stats.statuses.served
        started = stats.completed_sessions
        lost = reserved - started
        rows.append(
            (
                f"{think:g} s",
                reserved,
                started,
                lost,
                f"{min(think, CHOICE_PERIOD) * reserved:.0f} s",
            )
        )

    # Think times under the choice period lose nothing; over it, all.
    fast = sweep[THINK_TIMES[0]]
    slow = sweep[THINK_TIMES[-1]]
    assert fast.completed_sessions == fast.statuses.served
    assert slow.completed_sessions == 0
    assert slow.revenue.cents == 0

    publish(
        "E12",
        render_table(
            ("user think time", "offers reserved", "sessions started",
             "lost to timer", "reservation-time held idle"),
            rows,
            title=f"E12 - choicePeriod = {CHOICE_PERIOD:g} s vs user think "
                  "time (Sec 8 confirmation timer)",
        ),
    )


def test_e12_renegotiation_converges(benchmark, publish):
    """Reject → relax the profile → renegotiate, until acceptance: the
    §8 renegotiation loop expressed with the library API."""
    from repro.core.profile_manager import standard_profiles
    from repro.core.status import NegotiationStatus

    def renegotiate_until_accepted():
        scenario = build_scenario(SPEC)
        client = scenario.any_client()
        names = ("premium", "balanced", "economy")
        by_name = {p.name: p for p in standard_profiles()}
        history = []
        # The user keeps the best offer only if it is DESIRABLE;
        # otherwise rejects and retries with the next cheaper profile.
        for name in names:
            result = scenario.manager.negotiate(
                scenario.document_ids()[0], by_name[name], client
            )
            history.append((name, result.status.value,
                            str(result.chosen.offer.cost)
                            if result.chosen else "-"))
            if result.status is NegotiationStatus.SUCCEEDED:
                result.commitment.confirm(scenario.clock.now())
                result.commitment.release()
                return history
            if result.commitment is not None:
                result.commitment.reject(scenario.clock.now())
        return history

    history = benchmark.pedantic(
        renegotiate_until_accepted, rounds=3, iterations=1
    )
    assert history[-1][1] == "SUCCEEDED"
    publish(
        "E12b",
        render_table(
            ("profile tried", "status", "offer cost"),
            history,
            title="E12b - renegotiation loop: reject and relax until "
                  "accepted",
        ),
    )
