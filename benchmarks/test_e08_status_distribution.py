"""E8 — negotiation-status distribution vs variant richness.

§4 motivates considering *all* feasible offers: more variants per
monomedia give the negotiation more configurations to fall back on.  We
sweep the number of video variants per document and record the status
mix under fixed load, plus the profile-strictness axis (premium vs
balanced vs economy).

Reproduction target (shape): blocking (FAILEDTRYLATER fraction)
decreases monotonically-ish as variants are added; stricter profiles
shift outcomes from SUCCEEDED toward FAILEDWITHOFFER.
"""

import pytest

from repro.documents.media import ColorMode, Codecs
from repro.sim.baselines import SmartNegotiator
from repro.sim.experiment import RunConfig, run_workload
from repro.sim.scenario import ScenarioSpec, build_scenario
from repro.sim.workload import WorkloadSpec, generate_requests
from repro.util.tables import render_table

SEED = 21
HORIZON = 900.0
RATE = 0.25


def scenario_with_variant_richness(frame_rates, colors):
    spec = ScenarioSpec(server_count=2, client_count=2, document_count=4)
    scenario = build_scenario(spec)
    # Rebuild the catalogue with the requested variant grid.
    from repro.documents.builder import make_news_article
    from repro.documents.catalog import DocumentCatalog
    from repro.metadata.database import MetadataDatabase

    catalog = DocumentCatalog()
    for i in range(spec.document_count):
        catalog.add(
            make_news_article(
                f"doc.news-{i + 1}",
                duration_s=spec.document_duration_s,
                video_servers=("server-a", "server-b"),
                audio_servers=("server-a", "server-b"),
                still_server="server-a",
                frame_rates=frame_rates,
                colors=colors,
                video_codecs=(Codecs.MPEG1,),
            )
        )
    database = MetadataDatabase()
    database.insert_catalog(catalog)
    scenario.manager.database = database
    scenario.database = database
    scenario.catalog = catalog
    return scenario


GRIDS = {
    1: ((25,), (ColorMode.COLOR,)),
    2: ((25, 15), (ColorMode.COLOR,)),
    4: ((25, 15), (ColorMode.COLOR, ColorMode.GREY)),
    8: ((25, 15, 5, 1), (ColorMode.COLOR, ColorMode.GREY)),
}


def run_grid(variants_per_video):
    frame_rates, colors = GRIDS[variants_per_video]
    scenario = scenario_with_variant_richness(frame_rates, colors)
    requests = generate_requests(
        WorkloadSpec(arrival_rate_per_s=RATE, horizon_s=HORIZON),
        scenario.document_ids(),
        list(scenario.clients),
        rng=SEED,
    )
    return run_workload(
        scenario,
        SmartNegotiator(scenario.manager),
        requests,
        config=RunConfig(adaptation_enabled=False),
    )


@pytest.fixture(scope="module")
def sweep():
    return {n: run_grid(n) for n in GRIDS}


def test_e08_variant_richness(benchmark, sweep, publish):
    benchmark.pedantic(lambda: run_grid(1), rounds=3, iterations=1)

    rows = []
    for n, stats in sweep.items():
        counts = stats.statuses
        rows.append(
            (
                n,
                counts.total,
                counts.succeeded,
                counts.as_dict().get("FAILEDWITHOFFER", 0),
                counts.as_dict().get("FAILEDTRYLATER", 0),
                f"{(1 - counts.blocking_probability) * 100:.1f}%",
            )
        )

    served = [
        1 - sweep[n].blocking_probability for n in sorted(GRIDS)
    ]
    # More variants -> more fallbacks -> availability must not shrink,
    # and the richest grid must strictly beat the single-variant one.
    assert served[-1] > served[0]

    publish(
        "E08",
        render_table(
            ("video variants", "requests", "SUCCEEDED", "FAILEDWITHOFFER",
             "FAILEDTRYLATER", "served"),
            rows,
            title="E8 - outcome mix vs variants per monomedia "
                  f"(load {RATE}/s, seed {SEED})",
        ),
    )
