"""E6 — §7 cost computation (Eq. 1).

Regenerates the per-monomedia cost decomposition for the canonical news
article: CostDoc = CostCop + Σ (CostNetᵢ + CostSerᵢ) with CostNetᵢ the
throughput-class tariff × playout duration, for both guarantee types.
"""

import pytest

from repro.core.cost import default_cost_model
from repro.core.mapping import QoSMapper
from repro.documents.builder import make_news_article
from repro.network.transport import GuaranteeType
from repro.util.tables import render_table
from repro.util.units import format_bitrate


@pytest.fixture(scope="module")
def breakdowns():
    document = make_news_article("doc.e6")
    mapper = QoSMapper()
    model = default_cost_model()
    # The best variant of each monomedia (first in each grid).
    chosen = [component.variants[0] for component in document.components]
    items = [(variant, mapper.flow_spec(variant)) for variant in chosen]
    return document, {
        guarantee: model.document_cost(
            items, document.copyright_cost, guarantee
        )
        for guarantee in GuaranteeType
    }


def test_e06_equation1_table(benchmark, breakdowns, publish):
    document, by_guarantee = breakdowns
    mapper = QoSMapper()
    model = default_cost_model()
    chosen = [component.variants[0] for component in document.components]
    items = [(variant, mapper.flow_spec(variant)) for variant in chosen]

    benchmark(
        lambda: model.document_cost(items, document.copyright_cost)
    )

    guaranteed = by_guarantee[GuaranteeType.GUARANTEED]
    best_effort = by_guarantee[GuaranteeType.BEST_EFFORT]

    # Eq. 1 structural checks.
    assert guaranteed.total == (
        guaranteed.copyright_cost
        + guaranteed.network_total
        + guaranteed.server_total
    )
    assert best_effort.total < guaranteed.total  # §7: guarantee type matters
    for item in guaranteed.items:
        # CostNet_i = class tariff x D_i, literally.
        tariff = model.network.cost_per_second(item.billed_rate_bps)
        assert item.network_cost.amount == pytest.approx(
            tariff * item.duration_s, abs=0.01
        )

    rows = []
    for item in guaranteed.items:
        rows.append(
            (
                item.monomedia_id.rsplit(".", 1)[-1],
                item.variant_id,
                format_bitrate(item.billed_rate_bps),
                f"{item.duration_s:g} s",
                str(item.network_cost),
                str(item.server_cost),
                str(item.total),
            )
        )
    rows.append(
        ("copyright", "-", "-", "-", "-", "-", str(guaranteed.copyright_cost))
    )
    rows.append(
        ("CostDoc", "-", "-", "-", str(guaranteed.network_total),
         str(guaranteed.server_total), str(guaranteed.total))
    )
    table = render_table(
        ("monomedia", "variant", "billed rate", "D_i", "CostNet_i",
         "CostSer_i", "total"),
        rows,
        title="E6 - Sec 7 Eq.1 cost decomposition (guaranteed service)",
    )
    table += "\n\n" + render_table(
        ("guarantee", "CostDoc"),
        [
            ("guaranteed (bills peak rate)", str(guaranteed.total)),
            ("best-effort (bills avg rate, discounted)", str(best_effort.total)),
        ],
        title="E6 - guarantee type effect",
    )
    publish("E06", table)
