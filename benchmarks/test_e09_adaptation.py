"""E9 — automatic adaptation vs none under congestion episodes.

Reproduces the paper's adaptation claim (§1 point 4, §4): sessions under
component congestion survive with a short transition interruption when
adaptation is on, and spend the whole episode degraded when it is off.

Reproduction target (shape): with adaptation, degraded time collapses to
(near) zero at the price of one ~2 s interruption per episode; without,
degraded time ≈ episode duration.
"""

import pytest

from repro.client.machine import ClientMachine
from repro.core import QoSManager, standard_profiles
from repro.cmfs import MediaServer
from repro.documents import make_news_article
from repro.metadata import MetadataDatabase
from repro.network import Topology, TransportSystem
from repro.session import (
    CongestionEpisode,
    EventLoop,
    ScriptedInjector,
    SessionRuntime,
)
from repro.util.clock import ManualClock
from repro.util.tables import render_table

EPISODE = CongestionEpisode("link", "L-a", start_s=10.0, duration_s=30.0,
                            severity=0.97)


def run_session(adaptation_enabled: bool):
    document = make_news_article("doc.e9", duration_s=120.0)
    database = MetadataDatabase()
    database.insert_document(document)
    topology = Topology()
    topology.connect("client-net", "backbone", 100e6, link_id="L-client")
    topology.connect("backbone", "server-a-net", 155e6, link_id="L-a")
    topology.connect("backbone", "server-b-net", 155e6, link_id="L-b")
    servers = {
        server.server_id: server
        for server in (MediaServer("server-a"), MediaServer("server-b"))
    }
    transport = TransportSystem(topology)
    clock = ManualClock()
    manager = QoSManager(
        database=database, transport=transport, servers=servers, clock=clock
    )
    loop = EventLoop(clock)
    runtime = SessionRuntime(
        manager, loop, adaptation_enabled=adaptation_enabled
    )
    profile = next(p for p in standard_profiles() if p.name == "balanced")
    client = ClientMachine("alice", access_point="client-net")
    result = manager.negotiate(document.document_id, profile, client)
    assert result.succeeded
    session = runtime.start_session(result, profile, client)
    ScriptedInjector(topology, servers, [EPISODE]).arm(loop)
    loop.run()
    assert transport.flow_count == 0
    return session


@pytest.fixture(scope="module")
def outcomes():
    return {
        "with adaptation": run_session(True),
        "without adaptation": run_session(False),
    }


def test_e09_adaptation_comparison(benchmark, outcomes, publish):
    benchmark.pedantic(lambda: run_session(True), rounds=3, iterations=1)

    adapted = outcomes["with adaptation"]
    frozen = outcomes["without adaptation"]

    # Both sessions finish (the stream survives either way here)...
    assert adapted.record.completed and frozen.record.completed
    # ...but adaptation trades the degradation for a short interruption.
    assert adapted.record.adaptations >= 1
    assert adapted.record.degraded_time_s < 5.0
    assert frozen.record.adaptations == 0
    assert frozen.record.degraded_time_s >= EPISODE.duration_s * 0.6
    assert (
        adapted.record.total_interruption_s < frozen.record.degraded_time_s
    )

    rows = []
    for label, session in outcomes.items():
        record = session.record
        rows.append(
            (
                label,
                record.adaptations,
                record.failed_adaptations,
                f"{record.total_interruption_s:.1f} s",
                f"{record.degraded_time_s:.1f} s",
                "yes" if record.completed else "no",
            )
        )
    publish(
        "E09",
        render_table(
            ("mode", "adaptations", "failed", "interruption",
             "degraded time", "completed"),
            rows,
            title="E9 - one 30 s / 97% congestion episode on the serving "
                  "link (Sec 4 adaptation procedure)",
        ),
    )


def test_e09_transition_overhead_sweep(benchmark, publish):
    """Ablation: the transition procedure's overhead knob — the paper
    calls its stop/restart transition 'a simple one'; the cost of that
    simplicity is the interruption length."""
    import repro.session.runtime as runtime_mod

    def run_with_overhead(overhead):
        document = make_news_article("doc.e9b", duration_s=120.0)
        database = MetadataDatabase()
        database.insert_document(document)
        topology = Topology()
        topology.connect("client-net", "backbone", 100e6, link_id="L-client")
        topology.connect("backbone", "server-a-net", 155e6, link_id="L-a")
        topology.connect("backbone", "server-b-net", 155e6, link_id="L-b")
        servers = {
            server.server_id: server
            for server in (MediaServer("server-a"), MediaServer("server-b"))
        }
        clock = ManualClock()
        manager = QoSManager(
            database=database,
            transport=TransportSystem(topology),
            servers=servers,
            clock=clock,
        )
        loop = EventLoop(clock)
        runtime = SessionRuntime(
            manager, loop, transition_overhead_s=overhead
        )
        profile = next(p for p in standard_profiles() if p.name == "balanced")
        client = ClientMachine("alice", access_point="client-net")
        result = manager.negotiate(document.document_id, profile, client)
        session = runtime.start_session(result, profile, client)
        ScriptedInjector(topology, servers, [EPISODE]).arm(loop)
        loop.run()
        return session, loop.now

    benchmark.pedantic(lambda: run_with_overhead(2.0), rounds=3, iterations=1)

    rows = []
    finish_times = []
    for overhead in (0.5, 2.0, 8.0):
        session, finished_at = run_with_overhead(overhead)
        finish_times.append(finished_at)
        rows.append(
            (
                f"{overhead:g} s",
                session.record.adaptations,
                f"{session.record.total_interruption_s:.1f} s",
                f"{finished_at:.1f} s",
            )
        )
    assert finish_times == sorted(finish_times)
    publish(
        "E09b",
        render_table(
            ("transition overhead", "adaptations", "interruption",
             "session finished at"),
            rows,
            title="E9b - ablation: stop/restart transition overhead",
        ),
    )
