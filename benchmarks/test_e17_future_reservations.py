"""E17 — extension ([Haf 96]): future reservations vs walk-in only.

The §3 time profile already carries a delivery time; the authors'
companion work negotiates *bookings* for future windows.  This
experiment compares two populations requesting the same evening
prime-time hour:

* **walk-in** — everyone shows up at their desired start time and
  negotiates immediately (all windows overlap, the system saturates);
* **advance** — the same demand books ahead; users whose prime-time
  window is full are offered the next free slot (slot shifting), so
  demand spreads over adjacent windows.

Target (shape): at equal demand, advance booking serves strictly more
requests than walk-in, at the price of time-shifting some of them.
"""

import pytest

from repro.client.machine import ClientMachine
from repro.core.profile_manager import standard_profiles
from repro.core.status import NegotiationStatus
from repro.reservations.advance import AdvanceBookingPlan, AdvanceNegotiator
from repro.sim.scenario import ScenarioSpec, build_scenario
from repro.util.rng import make_rng
from repro.util.tables import render_table

SEED = 101
DEMAND = 40           # users all wanting the same prime-time hour
SLOT_S = 150.0        # documents are 120 s; slots leave a margin
MAX_SHIFT_SLOTS = 12  # how far a user will let the system move them
SPEC = ScenarioSpec(server_count=2, client_count=2, document_count=3)


def _population(scenario):
    rng = make_rng(SEED)
    profiles = standard_profiles()
    users = []
    for i in range(DEMAND):
        users.append(
            (
                scenario.document_ids()[int(rng.integers(0, 3))],
                profiles[int(rng.integers(0, len(profiles)))],
                list(scenario.clients.values())[int(rng.integers(0, 2))],
            )
        )
    return users


def run_walk_in():
    """Everyone books the same slot; no shifting."""
    scenario = build_scenario(SPEC)
    advance = AdvanceNegotiator(scenario.manager)
    served = 0
    for document_id, profile, client in _population(scenario):
        plan = advance.negotiate_advance(
            document_id, profile, client, start_s=0.0
        )
        if isinstance(plan, AdvanceBookingPlan):
            served += 1
    return served, 0


def run_advance():
    """Users accept the nearest free slot within MAX_SHIFT_SLOTS."""
    scenario = build_scenario(SPEC)
    advance = AdvanceNegotiator(scenario.manager)
    served = 0
    shifted = 0
    for document_id, profile, client in _population(scenario):
        for slot in range(MAX_SHIFT_SLOTS + 1):
            plan = advance.negotiate_advance(
                document_id, profile, client, start_s=slot * SLOT_S
            )
            if isinstance(plan, AdvanceBookingPlan):
                served += 1
                if slot > 0:
                    shifted += 1
                break
    return served, shifted


@pytest.fixture(scope="module")
def outcomes():
    return {"walk-in (single slot)": run_walk_in(),
            "advance booking (slot shifting)": run_advance()}


def test_e17_future_reservations(benchmark, outcomes, publish):
    benchmark.pedantic(run_walk_in, rounds=2, iterations=1)

    walk_served, _ = outcomes["walk-in (single slot)"]
    adv_served, adv_shifted = outcomes["advance booking (slot shifting)"]
    assert adv_served > walk_served
    assert adv_served == DEMAND  # with 12 slots of headroom all fit

    rows = [
        (label, DEMAND, served, shifted,
         f"{served / DEMAND * 100:.0f}%")
        for label, (served, shifted) in outcomes.items()
    ]
    publish(
        "E17",
        render_table(
            ("mode", "demand", "served", "time-shifted", "service rate"),
            rows,
            title=f"E17 - future reservations extension "
                  f"({DEMAND} users wanting one prime-time slot, seed {SEED})",
        ),
    )
