"""Allowlist/baseline of sanctioned findings.

The baseline file (default ``.reprolint.json`` at the repo root) lists
findings that are accepted with a per-entry justification.  Entries are
matched by *fingerprint* — rule id + file basename + offending source
text — so they survive unrelated line moves but die with the code they
sanctioned.  ``python -m repro lint --update-baseline`` regenerates the
file from the current findings (placeholder justifications must then be
filled in by hand; empty justifications are themselves reported).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from ..util.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .findings import Finding

__all__ = ["BaselineEntry", "Baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = ".reprolint.json"


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    """One sanctioned finding."""

    rule_id: str
    fingerprint: str
    path: str
    justification: str

    def to_dict(self) -> "dict[str, str]":
        return {
            "rule": self.rule_id,
            "fingerprint": self.fingerprint,
            "path": self.path,
            "justification": self.justification,
        }


@dataclass(slots=True)
class Baseline:
    """The set of sanctioned findings, keyed by fingerprint."""

    entries: "dict[str, BaselineEntry]" = field(default_factory=dict)
    source_path: "str | None" = None

    @classmethod
    def load(cls, path: "Path | str | None") -> "Baseline":
        """Read a baseline file; a missing path yields an empty baseline."""
        if path is None:
            return cls()
        path = Path(path)
        if not path.is_file():
            return cls(source_path=str(path))
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise ValidationError(f"{path}: bad baseline JSON: {error}") from error
        raw_entries = payload.get("entries", payload if isinstance(payload, list) else [])
        if not isinstance(raw_entries, list):
            raise ValidationError(f"{path}: baseline entries must be a list")
        entries: dict[str, BaselineEntry] = {}
        for raw in raw_entries:
            if not isinstance(raw, dict) or "rule" not in raw or "fingerprint" not in raw:
                raise ValidationError(
                    f"{path}: each entry needs 'rule' and 'fingerprint' keys"
                )
            entry = BaselineEntry(
                rule_id=str(raw["rule"]),
                fingerprint=str(raw["fingerprint"]),
                path=str(raw.get("path", "")),
                justification=str(raw.get("justification", "")),
            )
            entries[entry.fingerprint] = entry
        return cls(entries=entries, source_path=str(path))

    def match(self, finding: "Finding") -> "BaselineEntry | None":
        for fingerprint in (finding.fingerprint, finding.legacy_fingerprint):
            entry = self.entries.get(fingerprint)
            if entry is not None and entry.rule_id == finding.rule_id:
                return entry
        return None

    def unjustified(self) -> "list[BaselineEntry]":
        return [
            entry
            for entry in self.entries.values()
            if not entry.justification.strip()
        ]

    @classmethod
    def from_findings(cls, findings: "Iterable[Finding]") -> "Baseline":
        entries: dict[str, BaselineEntry] = {}
        for finding in findings:
            entries[finding.fingerprint] = BaselineEntry(
                rule_id=finding.rule_id,
                fingerprint=finding.fingerprint,
                path=finding.path,
                justification="",
            )
        return cls(entries=entries)

    def dump(self, path: "Path | str") -> None:
        path = Path(path)
        ordered = sorted(
            self.entries.values(), key=lambda e: (e.path, e.rule_id, e.fingerprint)
        )
        payload = {
            "comment": (
                "reprolint baseline: sanctioned findings. Every entry "
                "needs a human-written justification; empty ones are "
                "reported by the linter."
            ),
            "entries": [entry.to_dict() for entry in ordered],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
