"""Per-function resource summaries, computed bottom-up over SCCs.

A summary answers, for one function, the questions the interprocedural
passes ask at its call sites:

* does it *acquire* reservations (``admit``/``reserve``/``acquire``)?
* does a value it returns carry an acquisition (so the caller inherits
  the release obligation)?
* does it *release* resources passed in as arguments?
* does it write a journal record?
* can it block the thread (sleep, fsync, file I/O, subprocess)?

``releases_args``, ``journals`` and ``blocking`` are transitive — they
propagate callee→caller with a fixpoint per strongly-connected
component, so mutual recursion converges.  ``returns_acquisition`` is
deliberately *local only* (one hop): it is seeded purely from marker
acquisitions inside the function body, never inherited from callees.
Propagating it transitively would tag every negotiation driver and
simulation harness as a resource source and flood REP012 with findings
about code that merely coordinates; the function that actually talks to
the server carries the obligation, and its direct callers are checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .callgraph import Project
from .extract import (
    ACQUIRE_ATTRS,
    JOURNAL_MARKER,
    RELEASE_MARKERS,
    CallEvent,
    FuncExtract,
)

__all__ = [
    "FuncSummary",
    "compute_summaries",
    "is_acquire_marker",
    "is_release_marker",
    "is_journal_marker",
]


def is_acquire_marker(event: CallEvent) -> bool:
    return event.attr in ACQUIRE_ATTRS


def is_release_marker(event: CallEvent) -> bool:
    leaf = event.attr.lower()
    return bool(leaf) and any(marker in leaf for marker in RELEASE_MARKERS)


def is_journal_marker(event: CallEvent) -> bool:
    return JOURNAL_MARKER in event.name.lower()


@dataclass(slots=True)
class FuncSummary:
    """What one function does with resources, from its caller's seat."""

    ref: str
    acquires: bool = False
    returns_acquisition: bool = False
    releases_args: bool = False
    journals: bool = False
    blocking: bool = False
    blocking_site: str = ""  # "path:line callname" of the blocking primitive
    flips: bool = False
    # contains an explicit raise/assert (transitively): calls to such
    # functions are the "risky" statements whose exception edges the
    # dataflow passes actually follow
    raises: bool = False
    # params that may be released (by name); releases_args is its bool
    released_params: "set[str]" = field(default_factory=set)


def _alias_closure(func: FuncExtract) -> "dict[str, set[str]]":
    """Flow-insensitive may-alias map: local symbol -> root params.

    Over-approximates on purpose — aliasing feeds *release* detection,
    and treating more things as released only ever silences findings,
    never invents them.
    """
    alias: "dict[str, set[str]]" = {p: {p} for p in func.params}

    def roots(symbol: str) -> "set[str]":
        return alias.get(symbol, set())

    changed = True
    while changed:
        changed = False
        for event in func.events():
            if isinstance(event, CallEvent):
                if event.bound is None:
                    continue
                incoming: "set[str]" = set()
                for arg in event.args:
                    incoming |= roots(arg)
                if event.recv is not None and "." not in event.recv:
                    incoming |= roots(event.recv)
                if incoming - alias.setdefault(event.bound, set()):
                    alias[event.bound] |= incoming
                    changed = True
            elif event.get("op") == "assign":
                incoming = set()
                for source in event["sources"]:
                    incoming |= roots(source)
                target = event["target"]
                if incoming - alias.setdefault(target, set()):
                    alias[target] |= incoming
                    changed = True
    return alias


def _local_summary(func: FuncExtract) -> FuncSummary:
    summary = FuncSummary(ref=func.ref)
    alias = _alias_closure(func)
    tainted: "set[str]" = set()
    returns: "set[str]" = set()

    for event in func.events():
        if isinstance(event, CallEvent):
            if is_acquire_marker(event):
                summary.acquires = True
                if event.ret:
                    summary.returns_acquisition = True
                if event.bound is not None:
                    tainted.add(event.bound)
            if is_release_marker(event):
                for arg in event.args:
                    summary.released_params |= alias.get(arg, set())
                if event.recv is not None and "." not in event.recv:
                    summary.released_params |= alias.get(event.recv, set())
            if is_journal_marker(event):
                summary.journals = True
            if event.blocking:
                summary.blocking = True
                if not summary.blocking_site:
                    summary.blocking_site = (
                        f"{func.path}:{event.line} {event.name}"
                    )
        elif event.get("op") == "flip":
            summary.flips = True
        elif event.get("op") == "raise":
            summary.raises = True
        elif event.get("op") == "return":
            returns.update(event["vars"])

    # Propagate acquisition taint through assigns/bound calls to returns.
    changed = True
    while changed:
        changed = False
        for event in func.events():
            if isinstance(event, CallEvent):
                if (
                    event.bound is not None
                    and event.bound not in tainted
                    and any(arg in tainted for arg in event.args)
                    and not is_release_marker(event)
                ):
                    tainted.add(event.bound)
                    changed = True
            elif event.get("op") == "assign":
                target = event["target"]
                if target not in tainted and any(
                    source in tainted for source in event["sources"]
                ):
                    tainted.add(target)
                    changed = True
    if returns & tainted:
        summary.returns_acquisition = True
    summary.releases_args = bool(summary.released_params)
    return summary


def compute_summaries(project: Project) -> "dict[str, FuncSummary]":
    """Local seeds, then one fixpoint per SCC in bottom-up order."""
    summaries = {
        ref: _local_summary(func) for ref, func in project.functions.items()
    }

    def propagate(ref: str) -> bool:
        func = project.functions[ref]
        summary = summaries[ref]
        alias = _alias_closure(func)
        changed = False
        for event in func.call_events():
            target = project.resolve_call(func, event)
            if target is None:
                continue
            callee = summaries.get(target)
            if callee is None:
                continue
            if callee.journals and not summary.journals:
                summary.journals = True
                changed = True
            if callee.raises and not summary.raises:
                summary.raises = True
                changed = True
            if callee.blocking and not summary.blocking:
                summary.blocking = True
                summary.blocking_site = callee.blocking_site
                changed = True
            if callee.releases_args:
                for arg in event.args:
                    released = alias.get(arg, set()) - summary.released_params
                    if released:
                        summary.released_params |= released
                        changed = True
        if summary.released_params and not summary.releases_args:
            summary.releases_args = True
            changed = True
        return changed

    for component in project.sccs_bottom_up():
        stable = False
        while not stable:
            stable = True
            for ref in component:
                if propagate(ref):
                    stable = False
    return summaries
