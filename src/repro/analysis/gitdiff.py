"""Git-diff-scoped lint target selection (``lint --changed``).

Resolves the set of Python files that differ from a base revision
(default ``HEAD``), plus untracked files, so pre-commit runs lint only
what the change touched.  All git access goes through :func:`_git_lines`
so tests can fake the diff without a repository.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Sequence

from ..util.errors import ValidationError

__all__ = ["changed_python_files"]


def _git_lines(args: "Sequence[str]", cwd: "Path | None" = None) -> "list[str]":
    """Run ``git <args>`` and return stdout lines (test seam)."""
    try:
        completed = subprocess.run(  # noqa: S603 - fixed argv, no shell
            ["git", *args],
            capture_output=True,
            text=True,
            check=False,
            cwd=cwd,
        )
    except OSError as error:
        raise ValidationError(f"git not runnable: {error}") from error
    if completed.returncode != 0:
        detail = completed.stderr.strip() or f"exit {completed.returncode}"
        raise ValidationError(f"git {' '.join(args)}: {detail}")
    return [line for line in completed.stdout.splitlines() if line.strip()]


def changed_python_files(
    base: str = "HEAD", *, root: "Path | None" = None
) -> "list[Path]":
    """Python files changed vs ``base``, plus untracked ones.

    Deleted files are excluded (nothing left to lint), paths are
    de-duplicated and only those that still exist are returned, so the
    list can be handed straight to the engine.
    """
    names = _git_lines(
        ["diff", "--name-only", "--diff-filter=d", base, "--"], cwd=root
    )
    names += _git_lines(
        ["ls-files", "--others", "--exclude-standard"], cwd=root
    )
    anchor = root if root is not None else Path(".")
    selected: "list[Path]" = []
    seen: "set[str]" = set()
    for name in names:
        if not name.endswith(".py") or name in seen:
            continue
        seen.add(name)
        candidate = anchor / name
        if candidate.is_file():
            selected.append(candidate)
    return sorted(selected)
