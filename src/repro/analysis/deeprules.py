"""Whole-program rules (REP012–REP017), run under ``lint --deep``.

These rules see a resolved :class:`~repro.analysis.callgraph.Project`
— every function's CFG, the call graph, and the bottom-up resource
summaries — instead of one file's AST, so they can follow a
reservation across function boundaries, down exception edges, and
through the call graph:

========  ======================================================
REP012    a reservation acquired here is never released/confirmed
          on some normal path (interprocedural REP002)
REP013    a reservation leaks when an exception unwinds
REP014    a commitment state flip is not dominated by a journal
          write on every path (dataflow REP010)
REP015    module-level mutable state is mutated on a negotiation
          path (breaks concurrent sessions)
REP016    a blocking call is reachable from an async function or a
          cooperative-scheduler task (stalls the event loop)
REP017    a reservation ledger is mutated outside its owning seam
========  ======================================================

REP015–REP017 are *concurrency-readiness* gates: the roadmap's next
step runs many negotiations concurrently in one process, and these
rules fence off the global-state, blocking-call and foreign-ledger
patterns that would make that unsound.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from .callgraph import Project
from .dataflow import CallClassifier, leak_sites, unjournaled_flips
from .extract import ACQUIRE_ATTRS, FuncExtract, ModuleExtract
from .findings import Finding
from .registry import deep_rule

__all__ = ["LEDGER_SEAMS", "NEGOTIATION_ROOT_MODULES"]

# Modules that may mutate reservation ledgers: the owners (server,
# transport) and the seams that drive commitment/recovery for them.
LEDGER_SEAMS = (
    "repro.cmfs.server",
    "repro.network.transport",
    "repro.core.commitment",
    "repro.journal.recovery",
)

# Where negotiation control flow starts (REP015 reachability roots).
NEGOTIATION_ROOT_MODULES = (
    "repro.core.negotiation",
    "repro.core.commitment",
    "repro.core.adaptation",
)
NEGOTIATION_ROOT_PACKAGES = (
    ("repro", "session"),
    ("repro", "storm"),
    ("repro", "service"),
)

# Packages whose functions run *inside* the cooperative scheduler's
# event loop (generator tasks resumed by repro.service, not
# ``async def``).  A blocking call there stalls every in-flight
# negotiation exactly like one inside an async function, so REP016
# roots its reachability walk at each of these functions too.
COOPERATIVE_ROOT_PACKAGES = (
    ("repro", "service"),
)


def _module_is(extract: ModuleExtract, dotted: str) -> bool:
    """Module-name match with a path-suffix fallback for fixture trees."""
    if extract.module == dotted:
        return True
    suffix = "/".join(dotted.split(".")) + ".py"
    return extract.path.replace("\\", "/").endswith(suffix)


def _in_package(extract: ModuleExtract, segments: "tuple[str, ...]") -> bool:
    dotted = ".".join(segments)
    if extract.module == dotted or extract.module.startswith(dotted + "."):
        return True
    parts = Path(extract.path).parts
    n = len(segments)
    return any(
        parts[i : i + n] == segments for i in range(len(parts) - n + 1)
    )


def _finding(
    project: Project,
    extract: ModuleExtract,
    rule_id: str,
    line: int,
    col: int,
    message: str,
    hint: str,
) -> Finding:
    return Finding(
        rule_id=rule_id,
        path=extract.path,
        line=line,
        column=col,
        message=message,
        hint=hint,
        source_line=project.source_line(extract.path, line),
        context=extract.scope_at(line),
    )


def _functions_with_modules(
    project: Project,
) -> "Iterator[tuple[FuncExtract, ModuleExtract]]":
    for func in project.iter_functions():
        extract = project.modules.get(func.path)
        if extract is not None:
            yield func, extract


def _leak_results(
    project: Project,
) -> "dict[str, tuple[list, list]]":
    """Memoized leak analysis shared by REP012 and REP013."""
    cached = project.analysis_cache.get("leaks")
    if cached is None:
        classifier = project.classifier()
        assert isinstance(classifier, CallClassifier)
        cached = {}
        for func in project.iter_functions():
            # Acquire primitives themselves hand the obligation to their
            # caller; only the call sites above them are checked.
            if func.qualname.split(".")[-1] in ACQUIRE_ATTRS:
                cached[func.ref] = ([], [])
                continue
            cached[func.ref] = leak_sites(func, classifier)
        project.analysis_cache["leaks"] = cached
    return cached  # type: ignore[return-value]


_REP012_HINT = (
    "release (or confirm/journal-compensate) the reservation on every "
    "path out of the function, or return it so the caller owns it"
)


@deep_rule(
    "REP012",
    "interprocedural-leak",
    "a reservation acquired here may never be released on a normal path",
    _REP012_HINT,
)
def check_rep012(project: Project) -> "Iterable[Finding]":
    leaks = _leak_results(project)
    for func, extract in _functions_with_modules(project):
        exit_leaks, _raise_leaks = leaks[func.ref]
        for var, line, col in exit_leaks:
            label = "the acquisition" if var.startswith("%") else f"{var!r}"
            yield _finding(
                project, extract, "REP012", line, col,
                f"reservation bound to {label} in {func.qualname} can reach "
                "a normal return without being released or confirmed",
                _REP012_HINT,
            )


_REP013_HINT = (
    "wrap the acquisition in try/except (or finally) and release what "
    "was already admitted before letting the exception escape"
)


@deep_rule(
    "REP013",
    "exception-path-leak",
    "a reservation leaks when an exception unwinds past its owner",
    _REP013_HINT,
)
def check_rep013(project: Project) -> "Iterable[Finding]":
    leaks = _leak_results(project)
    for func, extract in _functions_with_modules(project):
        _exit_leaks, raise_leaks = leaks[func.ref]
        for var, line, col in raise_leaks:
            label = "the acquisition" if var.startswith("%") else f"{var!r}"
            yield _finding(
                project, extract, "REP013", line, col,
                f"reservation bound to {label} in {func.qualname} is still "
                "held when an exception unwinds out of the function",
                _REP013_HINT,
            )


def _journal_scope(extract: ModuleExtract) -> bool:
    return _in_package(extract, ("repro", "session")) or _module_is(
        extract, "repro.core.commitment"
    )


_REP014_HINT = (
    "write the journal record before assigning the new state so a crash "
    "between the two is replayable; see DESIGN.md on write-ahead intent"
)


@deep_rule(
    "REP014",
    "unjournaled-flip-flow",
    "a commitment state flip is not journal-dominated on every path",
    _REP014_HINT,
)
def check_rep014(project: Project) -> "Iterable[Finding]":
    classifier = project.classifier()
    assert isinstance(classifier, CallClassifier)
    for func, extract in _functions_with_modules(project):
        if not _journal_scope(extract):
            continue
        for flip in unjournaled_flips(func, classifier):
            yield _finding(
                project, extract, "REP014", flip.line, flip.col,
                f"state transition in {func.qualname} is reachable without "
                "a journal write having happened on every path leading here",
                _REP014_HINT,
            )


def _negotiation_root(extract: ModuleExtract) -> bool:
    return any(
        _module_is(extract, module) for module in NEGOTIATION_ROOT_MODULES
    ) or any(
        _in_package(extract, segments)
        for segments in NEGOTIATION_ROOT_PACKAGES
    )


_REP015_HINT = (
    "move the state onto a session/server object (or behind an explicit "
    "registry with ownership) so concurrent negotiations cannot race on it"
)


@deep_rule(
    "REP015",
    "negotiation-global-state",
    "module-level mutable state is mutated on a negotiation path",
    _REP015_HINT,
)
def check_rep015(project: Project) -> "Iterable[Finding]":
    roots = [
        func.ref
        for func, extract in _functions_with_modules(project)
        if _negotiation_root(extract)
    ]
    reachable = project.reachable_from(roots)
    for func, extract in _functions_with_modules(project):
        if func.ref not in reachable:
            continue
        for event in func.events():
            if isinstance(event, dict) and event.get("op") == "gmut":
                yield _finding(
                    project, extract, "REP015", event["line"], event["col"],
                    f"{func.qualname} mutates module-level mutable "
                    f"{event['name']!r} on a path reachable from "
                    "negotiation entry points",
                    _REP015_HINT,
                )


_REP016_HINT = (
    "move the blocking call off the event loop (executor/thread) or use "
    "an async equivalent; sleeping or fsyncing inline stalls every "
    "in-flight negotiation"
)


@deep_rule(
    "REP016",
    "blocking-in-event-loop",
    "a blocking call is reachable from an async (event-loop) function "
    "or a cooperative-scheduler task",
    _REP016_HINT,
)
def check_rep016(project: Project) -> "Iterable[Finding]":
    async_roots = {
        func.ref for func in project.iter_functions() if func.is_async
    }
    coop_roots: "set[str]" = set()
    for func in project.iter_functions():
        extract = project.modules.get(func.path)
        if extract is None:
            continue
        if any(
            _in_package(extract, segments)
            for segments in COOPERATIVE_ROOT_PACKAGES
        ):
            coop_roots.add(func.ref)
    roots = async_roots | coop_roots
    if not roots:
        return
    root_names = {ref: project.functions[ref].qualname for ref in roots}
    seen: "set[tuple[str, int, int]]" = set()
    for root in sorted(roots):
        root_kind = (
            "async" if root in async_roots else "cooperative task"
        )
        for ref in sorted(project.reachable_from([root])):
            func = project.functions[ref]
            extract = project.modules.get(func.path)
            if extract is None:
                continue
            for event in func.call_events():
                if not event.blocking:
                    continue
                key = (func.path, event.line, event.col)
                if key in seen:
                    continue
                seen.add(key)
                via = (
                    "directly"
                    if ref == root
                    else f"via {func.qualname}"
                )
                yield _finding(
                    project, extract, "REP016", event.line, event.col,
                    f"blocking call {event.name}() is reachable from "
                    f"{root_kind} {root_names[root]} {via}",
                    _REP016_HINT,
                )


_REP017_HINT = (
    "route the mutation through the ledger's owner (server/transport "
    "release paths or the commitment/recovery seams) instead of poking "
    "its internal table"
)


@deep_rule(
    "REP017",
    "foreign-ledger-mutation",
    "a reservation ledger is mutated outside its owning seam",
    _REP017_HINT,
)
def check_rep017(project: Project) -> "Iterable[Finding]":
    for func, extract in _functions_with_modules(project):
        if any(_module_is(extract, seam) for seam in LEDGER_SEAMS):
            continue
        for event in func.events():
            if isinstance(event, dict) and event.get("op") == "ledger":
                yield _finding(
                    project, extract, "REP017", event["line"], event["col"],
                    f"{func.qualname} mutates reservation ledger "
                    f"{event['attr']!r} of {event['recv']!r} from outside "
                    "the owning manager/committer seams",
                    _REP017_HINT,
                )
