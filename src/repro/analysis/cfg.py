"""Per-function control-flow graphs with exception edges.

The deep analyses (:mod:`repro.analysis.dataflow`) need to reason about
*paths*: "is every acquisition released on every way out of this
function, including the ways an exception takes?"  This module turns one
function body into a statement-level CFG:

* one node per simple statement (plus the branch heads of compound
  statements), each carrying the 1-based source line range it covers;
* three virtual nodes — ``ENTRY``, ``EXIT`` (normal return / fallthrough)
  and ``RAISE`` (exceptional exit) — so analyses can ask for the state
  at each kind of function exit separately;
* ``NORMAL`` edges for sequencing/branching and ``EXC`` edges from every
  statement that may raise to the innermost enclosing handler chain
  (``except`` bodies, then ``finally``, then ``RAISE``).

Exception edges are conservative: any statement containing a call is
assumed to possibly raise — *except* calls whose leaf name carries a
teardown marker (``release``/``rollback``/``teardown``), which the
codebase guarantees to be total (see ``ResourceCommitter._rollback``).
``finally`` suites are duplicated (one copy on the normal path, one on
the exceptional path) so a may-analysis never merges the two regimes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "ENTRY",
    "EXIT",
    "RAISE",
    "NORMAL",
    "EXC",
    "LOOP_EXIT",
    "CfgNode",
    "Cfg",
    "build_cfg",
    "statement_may_raise",
]

ENTRY = 0
EXIT = 1
RAISE = 2

NORMAL = "n"
EXC = "e"
LOOP_EXIT = "x"  # for-loop head -> join: the loop target goes stale

_NO_RAISE_MARKERS = ("release", "rollback", "teardown")


def _call_leaf(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def statement_may_raise(stmt: ast.stmt) -> bool:
    """Can executing this statement transfer control to a handler?

    Conservative: raises, asserts, and any call that is not a pure
    teardown marker may raise.  Nested function/lambda bodies do not
    execute at definition time and are skipped.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for sub in _walk_executed(stmt):
        if isinstance(sub, ast.Call):
            leaf = _call_leaf(sub).lower()
            if not any(marker in leaf for marker in _NO_RAISE_MARKERS):
                return True
    return False


def _walk_executed(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested ``def`` bodies.

    Lambdas *are* descended into: the repo's commitment path runs
    acquisition thunks through resilient-call helpers, so a lambda's
    calls are attributed to the statement that builds it.
    """
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            stack.append(child)


@dataclass(slots=True)
class CfgNode:
    """One CFG node: a simple statement or a virtual entry/exit."""

    node_id: int
    stmt: "ast.stmt | None" = None
    line: int = 0
    succ: "list[tuple[int, str]]" = field(default_factory=list)

    def link(self, target: int, kind: str = NORMAL) -> None:
        edge = (target, kind)
        if edge not in self.succ:
            self.succ.append(edge)


@dataclass(slots=True)
class Cfg:
    """The statement-level CFG of one function body."""

    nodes: "dict[int, CfgNode]" = field(default_factory=dict)

    def node(self, node_id: int) -> CfgNode:
        return self.nodes[node_id]

    def successors(self, node_id: int) -> "list[tuple[int, str]]":
        return self.nodes[node_id].succ

    def statement_nodes(self) -> "list[CfgNode]":
        return [
            n for n in self.nodes.values() if n.stmt is not None
        ]

    def predecessors(self, node_id: int) -> "list[tuple[int, str]]":
        return [
            (n.node_id, kind)
            for n in self.nodes.values()
            for (target, kind) in n.succ
            if target == node_id
        ]


@dataclass(slots=True)
class _Frame:
    """Where control goes on raise / break / continue at one nesting level."""

    exc_targets: "tuple[int, ...]"  # handler heads (or finally head / RAISE)
    break_target: "int | None" = None
    continue_target: "int | None" = None


class _Builder:
    def __init__(self) -> None:
        self.cfg = Cfg()
        self._next_id = RAISE + 1
        for node_id in (ENTRY, EXIT, RAISE):
            self.cfg.nodes[node_id] = CfgNode(node_id=node_id)

    def _new(self, stmt: "ast.stmt | None") -> CfgNode:
        node = CfgNode(
            node_id=self._next_id,
            stmt=stmt,
            line=getattr(stmt, "lineno", 0) if stmt is not None else 0,
        )
        self._next_id += 1
        self.cfg.nodes[node.node_id] = node
        return node

    def _link_all(self, sources: Iterable[int], target: int, kind: str = NORMAL) -> None:
        for source in sources:
            self.cfg.nodes[source].link(target, kind)

    # -- statement sequences --------------------------------------------------------

    def build(self, body: "list[ast.stmt]") -> Cfg:
        tails = self._sequence(body, [ENTRY], _Frame(exc_targets=(RAISE,)))
        self._link_all(tails, EXIT)
        return self.cfg

    def _sequence(
        self, stmts: "list[ast.stmt]", entries: "list[int]", frame: _Frame
    ) -> "list[int]":
        current = entries
        for stmt in stmts:
            if not current:
                break  # unreachable code after return/raise/break
            current = self._statement(stmt, current, frame)
        return current

    def _statement(
        self, stmt: ast.stmt, entries: "list[int]", frame: _Frame
    ) -> "list[int]":
        if isinstance(stmt, (ast.If,)):
            return self._if(stmt, entries, frame)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, entries, frame)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, entries, frame)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, entries, frame)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A nested definition executes (binds a name) but its body does
            # not run here; it is analysed as its own function.
            node = self._new(stmt)
            self._link_all(entries, node.node_id)
            return [node.node_id]
        return self._simple(stmt, entries, frame)

    # -- simple statements ----------------------------------------------------------

    def _simple(
        self, stmt: ast.stmt, entries: "list[int]", frame: _Frame
    ) -> "list[int]":
        node = self._new(stmt)
        self._link_all(entries, node.node_id)
        if statement_may_raise(stmt):
            for target in frame.exc_targets:
                node.link(target, EXC)
        if isinstance(stmt, ast.Return):
            node.link(EXIT)
            return []
        if isinstance(stmt, ast.Raise):
            # Control never continues past an explicit raise; the EXC
            # edges above already route it to the handlers.
            return []
        if isinstance(stmt, ast.Break):
            if frame.break_target is not None:
                node.link(frame.break_target)
            return []
        if isinstance(stmt, ast.Continue):
            if frame.continue_target is not None:
                node.link(frame.continue_target)
            return []
        return [node.node_id]

    # -- compound statements ---------------------------------------------------------

    def _if(self, stmt: ast.If, entries: "list[int]", frame: _Frame) -> "list[int]":
        head = self._new(stmt)
        self._link_all(entries, head.node_id)
        if statement_may_raise_expr(stmt.test):
            for target in frame.exc_targets:
                head.link(target, EXC)
        then_tails = self._sequence(stmt.body, [head.node_id], frame)
        else_tails = self._sequence(stmt.orelse, [head.node_id], frame)
        if not stmt.orelse:
            else_tails = [head.node_id]
        return then_tails + else_tails

    def _loop(
        self,
        stmt: "ast.While | ast.For | ast.AsyncFor",
        entries: "list[int]",
        frame: _Frame,
    ) -> "list[int]":
        head = self._new(stmt)
        self._link_all(entries, head.node_id)
        test = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        if statement_may_raise_expr(test):
            for target in frame.exc_targets:
                head.link(target, EXC)
        join = self._new(None)  # loop exit join point
        join.line = getattr(stmt, "lineno", 0)
        inner = _Frame(
            exc_targets=frame.exc_targets,
            break_target=join.node_id,
            continue_target=head.node_id,
        )
        body_tails = self._sequence(stmt.body, [head.node_id], inner)
        self._link_all(body_tails, head.node_id)  # back edge
        # Loop may run zero times / the condition falsifies.  For-loops
        # get the distinct LOOP_EXIT kind: past this edge the target
        # variable no longer names a live element, which lets dataflow
        # treat `for r in held: release(r)` as settling the container.
        exit_kind = NORMAL if isinstance(stmt, ast.While) else LOOP_EXIT
        head.link(join.node_id, exit_kind)
        else_tails = self._sequence(stmt.orelse, [join.node_id], frame)
        return else_tails if stmt.orelse else [join.node_id]

    def _with(
        self, stmt: "ast.With | ast.AsyncWith", entries: "list[int]", frame: _Frame
    ) -> "list[int]":
        head = self._new(stmt)
        self._link_all(entries, head.node_id)
        if any(statement_may_raise_expr(item.context_expr) for item in stmt.items):
            for target in frame.exc_targets:
                head.link(target, EXC)
        # The context manager's __exit__ runs on both regimes; for the
        # resource analyses a `with` acquisition is released by construction,
        # handled at the event level (extract marks `with`-bound names).
        return self._sequence(stmt.body, [head.node_id], frame)

    def _try(self, stmt: ast.Try, entries: "list[int]", frame: _Frame) -> "list[int]":
        handler_heads: "list[int]" = []
        handler_nodes: "list[CfgNode]" = []
        for handler in stmt.handlers:
            node = self._new(handler)  # type: ignore[arg-type]
            node.line = handler.lineno
            handler_nodes.append(node)
            handler_heads.append(node.node_id)

        has_finally = bool(stmt.finalbody)
        # Exceptional copy of the finally suite: entered when an exception
        # is in flight; after it, the exception propagates outward.
        if has_finally:
            exc_finally_entry = self._new(None)
            exc_finally_entry.line = stmt.finalbody[0].lineno
            exc_finally_tails = self._sequence(
                stmt.finalbody, [exc_finally_entry.node_id], frame
            )
            # The in-flight exception resumes after the suite *completes*,
            # so this edge is NORMAL-kind: dataflow must see the state
            # with the finally's cleanup applied (EXC kind would snap
            # back to the pre-statement state and erase e.g. a rollback
            # the finally just performed).  Raises *inside* the suite
            # still take the per-statement EXC edges added above.
            for target in frame.exc_targets:
                self._link_all(exc_finally_tails, target, NORMAL)
            body_exc_targets: "tuple[int, ...]" = (
                tuple(handler_heads) + (exc_finally_entry.node_id,)
                if handler_heads
                else (exc_finally_entry.node_id,)
            )
            handler_exc_targets: "tuple[int, ...]" = (exc_finally_entry.node_id,)
        else:
            body_exc_targets = (
                tuple(handler_heads) if handler_heads else frame.exc_targets
            )
            handler_exc_targets = frame.exc_targets

        body_frame = _Frame(
            exc_targets=body_exc_targets,
            break_target=frame.break_target,
            continue_target=frame.continue_target,
        )
        body_tails = self._sequence(stmt.body, entries, body_frame)
        else_tails = (
            self._sequence(stmt.orelse, body_tails, body_frame)
            if stmt.orelse
            else body_tails
        )

        handler_frame = _Frame(
            exc_targets=handler_exc_targets,
            break_target=frame.break_target,
            continue_target=frame.continue_target,
        )
        handler_tails: "list[int]" = []
        for handler, node in zip(stmt.handlers, handler_nodes):
            tails = self._sequence(handler.body, [node.node_id], handler_frame)
            handler_tails.extend(tails)

        exits = else_tails + handler_tails
        if has_finally:
            # Normal copy of the finally suite.
            normal_tails = self._sequence(stmt.finalbody, exits, frame)
            return normal_tails
        return exits


def statement_may_raise_expr(expr: "ast.expr | None") -> bool:
    if expr is None:
        return False
    for sub in _walk_executed(expr):
        if isinstance(sub, ast.Call):
            leaf = _call_leaf(sub).lower()
            if not any(marker in leaf for marker in _NO_RAISE_MARKERS):
                return True
    return False


def build_cfg(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> Cfg:
    """Build the statement-level CFG of one function definition."""
    return _Builder().build(func.body)
