"""CLI plumbing for ``python -m repro lint`` and ``... typecheck``.

``lint`` runs the reprolint engine and exits nonzero on any unbaselined
finding; ``typecheck`` runs the strict mypy gate over the typed core
(:mod:`repro.core`, :mod:`repro.faults`, :mod:`repro.analysis`) and is
skipped gracefully — exit 0 with a notice — when mypy is not installed,
so the in-repo toolchain never hard-depends on it (CI installs it).
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from ..util.errors import ValidationError
from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .deep import DEFAULT_CACHE_DIR, DeepLintEngine
from .engine import LintEngine
from .gitdiff import changed_python_files
from .registry import all_deep_rules, all_rules, deep_rule_ids
from .report import render_json, render_text

__all__ = [
    "add_lint_arguments",
    "add_typecheck_arguments",
    "run_lint",
    "run_typecheck",
    "TYPED_CORE_PACKAGES",
]

TYPED_CORE_PACKAGES = ("repro.core", "repro.faults", "repro.analysis")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text", dest="fmt",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE_NAME,
        help=f"baseline file of sanctioned findings "
             f"(default: {DEFAULT_BASELINE_NAME}; missing file = empty)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0 "
             "(justifications must then be filled in by hand)",
    )
    parser.add_argument(
        "--select", action="append", default=[], metavar="REPnnn",
        help="run only these rules (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="REPnnn",
        help="skip these rules (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--no-hints", action="store_true", help="omit fix hints from output",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help="run the whole-program rules (REP012+) over the project call "
             "graph in addition to the per-file rules",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"per-module extract cache for --deep "
             f"(default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the --deep extract cache for this run",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="lint only Python files changed vs --diff-base (plus "
             "untracked files) instead of the given paths",
    )
    parser.add_argument(
        "--diff-base", default="HEAD", metavar="REV",
        help="revision --changed diffs against (default: HEAD)",
    )


def _split_rule_ids(values: Sequence[str]) -> list[str]:
    """Flatten repeated ``--select``/``--ignore`` flags and comma lists."""
    return [
        part.strip()
        for value in values
        for part in value.split(",")
        if part.strip()
    ]


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name}: {rule.summary}")
        for deep in all_deep_rules():
            print(f"{deep.rule_id}  {deep.name}: {deep.summary} [--deep]")
        return 0
    try:
        paths: "Sequence[str | Path]" = args.paths
        if args.changed:
            paths = changed_python_files(args.diff_base)
            if not paths:
                print("lint: no Python files changed vs "
                      f"{args.diff_base}; nothing to check")
                return 0
        baseline = (
            Baseline()
            if args.no_baseline or args.update_baseline
            else Baseline.load(args.baseline)
        )
        select = _split_rule_ids(args.select)
        ignore = _split_rule_ids(args.ignore)
        engine: "LintEngine | DeepLintEngine"
        if args.deep:
            engine = DeepLintEngine(
                select=select or None,
                ignore=ignore or None,
                baseline=baseline,
                cache_dir=None if args.no_cache else args.cache_dir,
            )
        else:
            asked_deep = sorted(
                (set(select) | set(ignore)) & deep_rule_ids()
            )
            if asked_deep:
                raise ValidationError(
                    f"{', '.join(asked_deep)}: whole-program rule"
                    f"{'s need' if len(asked_deep) != 1 else ' needs'} the "
                    "project call graph; rerun with --deep"
                )
            engine = LintEngine(
                select=select or None,
                ignore=ignore or None,
                baseline=baseline,
            )
        report = engine.run(paths)
    except ValidationError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2
    if args.update_baseline:
        merged = Baseline.from_findings(report.findings)
        previous = Baseline.load(args.baseline)
        for fingerprint, entry in merged.entries.items():
            kept = previous.entries.get(fingerprint)
            if kept is not None and kept.justification.strip():
                merged.entries[fingerprint] = kept
        merged.dump(args.baseline)
        print(
            f"wrote {len(merged.entries)} entr"
            f"{'y' if len(merged.entries) == 1 else 'ies'} to {args.baseline}"
        )
        return 0
    if args.fmt == "json":
        print(render_json(report))
    else:
        print(render_text(report, show_hints=not args.no_hints))
        if args.deep:
            print(
                f"deep: {report.cold_files} cold, {report.warm_files} warm "
                f"(cache {'off' if args.no_cache else args.cache_dir})"
            )
    return report.exit_code()


# -- mypy gate -------------------------------------------------------------------


def add_typecheck_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "packages", nargs="*", default=list(TYPED_CORE_PACKAGES),
        help=f"packages to check (default: {' '.join(TYPED_CORE_PACKAGES)})",
    )
    parser.add_argument(
        "--require-mypy", action="store_true",
        help="fail (exit 3) instead of skipping when mypy is missing",
    )


def mypy_available() -> bool:
    return importlib.util.find_spec("mypy") is not None


def run_typecheck(args: argparse.Namespace) -> int:
    if not mypy_available():
        message = (
            "typecheck: mypy is not installed; the typed-core gate was "
            "skipped (CI runs it — install mypy to run it locally)"
        )
        print(message, file=sys.stderr)
        return 3 if args.require_mypy else 0
    src = Path(__file__).resolve().parents[2]
    command = [
        sys.executable, "-m", "mypy",
        *(part for package in args.packages for part in ("-p", package)),
    ]
    completed = subprocess.run(  # noqa: S603 - fixed argv, no shell
        command, cwd=src.parent, check=False
    )
    return completed.returncode
