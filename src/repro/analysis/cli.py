"""CLI plumbing for ``python -m repro lint`` and ``... typecheck``.

``lint`` runs the reprolint engine and exits nonzero on any unbaselined
finding; ``typecheck`` runs the strict mypy gate over the typed core
(:mod:`repro.core`, :mod:`repro.faults`, :mod:`repro.analysis`) and is
skipped gracefully — exit 0 with a notice — when mypy is not installed,
so the in-repo toolchain never hard-depends on it (CI installs it).
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from ..util.errors import ValidationError
from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .engine import LintEngine
from .registry import all_rules
from .report import render_json, render_text

__all__ = [
    "add_lint_arguments",
    "add_typecheck_arguments",
    "run_lint",
    "run_typecheck",
    "TYPED_CORE_PACKAGES",
]

TYPED_CORE_PACKAGES = ("repro.core", "repro.faults", "repro.analysis")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text", dest="fmt",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE_NAME,
        help=f"baseline file of sanctioned findings "
             f"(default: {DEFAULT_BASELINE_NAME}; missing file = empty)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0 "
             "(justifications must then be filled in by hand)",
    )
    parser.add_argument(
        "--select", action="append", default=[], metavar="REPnnn",
        help="run only these rules (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="REPnnn",
        help="skip these rules (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--no-hints", action="store_true", help="omit fix hints from output",
    )


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name}: {rule.summary}")
        return 0
    try:
        baseline = (
            Baseline()
            if args.no_baseline or args.update_baseline
            else Baseline.load(args.baseline)
        )
        engine = LintEngine(
            select=args.select or None,
            ignore=args.ignore or None,
            baseline=baseline,
        )
        report = engine.run(args.paths)
    except ValidationError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2
    if args.update_baseline:
        merged = Baseline.from_findings(report.findings)
        previous = Baseline.load(args.baseline)
        for fingerprint, entry in merged.entries.items():
            kept = previous.entries.get(fingerprint)
            if kept is not None and kept.justification.strip():
                merged.entries[fingerprint] = kept
        merged.dump(args.baseline)
        print(
            f"wrote {len(merged.entries)} entr"
            f"{'y' if len(merged.entries) == 1 else 'ies'} to {args.baseline}"
        )
        return 0
    if args.fmt == "json":
        print(render_json(report))
    else:
        print(render_text(report, show_hints=not args.no_hints))
    return report.exit_code()


# -- mypy gate -------------------------------------------------------------------


def add_typecheck_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "packages", nargs="*", default=list(TYPED_CORE_PACKAGES),
        help=f"packages to check (default: {' '.join(TYPED_CORE_PACKAGES)})",
    )
    parser.add_argument(
        "--require-mypy", action="store_true",
        help="fail (exit 3) instead of skipping when mypy is missing",
    )


def mypy_available() -> bool:
    return importlib.util.find_spec("mypy") is not None


def run_typecheck(args: argparse.Namespace) -> int:
    if not mypy_available():
        message = (
            "typecheck: mypy is not installed; the typed-core gate was "
            "skipped (CI runs it — install mypy to run it locally)"
        )
        print(message, file=sys.stderr)
        return 3 if args.require_mypy else 0
    src = Path(__file__).resolve().parents[2]
    command = [
        sys.executable, "-m", "mypy",
        *(part for package in args.packages for part in ("-p", package)),
    ]
    completed = subprocess.run(  # noqa: S603 - fixed argv, no shell
        command, cwd=src.parent, check=False
    )
    return completed.returncode
