"""The lint engine: file collection, rule pipeline, filtering.

One :class:`ModuleContext` is built per file (one parse), every selected
rule runs over it, and the resulting findings are filtered through the
inline pragmas and the baseline.  Files that fail to parse are reported
as engine errors rather than aborting the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..util.errors import ValidationError
from .baseline import Baseline
from .context import ModuleContext
from .findings import Finding
from .registry import Rule, all_rules

__all__ = ["LintEngine", "LintReport", "iter_python_files"]

_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".mypy_cache",
    ".pytest_cache",
    "build",
    "dist",
    ".eggs",
}


def iter_python_files(paths: "Sequence[Path | str]") -> "Iterator[Path]":
    """Yield every ``.py`` file under the given files/directories."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(
                p
                for p in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(p.parts)
            )
        elif path.is_file():
            candidates = [path]
        else:
            raise ValidationError(f"no such file or directory: {path}")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


@dataclass(slots=True)
class LintReport:
    """Outcome of one engine run."""

    findings: "list[Finding]" = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files_checked: int = 0
    errors: "list[str]" = field(default_factory=list)
    unjustified_baseline: "list[str]" = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors and not self.unjustified_baseline

    def exit_code(self) -> int:
        return 0 if self.clean else 1


class LintEngine:
    """Run a set of rules over a set of files."""

    def __init__(
        self,
        *,
        rules: "Sequence[Rule] | None" = None,
        select: "Sequence[str] | None" = None,
        ignore: "Sequence[str] | None" = None,
        baseline: "Baseline | None" = None,
    ) -> None:
        available = list(rules) if rules is not None else all_rules()
        known = {r.rule_id for r in available}
        for rule_id in list(select or []) + list(ignore or []):
            if rule_id not in known:
                raise ValidationError(f"unknown rule id {rule_id!r}")
        if select:
            wanted = set(select)
            available = [r for r in available if r.rule_id in wanted]
        if ignore:
            dropped = set(ignore)
            available = [r for r in available if r.rule_id not in dropped]
        self.rules = available
        self.baseline = baseline if baseline is not None else Baseline()

    # -- single file ---------------------------------------------------------------

    def check_context(self, ctx: ModuleContext) -> "list[Finding]":
        """Raw findings for one parsed file (no baseline filtering)."""
        findings: list[Finding] = []
        for rule in self.rules:
            findings.extend(rule.run(ctx))
        return sorted(findings, key=Finding.sort_key)

    def check_source(
        self, source: str, *, path: str = "<string>", module: "str | None" = None
    ) -> "list[Finding]":
        return self.check_context(
            ModuleContext.from_source(source, path=path, module=module)
        )

    # -- full run ------------------------------------------------------------------

    def run(self, paths: "Sequence[Path | str]") -> LintReport:
        report = LintReport()
        for path in iter_python_files(paths):
            try:
                ctx = ModuleContext.from_path(path)
            except (ValidationError, OSError, UnicodeDecodeError) as error:
                report.errors.append(str(error))
                continue
            report.files_checked += 1
            for finding in self.check_context(ctx):
                if ctx.suppressed(finding.rule_id, finding.line):
                    report.suppressed += 1
                elif self.baseline.match(finding) is not None:
                    report.baselined += 1
                else:
                    report.findings.append(finding)
        report.findings.sort(key=Finding.sort_key)
        report.unjustified_baseline = [
            f"{entry.path}: baseline entry {entry.fingerprint} ({entry.rule_id}) "
            "has no justification"
            for entry in self.baseline.unjustified()
        ]
        return report
