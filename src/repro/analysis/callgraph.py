"""Project-wide symbol table and call graph.

Builds the whole-program view the deep rules run over: every function's
:class:`~repro.analysis.extract.FuncExtract` keyed by its project-unique
``module::qualname`` ref, call-site resolution (bare names, imports,
``self.``/``cls.`` dispatch through base classes, class instantiation →
``__init__``), the caller/callee adjacency, and Tarjan SCCs in
bottom-up order so summaries can be computed with one fixpoint pass per
strongly-connected component.

Resolution is deliberately *static and conservative*: a call through a
local variable of unknown type stays unresolved and is handled by the
marker heuristics in :mod:`repro.analysis.summaries` instead of being
guessed at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .extract import CallEvent, FuncExtract, ModuleExtract

__all__ = ["Project", "build_project"]


@dataclass(slots=True)
class Project:
    """The resolved whole-program view handed to deep rules."""

    # path -> module extract (iteration order = engine file order)
    modules: "dict[str, ModuleExtract]" = field(default_factory=dict)
    # "module::qualname" -> function extract
    functions: "dict[str, FuncExtract]" = field(default_factory=dict)
    # absolute dotted name ("repro.core.offers.rank") -> ref
    _by_dotted: "dict[str, str]" = field(default_factory=dict)
    # absolute dotted class name -> (module, class name)
    _classes: "dict[str, tuple[str, str]]" = field(default_factory=dict)
    # ref -> sorted resolved callee refs
    callees: "dict[str, list[str]]" = field(default_factory=dict)
    # ref -> sorted caller refs
    callers: "dict[str, list[str]]" = field(default_factory=dict)
    # scratch space for memoized per-run analyses (summaries, leak sets)
    analysis_cache: "dict[str, object]" = field(default_factory=dict)

    def summaries(self) -> "dict[str, object]":
        """Per-function resource summaries, computed once per project."""
        cached = self.analysis_cache.get("summaries")
        if cached is None:
            from .summaries import compute_summaries

            cached = compute_summaries(self)
            self.analysis_cache["summaries"] = cached
        return cached  # type: ignore[return-value]

    def classifier(self) -> "object":
        """Shared call classifier over this project's summaries."""
        cached = self.analysis_cache.get("classifier")
        if cached is None:
            from .dataflow import CallClassifier

            cached = CallClassifier(self, self.summaries())  # type: ignore[arg-type]
            self.analysis_cache["classifier"] = cached
        return cached

    def source_line(self, path: str, line: int) -> str:
        """Read one source line (cached per file) for finding text."""
        lines_by_path = self.analysis_cache.setdefault("source_lines", {})
        lines = lines_by_path.get(path)  # type: ignore[union-attr]
        if lines is None:
            try:
                text = Path(path).read_text(encoding="utf-8")
            except OSError:
                text = ""
            lines = text.splitlines()
            lines_by_path[path] = lines  # type: ignore[index]
        if 1 <= line <= len(lines):
            return lines[line - 1]
        return ""

    def module_named(self, name: str) -> "ModuleExtract | None":
        for extract in self.modules.values():
            if extract.module == name:
                return extract
        return None

    def function_at(self, module: str, qualname: str) -> "FuncExtract | None":
        return self.functions.get(f"{module}::{qualname}")

    def iter_functions(self) -> "Iterator[FuncExtract]":
        for ref in sorted(self.functions):
            yield self.functions[ref]

    # -- resolution ------------------------------------------------------------

    def resolve_call(self, caller: FuncExtract, event: CallEvent) -> "str | None":
        """Resolve one call site to a project function ref, or ``None``."""
        name = event.name
        if not name or name.startswith("?"):
            return None
        parts = name.split(".")
        if parts[0] in ("self", "cls"):
            if len(parts) != 2 or caller.cls is None:
                return None
            return self._resolve_method(caller.module, caller.cls, parts[1])
        module = self._module_of(caller)
        dotted = self._absolute(module, name)
        if dotted is None:
            return None
        ref = self._by_dotted.get(dotted)
        if ref is not None:
            return ref
        # Class instantiation runs its __init__.
        cls_home = self._classes.get(dotted)
        if cls_home is not None:
            return self._resolve_method(cls_home[0], cls_home[1], "__init__")
        return None

    def _module_of(self, func: FuncExtract) -> "ModuleExtract | None":
        extract = self.modules.get(func.path)
        if extract is not None:
            return extract
        return self.module_named(func.module)

    def _absolute(
        self, module: "ModuleExtract | None", name: str
    ) -> "str | None":
        parts = name.split(".")
        if module is None:
            return None
        target = module.imports.get(parts[0])
        if target is not None:
            return ".".join([target] + parts[1:])
        # Same-module function/class (including nested qualnames).
        local = f"{module.module}.{name}"
        if local in self._by_dotted or local in self._classes:
            return local
        return None

    def _resolve_method(
        self, module: str, cls: str, method: str, _depth: int = 0
    ) -> "str | None":
        if _depth > 8:  # cyclic/deep inheritance backstop
            return None
        extract = self.module_named(module)
        if extract is None:
            return None
        info = extract.classes.get(cls)
        if info is None:
            return None
        if method in info["methods"]:
            return f"{module}::{cls}.{method}"
        for base in info["bases"]:
            dotted = self._absolute(extract, base)
            home = self._classes.get(dotted) if dotted else None
            if home is not None:
                found = self._resolve_method(
                    home[0], home[1], method, _depth + 1
                )
                if found is not None:
                    return found
        return None

    # -- graph queries ---------------------------------------------------------

    def reachable_from(self, roots: "Iterable[str]") -> "set[str]":
        seen: "set[str]" = set()
        stack = [ref for ref in roots if ref in self.functions]
        while stack:
            ref = stack.pop()
            if ref in seen:
                continue
            seen.add(ref)
            stack.extend(self.callees.get(ref, ()))
        return seen

    def sccs_bottom_up(self) -> "list[list[str]]":
        """Tarjan SCCs, callees-before-callers (summary evaluation order)."""
        index_of: "dict[str, int]" = {}
        low: "dict[str, int]" = {}
        on_stack: "set[str]" = set()
        stack: "list[str]" = []
        sccs: "list[list[str]]" = []
        counter = [0]

        def strongconnect(root: str) -> None:
            # Iterative Tarjan (fixture packages can recurse deeply).
            work: "list[tuple[str, int]]" = [(root, 0)]
            while work:
                node, edge_index = work[-1]
                if edge_index == 0:
                    index_of[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                advanced = False
                edges = self.callees.get(node, [])
                while edge_index < len(edges):
                    succ = edges[edge_index]
                    edge_index += 1
                    if succ not in index_of:
                        work[-1] = (node, edge_index)
                        work.append((succ, 0))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index_of[node]:
                    component: "list[str]" = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    sccs.append(sorted(component))

        for ref in sorted(self.functions):
            if ref not in index_of:
                strongconnect(ref)
        # Tarjan emits components in reverse topological order already:
        # every SCC is appended only after all SCCs it can reach.
        return sccs


def build_project(extracts: "Iterable[ModuleExtract]") -> Project:
    """Assemble the symbol table and call graph from module extracts."""
    project = Project()
    for extract in extracts:
        project.modules[extract.path] = extract
        for func in extract.functions.values():
            project.functions[func.ref] = func
            project._by_dotted[f"{extract.module}.{func.qualname}"] = func.ref
        for cls in extract.classes:
            project._classes[f"{extract.module}.{cls}"] = (extract.module, cls)
    for ref, func in project.functions.items():
        resolved: "set[str]" = set()
        for event in func.call_events():
            target = project.resolve_call(func, event)
            if target is not None and target != ref:
                resolved.add(target)
        project.callees[ref] = sorted(resolved)
    for ref, targets in project.callees.items():
        for target in targets:
            project.callers.setdefault(target, []).append(ref)
    for ref in project.callers:
        project.callers[ref].sort()
    return project
