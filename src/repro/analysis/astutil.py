"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["dotted_name", "build_parent_map", "assigned_names", "decorator_name"]


def dotted_name(node: ast.expr) -> "str | None":
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def decorator_name(node: ast.expr) -> "str | None":
    """The dotted name of a decorator, unwrapping a call if present."""
    if isinstance(node, ast.Call):
        node = node.func
    return dotted_name(node)


def build_parent_map(tree: ast.AST) -> "dict[ast.AST, ast.AST]":
    """Child → parent links for the whole tree."""
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def assigned_names(node: ast.AST) -> "set[str]":
    """Every plain name bound by assignments/for/with inside ``node``."""
    names: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store, ast.Del)):
            names.add(sub.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(sub.name)
    return names


def loop_target_names(target: ast.expr) -> "set[str]":
    """Names bound by a ``for`` target (handles tuple unpacking)."""
    names: set[str] = set()
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
    return names
