"""Lint findings: what a rule reports and how findings are identified.

A finding pins a rule violation to a ``file:line`` location, carries the
human-facing message and fix hint, and exposes a *fingerprint* — a
stable hash of (rule id, file name, code-context hash) used by the
baseline so sanctioned findings survive unrelated edits that only move
line numbers.  The code context is the offending source text anchored
to the qualified name of its enclosing function/class, so two identical
lines in different functions baseline independently, while inserting or
editing code *above* a sanctioned finding never invalidates its entry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


def _digest(*parts: str) -> str:
    return hashlib.sha256("\x00".join(parts).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    column: int
    message: str
    hint: str = ""
    source_line: str = field(default="", compare=False)
    context: str = field(default="", compare=False)  # enclosing def/class qualname

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    @property
    def _basename(self) -> str:
        return self.path.replace("\\", "/").rsplit("/", 1)[-1]

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Deliberately excludes the line *number* (entries must survive
        edits elsewhere in the file) but includes the code-context hash
        — enclosing scope qualname plus stripped source text — so the
        baseline entry dies with the code it sanctioned and never
        cross-matches an identical line in a different function.
        """
        return _digest(
            self.rule_id,
            self._basename,
            _digest(self.context, self.source_line.strip()),
        )

    @property
    def legacy_fingerprint(self) -> str:
        """Pre-context fingerprint (rule, basename, source text only).

        Kept so baselines written before the code-context hash existed
        keep matching; the baseline tries this after :attr:`fingerprint`.
        """
        return _digest(self.rule_id, self._basename, self.source_line.strip())

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule_id)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "hint": self.hint,
            "source_line": self.source_line,
            "context": self.context,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output (cache replay)."""
        return cls(
            rule_id=str(raw["rule"]),
            path=str(raw["path"]),
            line=int(raw["line"]),  # type: ignore[arg-type]
            column=int(raw["column"]),  # type: ignore[arg-type]
            message=str(raw["message"]),
            hint=str(raw.get("hint", "")),
            source_line=str(raw.get("source_line", "")),
            context=str(raw.get("context", "")),
        )
