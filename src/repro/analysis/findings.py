"""Lint findings: what a rule reports and how findings are identified.

A finding pins a rule violation to a ``file:line`` location, carries the
human-facing message and fix hint, and exposes a *fingerprint* — a
stable hash of (rule id, file name, offending source text) used by the
baseline so sanctioned findings survive unrelated edits that only move
line numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    column: int
    message: str
    hint: str = ""
    source_line: str = field(default="", compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Deliberately excludes the line *number* (entries must survive
        edits elsewhere in the file) but includes the stripped source
        text, so the baseline entry dies with the code it sanctioned.
        """
        basename = self.path.replace("\\", "/").rsplit("/", 1)[-1]
        material = "\x00".join(
            (self.rule_id, basename, self.source_line.strip())
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule_id)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }
