"""Per-function dataflow over the statement CFG, with call summaries.

Two forward analyses drive the deep rules:

**May-held leak analysis** (REP012/REP013).  Facts are *held
acquisition sites* ``(var, line, col)``.  A site is generated when a
marker acquisition (or a call to a ``returns_acquisition`` callee)
binds a local; it is killed when the local reaches a releasing use —
a marker release, a call whose summary releases its arguments, an
escape into an attribute/container, a ``return``, or a rebind.
Ownership *transfers* instead of dying when a held value moves through
an alias (``x = y``), a container append, or a pass-through call whose
result is bound.  Exception edges carry the state from *before* the
raising statement — a call that blew up never handed its result back,
but everything acquired earlier is still live and must be cleaned up
by the handler.  Sites still held at EXIT leak on a normal path
(REP012); sites held only at the virtual RAISE node leak when an
exception unwinds (REP013).

**Must-journaled analysis** (REP014).  The fact is "a journal write has
definitely happened on *every* path from entry"; merges intersect.  A
``.state = CommitmentState...`` flip where the fact is false is a
crash-window: a failure at that instant leaves a state transition no
recovery scan can replay.  Unlike REP010's syntactic adjacency check,
this follows the actual paths — including exception edges, where the
raising statement's own journal call must not be credited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .callgraph import Project
from .cfg import ENTRY, EXC, EXIT, LOOP_EXIT, RAISE
from .extract import CallEvent, FuncExtract
from .summaries import (
    FuncSummary,
    is_acquire_marker,
    is_journal_marker,
    is_release_marker,
)

__all__ = ["Site", "CallClassifier", "leak_sites", "unjournaled_flips"]

Site = "tuple[str, int, int]"  # (var, line, col) of the acquisition


class CallClassifier:
    """Classifies call events using the project call graph + summaries."""

    def __init__(
        self, project: Project, summaries: "dict[str, FuncSummary]"
    ) -> None:
        self._project = project
        self._summaries = summaries

    def _callee(self, func: FuncExtract, event: CallEvent) -> "FuncSummary | None":
        ref = self._project.resolve_call(func, event)
        if ref is None:
            return None
        return self._summaries.get(ref)

    def acquiring(self, func: FuncExtract, event: CallEvent) -> bool:
        if is_acquire_marker(event):
            return True
        callee = self._callee(func, event)
        return callee is not None and callee.returns_acquisition

    def releasing(self, func: FuncExtract, event: CallEvent) -> bool:
        if is_release_marker(event):
            return True
        callee = self._callee(func, event)
        return callee is not None and callee.releases_args

    def journaling(self, func: FuncExtract, event: CallEvent) -> bool:
        if is_journal_marker(event):
            return True
        callee = self._callee(func, event)
        return callee is not None and callee.journals

    def risky(self, func: FuncExtract, events: "list") -> bool:
        """Can this statement *realistically* raise?

        The CFG is maximally conservative (every call gets an exception
        edge) so that handler reachability is never missed; the dataflow
        only lets state actually *flow* down exception edges from
        statements that can demonstrably throw — an explicit
        raise/assert, an acquisition attempt (admission control refuses
        by raising), or a call resolving to a function that transitively
        contains a raise.  Without this gate, every ``tuple()`` and
        telemetry call becomes a phantom leak path and REP013 drowns in
        noise.
        """
        for event in events:
            if isinstance(event, CallEvent):
                if is_acquire_marker(event):
                    return True
                callee = self._callee(func, event)
                if callee is not None and callee.raises:
                    return True
            elif event.get("op") == "raise":
                return True
        return False


# -- may-held leak analysis ------------------------------------------------------


def _var_kill(state: "frozenset[Site]", var: str) -> "frozenset[Site]":
    """Rebinding ``var``: only its own entries die; aliases keep the site."""
    return frozenset(site for site in state if site[0] != var)


def _site_kill(state: "frozenset[Site]", var: str) -> "frozenset[Site]":
    """A releasing/consuming use of ``var`` retires every acquisition
    site it holds *under every alias* — releasing through one name (the
    loop variable, the container, the wrapping bundle) settles the
    obligation everywhere."""
    retired = {(line, col) for v, line, col in state if v == var}
    if not retired:
        return state
    return frozenset(
        site for site in state if (site[1], site[2]) not in retired
    )


def _copy_sites(
    state: "frozenset[Site]", sources: "list[str]", target: str
) -> "frozenset[Site]":
    """Alias ``target`` to every site the sources hold (sources keep it)."""
    copied = {
        (target, line, col)
        for var, line, col in state
        if var in sources
    }
    if not copied:
        return state
    return state | copied


def _leak_step(
    state: "frozenset[Site]",
    func: FuncExtract,
    events: "list",
    classifier: CallClassifier,
) -> "frozenset[Site]":
    for event in events:
        if isinstance(event, CallEvent):
            if classifier.releasing(func, event):
                for arg in event.args:
                    state = _site_kill(state, arg)
                if event.recv is not None and "." not in event.recv:
                    state = _site_kill(state, event.recv)
                continue
            held_args = [
                arg for arg in event.args if any(s[0] == arg for s in state)
            ]
            if held_args:
                if event.bound is not None:
                    # Containers, wrappers and pass-through helpers alias
                    # the acquisition; releasing either name settles it.
                    state = _copy_sites(state, held_args, event.bound)
                else:
                    # Result discarded: assume the callee consumed them.
                    for arg in held_args:
                        state = _site_kill(state, arg)
            if (
                classifier.acquiring(func, event)
                and event.bound is not None
                and not event.managed
            ):
                state = _var_kill(state, event.bound)  # rebind drops old site
                state = state | {(event.bound, event.line, event.col)}
        else:
            op = event.get("op")
            if op == "assign":
                target = event["target"]
                held_sources = [
                    s
                    for s in event["sources"]
                    if any(site[0] == s for site in state)
                ]
                state = _var_kill(state, target)
                if held_sources:
                    if event.get("loop"):
                        # Iterating a held container: the site follows
                        # the loop target exclusively, so releasing the
                        # target in the body settles the container.
                        moved = {
                            (line, col)
                            for var, line, col in state
                            if var in held_sources
                        }
                        state = frozenset(
                            site
                            for site in state
                            if (site[1], site[2]) not in moved
                        ) | {(target, line, col) for line, col in moved}
                    else:
                        state = _copy_sites(state, held_sources, target)
            elif op in ("store", "return"):
                # Escaping into an object/the caller transfers ownership.
                for var in event["vars"]:
                    state = _site_kill(state, var)
    return state


def _forward(
    func: FuncExtract,
    step: "Callable[[frozenset, list], frozenset]",
    merge: "Callable[[list], frozenset]",
    entry_state: "frozenset",
    exc_gate: "Callable[[list], bool] | None" = None,
) -> "dict[int, frozenset]":
    """Generic forward worklist; returns the fixpoint in-state per node.

    Exception-edge contributions use the *pre-statement* state, and flow
    only from nodes ``exc_gate`` accepts (default: all of them).
    """
    in_state: "dict[int, frozenset]" = {ENTRY: entry_state}
    preds: "dict[int, list[tuple[int, str]]]" = {}
    for node_id, node in func.nodes.items():
        for succ_id, kind in node["succ"]:
            preds.setdefault(succ_id, []).append((node_id, kind))

    out_cache: "dict[int, frozenset]" = {}
    worklist = [ENTRY]
    while worklist:
        node_id = worklist.pop()
        node = func.nodes.get(node_id)
        if node is None:
            continue
        current = in_state.get(node_id)
        if current is None:
            continue
        new_out = step(current, node["events"])
        if out_cache.get(node_id) == new_out and node_id in out_cache:
            continue
        out_cache[node_id] = new_out
        for succ_id, kind in node["succ"]:
            if kind == EXC:
                if exc_gate is not None and not exc_gate(node["events"]):
                    continue
                contribution = current
            elif kind == LOOP_EXIT:
                # Past the loop, the target no longer names an element.
                contribution = new_out
                for event in node["events"]:
                    if (
                        isinstance(event, dict)
                        and event.get("op") == "assign"
                        and event.get("loop")
                    ):
                        contribution = frozenset(
                            site
                            for site in contribution
                            if not (
                                isinstance(site, tuple)
                                and site[0] == event["target"]
                            )
                        )
            else:
                contribution = new_out
            contributions = [contribution]
            if succ_id in in_state:
                contributions.append(in_state[succ_id])
            merged = merge(contributions)
            if in_state.get(succ_id) != merged or succ_id not in in_state:
                in_state[succ_id] = merged
                worklist.append(succ_id)
    return in_state


def leak_sites(
    func: FuncExtract, classifier: CallClassifier
) -> "tuple[list[Site], list[Site]]":
    """``(exit_leaks, raise_leaks)`` — acquisition sites still held.

    ``exit_leaks`` are reachable at normal return (REP012);
    ``raise_leaks`` are held only on the exceptional exit (REP013).
    """

    def step(state: "frozenset", events: "list") -> "frozenset":
        return _leak_step(state, func, events, classifier)

    def merge(states: "list[frozenset]") -> "frozenset":
        merged: "frozenset" = frozenset()
        for state in states:
            merged |= state
        return merged

    in_state = _forward(
        func, step, merge, frozenset(),
        exc_gate=lambda events: classifier.risky(func, events),
    )
    at_exit = in_state.get(EXIT, frozenset())
    at_raise = in_state.get(RAISE, frozenset())

    def dedupe(sites: "frozenset[Site]") -> "list[Site]":
        # One finding per acquisition site: prefer a real variable name
        # over a %N temporary for the message.
        best: "dict[tuple[int, int], str]" = {}
        for var, line, col in sorted(sites):
            key = (line, col)
            if key not in best or (
                best[key].startswith("%") and not var.startswith("%")
            ):
                best[key] = var
        return [
            (var, line, col) for (line, col), var in sorted(best.items())
        ]

    exit_leaks = dedupe(at_exit)
    exit_keys = {(line, col) for _var, line, col in exit_leaks}
    raise_leaks = [
        site
        for site in dedupe(at_raise)
        if (site[1], site[2]) not in exit_keys
    ]
    return exit_leaks, raise_leaks


# -- must-journaled analysis -----------------------------------------------------

_TOP = frozenset({"journaled"})  # lattice top: definitely journaled
_BOT: "frozenset[str]" = frozenset()  # not (yet) journaled on some path


@dataclass(slots=True)
class FlipSite:
    line: int
    col: int


def unjournaled_flips(
    func: FuncExtract, classifier: CallClassifier
) -> "list[FlipSite]":
    """Flip sites not dominated by a journal write on every path."""

    def step(state: "frozenset", events: "list") -> "frozenset":
        for event in events:
            if isinstance(event, CallEvent) and classifier.journaling(
                func, event
            ):
                state = _TOP
        return state

    def merge(states: "list[frozenset]") -> "frozenset":
        merged = _TOP
        for state in states:
            merged &= state
        return merged

    in_state = _forward(
        func, step, merge, _BOT,
        exc_gate=lambda events: classifier.risky(func, events),
    )

    flips: "list[FlipSite]" = []
    for node_id in sorted(func.nodes):
        node = func.nodes[node_id]
        if node_id not in in_state:
            continue  # unreachable
        state = in_state[node_id]
        for event in node["events"]:
            if isinstance(event, CallEvent):
                if classifier.journaling(func, event):
                    state = _TOP
            elif event.get("op") == "flip" and state != _TOP:
                flips.append(FlipSite(line=event["line"], col=event["col"]))
    return flips
