"""REP011 — no naked timing or unregistered metric names.

Observability must flow through the telemetry layer, not around it:

* **Naked timing.**  A span's duration comes from the injected
  :class:`~repro.util.clock.ManualClock` — never from a stopwatch built
  on ``time.time()`` / ``time.perf_counter()``.  REP001 already bans
  the dotted forms; this rule closes the ``from time import
  perf_counter`` loophole where the call site shows only a bare name.
* **Unregistered metrics.**  Every counter/gauge/histogram name passed
  to ``telemetry.count`` / ``metrics.observe`` / ``gauge_set`` /
  ``gauge_add`` must exist in the :mod:`repro.telemetry.catalog` —
  the registry raises at runtime, but only on the code path that fires
  the metric; the lint catches a typo on every path.  The telemetry
  package itself (which defines and validates the catalog) is exempt.
* **Unregistered time-series and SLO names.**  The same discipline on
  the *read* side: flight-recorder series queries
  (``counter_series`` / ``counter_rate`` / ``gauge_series`` /
  ``quantile_series`` / ``histogram_series`` / ``window_histogram``)
  and SLO declarations (``EventSelector(...)``, ``SloSpec(metric=...)``)
  name catalog metrics too — a typo'd dashboard or SLO silently reads
  an empty series forever, which is worse than crashing.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..astutil import dotted_name
from ..registry import make_finding, rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..context import ModuleContext
    from ..findings import Finding

RULE_ID = "REP011"

# time-module members that read a wall/process clock.
_TIMING_MEMBERS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
}

# Metric-recording methods whose first argument is a catalog name.
_METRIC_METHODS = {"count", "observe", "gauge_set", "gauge_add"}

# Receivers that are telemetry hubs or metric registries.
_METRIC_RECEIVERS = {"metrics", "telemetry"}

# Flight-recorder series queries whose first argument is a catalog name
# (the names are distinctive enough to check on any receiver).
_SERIES_METHODS = {
    "counter_series",
    "counter_rate",
    "gauge_series",
    "quantile_series",
    "histogram_series",
    "window_histogram",
}

# SLO declaration constructors whose metric argument is a catalog name.
_SLO_CONSTRUCTORS = {"EventSelector", "SloSpec"}


def _is_metric_receiver(segment: str) -> bool:
    return segment.lstrip("_") in _METRIC_RECEIVERS


def _timing_aliases(tree: ast.Module) -> "dict[str, str]":
    """Local alias -> original ``time`` member for from-imports."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for name in node.names:
                if name.name in _TIMING_MEMBERS:
                    aliases[name.asname or name.name] = name.name
    return aliases


def _registered_metric_names() -> "frozenset[str]":
    from ...telemetry.catalog import metric_names

    return metric_names()


@rule(
    RULE_ID,
    "naked-timing",
    "no from-imported wall clocks; metric, time-series and SLO names "
    "must be in the catalog",
    "take timestamps from the injected ManualClock (span start/end "
    "come from Telemetry) and register every metric name in "
    "repro.telemetry.catalog.METRICS before recording, querying, or "
    "declaring an SLO over it",
)
def check(ctx: "ModuleContext") -> "Iterator[Finding]":
    in_telemetry = ctx.in_package("repro", "telemetry")
    aliases = _timing_aliases(ctx.tree)
    catalog = _registered_metric_names()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        if name in aliases:
            yield make_finding(
                ctx, RULE_ID, node.lineno, node.col_offset,
                f"naked timing call `{name}()` "
                f"(from-imported `time.{aliases[name]}`)",
            )
            continue
        if in_telemetry:
            continue
        parts = name.split(".")
        if (
            len(parts) >= 2
            and parts[-1] in _METRIC_METHODS
            and _is_metric_receiver(parts[-2])
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value not in catalog
        ):
            yield make_finding(
                ctx, RULE_ID, node.lineno, node.col_offset,
                f"metric name {node.args[0].value!r} is not registered "
                f"in the telemetry catalog",
            )
        if (
            len(parts) >= 2
            and parts[-1] in _SERIES_METHODS
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value not in catalog
        ):
            yield make_finding(
                ctx, RULE_ID, node.lineno, node.col_offset,
                f"time-series query names unregistered metric "
                f"{node.args[0].value!r}",
            )
        if parts[-1] in _SLO_CONSTRUCTORS:
            metric_arg = None
            if parts[-1] == "EventSelector" and node.args:
                metric_arg = node.args[0]
            for keyword in node.keywords:
                if keyword.arg == "metric":
                    metric_arg = keyword.value
            if (
                isinstance(metric_arg, ast.Constant)
                and isinstance(metric_arg.value, str)
                and metric_arg.value not in catalog
            ):
                yield make_finding(
                    ctx, RULE_ID, node.lineno, node.col_offset,
                    f"SLO {parts[-1]} names unregistered metric "
                    f"{metric_arg.value!r}",
                )
