"""REP011 — no naked timing or unregistered metric names.

Observability must flow through the telemetry layer, not around it:

* **Naked timing.**  A span's duration comes from the injected
  :class:`~repro.util.clock.ManualClock` — never from a stopwatch built
  on ``time.time()`` / ``time.perf_counter()``.  REP001 already bans
  the dotted forms; this rule closes the ``from time import
  perf_counter`` loophole where the call site shows only a bare name.
* **Unregistered metrics.**  Every counter/gauge/histogram name passed
  to ``telemetry.count`` / ``metrics.observe`` / ``gauge_set`` /
  ``gauge_add`` must exist in the :mod:`repro.telemetry.catalog` —
  the registry raises at runtime, but only on the code path that fires
  the metric; the lint catches a typo on every path.  The telemetry
  package itself (which defines and validates the catalog) is exempt.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..astutil import dotted_name
from ..registry import make_finding, rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..context import ModuleContext
    from ..findings import Finding

RULE_ID = "REP011"

# time-module members that read a wall/process clock.
_TIMING_MEMBERS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
}

# Metric-recording methods whose first argument is a catalog name.
_METRIC_METHODS = {"count", "observe", "gauge_set", "gauge_add"}

# Receivers that are telemetry hubs or metric registries.
_METRIC_RECEIVERS = {"metrics", "telemetry"}


def _is_metric_receiver(segment: str) -> bool:
    return segment.lstrip("_") in _METRIC_RECEIVERS


def _timing_aliases(tree: ast.Module) -> "dict[str, str]":
    """Local alias -> original ``time`` member for from-imports."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for name in node.names:
                if name.name in _TIMING_MEMBERS:
                    aliases[name.asname or name.name] = name.name
    return aliases


def _registered_metric_names() -> "frozenset[str]":
    from ...telemetry.catalog import metric_names

    return metric_names()


@rule(
    RULE_ID,
    "naked-timing",
    "no from-imported wall clocks; metric names must be in the catalog",
    "take timestamps from the injected ManualClock (span start/end "
    "come from Telemetry) and register every metric name in "
    "repro.telemetry.catalog.METRICS before recording it",
)
def check(ctx: "ModuleContext") -> "Iterator[Finding]":
    in_telemetry = ctx.in_package("repro", "telemetry")
    aliases = _timing_aliases(ctx.tree)
    catalog = _registered_metric_names()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        if name in aliases:
            yield make_finding(
                ctx, RULE_ID, node.lineno, node.col_offset,
                f"naked timing call `{name}()` "
                f"(from-imported `time.{aliases[name]}`)",
            )
            continue
        if in_telemetry:
            continue
        parts = name.split(".")
        if (
            len(parts) >= 2
            and parts[-1] in _METRIC_METHODS
            and _is_metric_receiver(parts[-2])
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value not in catalog
        ):
            yield make_finding(
                ctx, RULE_ID, node.lineno, node.col_offset,
                f"metric name {node.args[0].value!r} is not registered "
                f"in the telemetry catalog",
            )
