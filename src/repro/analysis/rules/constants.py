"""REP007 — paper-constant drift.

The paper's named numeric anchors (Figure 2 resolutions etc.) live in
exactly one place — ``repro/documents/media.py`` and ``repro/paperdata.py``.
A bare literal duplicating one of those values elsewhere drifts silently
when the canonical definition is corrected; it must reference the symbol
instead.  Only *distinctive* values are guarded (1920, 720): small round
numbers like 25 or 60 are far too common to police by value.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ...documents.media import HDTV_RESOLUTION, TV_RESOLUTION
from ..registry import make_finding, rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..context import ModuleContext
    from ..findings import Finding

RULE_ID = "REP007"

# value -> the symbol that owns it (keyed by the symbols themselves, so
# this table can never drift from the canonical definitions either)
GUARDED_CONSTANTS = {
    int(HDTV_RESOLUTION): "repro.documents.media.HDTV_RESOLUTION",
    int(TV_RESOLUTION): "repro.documents.media.TV_RESOLUTION",
}

# The canonical definition sites.
_EXEMPT_BASENAMES = {"media.py", "paperdata.py"}


@rule(
    RULE_ID,
    "paper-constant-drift",
    "no bare literals duplicating named paper constants",
    "import the named anchor (e.g. HDTV_RESOLUTION from "
    "repro.documents.media) instead of repeating its value",
)
def check(ctx: "ModuleContext") -> "Iterator[Finding]":
    if Path(ctx.path).name in _EXEMPT_BASENAMES:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Constant):
            continue
        value = node.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if isinstance(value, float) and not value.is_integer():
            continue
        symbol = GUARDED_CONSTANTS.get(int(value))
        if symbol is not None:
            yield make_finding(
                ctx, RULE_ID, node.lineno, node.col_offset,
                f"literal {value!r} duplicates {symbol}",
            )
