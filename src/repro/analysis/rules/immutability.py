"""REP008 — offer immutability.

Offers flow through the classification pipeline, the sorted offer list,
the commitment walk and the adaptation switch — often held by several
data structures at once.  A mutable offer mutated in one place corrupts
every other holder's view, so every ``*Offer`` dataclass must be
``@dataclass(frozen=True)``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..astutil import decorator_name
from ..registry import make_finding, rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..context import ModuleContext
    from ..findings import Finding

RULE_ID = "REP008"

_DATACLASS_NAMES = {"dataclass", "dataclasses.dataclass"}


def _dataclass_decorator(node: ast.ClassDef) -> "ast.expr | None":
    for decorator in node.decorator_list:
        if decorator_name(decorator) in _DATACLASS_NAMES:
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False  # bare @dataclass: frozen defaults to False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    return False


@rule(
    RULE_ID,
    "offer-immutability",
    "dataclasses on the offer path must be frozen",
    "declare the class @dataclass(frozen=True) (add slots=True while "
    "you are there); use dataclasses.replace for edits",
)
def check(ctx: "ModuleContext") -> "Iterator[Finding]":
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if "Offer" not in node.name:
            continue
        decorator = _dataclass_decorator(node)
        if decorator is None:
            continue  # hand-written classes manage their own invariants
        if not _is_frozen(decorator):
            yield make_finding(
                ctx, RULE_ID, node.lineno, node.col_offset,
                f"offer dataclass `{node.name}` is not frozen",
            )
