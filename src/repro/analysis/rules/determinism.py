"""REP001 — determinism: no wall clock, no sleeping, no unseeded RNG.

The simulation must replay identically from a seed (chaos runs, the
E-series benchmarks, the lease reaper all depend on it).  Library code
therefore reads time from :class:`repro.util.clock.ManualClock` and
randomness from :func:`repro.util.rng.make_rng` — never from the wall
clock, ``time.sleep`` or a process-global generator.  The two sanctioned
wrapper modules (``util/clock.py``, ``util/rng.py``) are exempt.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..astutil import dotted_name
from ..registry import make_finding, rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..context import ModuleContext
    from ..findings import Finding

RULE_ID = "REP001"

# Call targets that read wall time or block the thread.
_FORBIDDEN_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.sleep",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}

# numpy's process-global RNG is forbidden; seeded construction is not.
_NUMPY_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

_EXEMPT_BASENAMES = {"clock.py", "rng.py"}


def _is_exempt(ctx: "ModuleContext") -> bool:
    return (
        Path(ctx.path).name in _EXEMPT_BASENAMES
        and ctx.in_package("repro", "util")
    )


@rule(
    RULE_ID,
    "determinism",
    "no wall clock, time.sleep, or unseeded randomness in library code",
    "read time from util.clock.ManualClock and randomness from "
    "util.rng.make_rng/derive_rng so runs replay from a seed",
)
def check(ctx: "ModuleContext") -> "Iterator[Finding]":
    if _is_exempt(ctx):
        return
    random_aliases = {"random"}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    random_aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield make_finding(
                    ctx, RULE_ID, node.lineno, node.col_offset,
                    "import from the process-global `random` module",
                )
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in _FORBIDDEN_CALLS:
                yield make_finding(
                    ctx, RULE_ID, node.lineno, node.col_offset,
                    f"call to wall-clock/sleep API `{name}()`",
                )
            elif name.split(".", 1)[0] in random_aliases and "." in name:
                yield make_finding(
                    ctx, RULE_ID, node.lineno, node.col_offset,
                    f"call to the process-global RNG `{name}()`",
                )
            else:
                parts = name.split(".")
                if (
                    len(parts) >= 3
                    and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] not in _NUMPY_RANDOM_ALLOWED
                ):
                    yield make_finding(
                        ctx, RULE_ID, node.lineno, node.col_offset,
                        f"call to numpy's process-global RNG `{name}()`",
                    )
