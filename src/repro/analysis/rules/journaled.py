"""REP010 — journaled transition: no unlogged commitment state flips.

Crash safety (DESIGN.md §8) rests on append-before-apply: every
reservation state transition must hit the write-ahead journal *before*
the in-memory state machine moves, or a crash between the two silently
leaks the reserved capacity.  Inside the commitment module
(``repro.core.commitment``) and the session layer (``repro.session``),
any assignment to a ``.state`` attribute whose value comes from
``CommitmentState`` must therefore happen in a function that also calls
a journal helper (``_journal_transition``, ``journal_event``,
``journal.append`` — any call whose dotted name mentions ``journal``).

``SessionState`` flips are exempt: playout state is volatile by design
and reconstructed from the journal's CONFIRMED/ADAPT_SWITCH records.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..astutil import dotted_name
from ..registry import make_finding, rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..context import ModuleContext
    from ..findings import Finding

RULE_ID = "REP010"

_STATE_ENUM = "CommitmentState"
_JOURNAL_MARKER = "journal"


def _in_scope(ctx: "ModuleContext") -> bool:
    if ctx.in_package("repro", "session"):
        return True
    return (
        ctx.in_package("repro", "core")
        and Path(ctx.path).stem == "commitment"
    )


def _mentions_state_enum(value: ast.AST) -> bool:
    for sub in ast.walk(value):
        if isinstance(sub, ast.Name) and sub.id == _STATE_ENUM:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == _STATE_ENUM:
            return True
    return False


def _state_assigns(node: ast.AST) -> "list[ast.stmt]":
    """``X.state = <CommitmentState...>`` assignments under ``node``."""
    assigns: "list[ast.stmt]" = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            targets, value = sub.targets, sub.value
        elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
            targets, value = [sub.target], sub.value
        else:
            continue
        if not any(
            isinstance(t, ast.Attribute) and t.attr == "state"
            for t in targets
        ):
            continue
        if _mentions_state_enum(value):
            assigns.append(sub)
    return assigns


def _has_journal_call(func: ast.AST) -> bool:
    for sub in ast.walk(func):
        if isinstance(sub, ast.Call):
            name = (dotted_name(sub.func) or "").lower()
            if _JOURNAL_MARKER in name:
                return True
    return False


@rule(
    RULE_ID,
    "journaled-transition",
    "commitment state flips must go through the write-ahead journal",
    "journal the transition before applying it — call "
    "`_journal_transition(...)`/`journal_event(...)` in the same "
    "function, or sanction the site with "
    "`# reprolint: disable=REP010 -- <why no record is owed>`",
)
def check(ctx: "ModuleContext") -> "Iterator[Finding]":
    if not _in_scope(ctx):
        return
    functions = [
        node
        for node in ast.walk(ctx.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    seen: "set[ast.stmt]" = set()
    for func in functions:
        assigns = [a for a in _state_assigns(func) if a not in seen]
        seen.update(assigns)
        if not assigns or _has_journal_call(func):
            continue
        for assign in assigns:
            yield make_finding(
                ctx, RULE_ID, assign.lineno, assign.col_offset,
                f"`{_STATE_ENUM}` transition in `{func.name}` bypasses "
                "the write-ahead journal",
            )
    for assign in _state_assigns(ctx.tree):
        if assign not in seen:
            yield make_finding(
                ctx, RULE_ID, assign.lineno, assign.col_offset,
                f"module-level `{_STATE_ENUM}` transition bypasses the "
                "write-ahead journal",
            )
