"""REP006 — event-loop callback hygiene: no late-binding loop capture.

A lambda (or nested ``def``) created inside a loop and handed to the
scheduler closes over the loop *variable*, not its value at creation
time — by the time the event loop fires the callback, every closure
sees the final iteration.  This is exactly the class of bug the
``lambda s=server, sp=spec:`` default-binding idiom in
``core/commitment.py`` exists to prevent.

The rule flags closures inside loops (or comprehensions) that read an
enclosing loop variable without binding it.  Closures consumed eagerly
within the iteration — ``key=`` lambdas passed to ``sorted``/``sort``/
``min``/``max`` and friends — are exempt: they never outlive the loop
body.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..astutil import (
    assigned_names,
    build_parent_map,
    dotted_name,
    loop_target_names,
)
from ..registry import make_finding, rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..context import ModuleContext
    from ..findings import Finding

RULE_ID = "REP006"

# Callables that consume a function argument before returning: a closure
# handed to one of these cannot observe a later iteration.
_EAGER_CONSUMERS = {
    "sorted", "min", "max", "sum", "any", "all", "map", "filter",
    "sort", "index", "remove",
}


def _free_loads(closure: "ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef") -> "set[str]":
    args = closure.args
    bound = {
        a.arg
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *( [args.vararg] if args.vararg else [] ),
            *( [args.kwarg] if args.kwarg else [] ),
        )
    }
    body = closure.body if isinstance(closure.body, list) else [closure.body]
    loads: set[str] = set()
    locals_: set[str] = set(bound)
    for stmt in body:
        locals_ |= assigned_names(stmt)
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                loads.add(sub.id)
    return loads - locals_


def _is_eagerly_consumed(
    closure: ast.AST, parents: "dict[ast.AST, ast.AST]"
) -> bool:
    parent = parents.get(closure)
    if isinstance(parent, ast.keyword):
        parent = parents.get(parent)
    if isinstance(parent, ast.Call):
        name = dotted_name(parent.func) or ""
        leaf = name.rsplit(".", 1)[-1]
        return leaf in _EAGER_CONSUMERS
    return False


def _enclosing_loop_vars(
    closure: ast.AST, parents: "dict[ast.AST, ast.AST]"
) -> "set[str]":
    """Loop variables of every for-loop/comprehension around ``closure``,
    stopping at the nearest enclosing function boundary (a new call frame
    re-binds per call, so capture across it is not late-binding)."""
    names: set[str] = set()
    child: ast.AST = closure
    node = parents.get(closure)
    while node is not None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            break
        if isinstance(node, (ast.For, ast.AsyncFor)) and child is not node.target:
            names |= loop_target_names(node.target)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for comp in node.generators:
                names |= loop_target_names(comp.target)
        child, node = node, parents.get(node)
    return names


@rule(
    RULE_ID,
    "callback-hygiene",
    "no late-binding loop-variable capture in scheduler callbacks",
    "bind the loop variable as a default argument "
    "(`lambda s=server: ...`) or build the callback via a helper "
    "function so each closure captures the iteration's value",
)
def check(ctx: "ModuleContext") -> "Iterator[Finding]":
    parents = build_parent_map(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        loop_vars = _enclosing_loop_vars(node, parents)
        if not loop_vars:
            continue
        captured = sorted(_free_loads(node) & loop_vars)
        if not captured:
            continue
        if _is_eagerly_consumed(node, parents):
            continue
        label = (
            "lambda"
            if isinstance(node, ast.Lambda)
            else f"nested function `{node.name}`"
        )
        yield make_finding(
            ctx, RULE_ID, node.lineno, node.col_offset,
            f"{label} captures loop variable{'s' if len(captured) > 1 else ''} "
            f"{', '.join(captured)} late — every callback will see the "
            "final iteration",
        )
