"""REP005 — no mutable default arguments.

A mutable default is evaluated once at ``def`` time and shared by every
call; profile editing and offer classification pass dicts/lists around
constantly, so one aliased default silently couples unrelated
negotiations.  Use ``None`` plus an in-body default, or
``dataclasses.field(default_factory=...)``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..astutil import dotted_name
from ..registry import make_finding, rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..context import ModuleContext
    from ..findings import Finding

RULE_ID = "REP005"

_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "collections.defaultdict",
    "defaultdict",
    "collections.deque",
    "deque",
    "collections.OrderedDict",
    "OrderedDict",
    "collections.Counter",
    "Counter",
}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in _MUTABLE_CALLS
    return False


@rule(
    RULE_ID,
    "mutable-defaults",
    "no mutable default argument values",
    "default to None and create the container in the body, or use "
    "dataclasses.field(default_factory=...)",
)
def check(ctx: "ModuleContext") -> "Iterator[Finding]":
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                label = (
                    f"`{node.name}`"
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    else "lambda"
                )
                yield make_finding(
                    ctx, RULE_ID, default.lineno, default.col_offset,
                    f"mutable default argument in {label} is shared "
                    "across calls",
                )
