"""REP002 — reserve/release pairing on the commitment path.

Step 5 of the paper is all-or-nothing: a half-reserved offer must never
linger.  Any function that *orchestrates* resource acquisition — calls
``.reserve(...)`` or ``.admit(...)`` on some other object — must wrap
those calls in a ``try`` whose handler or ``finally`` reaches a
``release``/``rollback`` call, so every partial acquisition has a
teardown path.

Leaf primitives are exempt: a method *named* ``reserve``/``admit`` that
delegates to a lower layer is itself the paired primitive (its caller
holds the rollback duty) only when it performs a single acquisition; the
moment it loops over several, it too must roll back.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..astutil import dotted_name
from ..registry import make_finding, rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..context import ModuleContext
    from ..findings import Finding

RULE_ID = "REP002"

_ACQUIRE_ATTRS = {"reserve", "admit"}
_TEARDOWN_MARKERS = ("release", "rollback", "teardown")


def _acquire_calls(node: ast.AST) -> "list[ast.Call]":
    calls = []
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _ACQUIRE_ATTRS
        ):
            calls.append(sub)
    return calls


def _has_teardown_call(nodes: "list[ast.stmt]") -> bool:
    for stmt in nodes:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Call):
                name = dotted_name(sub.func) or ""
                leaf = name.rsplit(".", 1)[-1].lower()
                if any(marker in leaf for marker in _TEARDOWN_MARKERS):
                    return True
    return False


def _covered_calls(func: ast.AST) -> "set[ast.Call]":
    """Acquisition calls protected by a try with a teardown path."""
    covered: set[ast.Call] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Try):
            continue
        if not (
            _has_teardown_call([h for handler in node.handlers for h in handler.body])
            or _has_teardown_call(node.finalbody)
        ):
            continue
        for stmt in node.body:
            covered.update(_acquire_calls(stmt))
    return covered


@rule(
    RULE_ID,
    "reserve-release-pairing",
    "every function acquiring reservations must have a rollback path",
    "wrap the reserve/admit calls in try/except (or finally) that "
    "releases or rolls back everything already taken, or sanction the "
    "site with `# reprolint: disable=REP002 -- <why no rollback is needed>`",
)
def check(ctx: "ModuleContext") -> "Iterator[Finding]":
    functions = [
        node
        for node in ast.walk(ctx.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    seen: set[ast.Call] = set()
    for func in functions:
        calls = [c for c in _acquire_calls(func) if c not in seen]
        seen.update(calls)
        if not calls:
            continue
        # Leaf primitive with exactly one acquisition: caller pairs it.
        if func.name in _ACQUIRE_ATTRS and len(calls) == 1:
            continue
        covered = _covered_calls(func)
        for call in calls:
            if call not in covered:
                yield make_finding(
                    ctx, RULE_ID, call.lineno, call.col_offset,
                    f"`.{call.func.attr}(...)` in `{func.name}` has no "  # type: ignore[attr-defined]
                    "release/rollback handler on its failure path",
                )
