"""REP004 — no exact float equality on QoS/cost values.

QoS scale values, costs and importance factors round-trip through
arithmetic (interpolation, unit conversion, serialisation); comparing
them with ``==`` silently misses by one ulp.  Comparisons against a
non-zero float literal or against ``float(...)`` must use
``math.isclose``/``np.isclose`` instead.  Comparison to exactly ``0.0``
stays allowed: it is the idiomatic check for a value that was *assigned*
zero (a sentinel), not computed.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..astutil import dotted_name
from ..registry import make_finding, rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..context import ModuleContext
    from ..findings import Finding

RULE_ID = "REP004"

_FLOAT_CASTS = {"float", "np.float64", "numpy.float64", "np.float32", "numpy.float32"}


def _is_float_operand(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float) and node.value != 0.0
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in _FLOAT_CASTS
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_operand(node.operand)
    return False


@rule(
    RULE_ID,
    "float-equality",
    "no exact == / != against float values (QoS, cost, importance)",
    "use math.isclose / np.isclose with an explicit tolerance; exact "
    "comparison to 0.0 (an assigned sentinel) is allowed",
)
def check(ctx: "ModuleContext") -> "Iterator[Finding]":
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if _is_float_operand(left) or _is_float_operand(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield make_finding(
                    ctx, RULE_ID, node.lineno, node.col_offset,
                    f"exact float `{symbol}` comparison",
                )
                break  # one finding per comparison chain
