"""REP003 — error-taxonomy discipline.

The library promises "catch :class:`repro.util.errors.ReproError` at
your outermost boundary".  That promise dies the moment library code
raises builtins or swallows everything:

* no bare ``except:`` anywhere;
* no ``except Exception``/``except BaseException`` unless the handler is
  a sanctioned backstop, marked ``# reprolint: backstop -- <reason>``
  on the ``except`` line (the justification is mandatory);
* ``raise`` only :mod:`repro.util.errors` types — raising builtin
  exceptions (``ValueError``, ``RuntimeError``, ...) is flagged.
  ``NotImplementedError`` and ``AssertionError`` stay allowed (abstract
  hooks and invariant checks are not protocol outcomes).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..astutil import dotted_name
from ..registry import make_finding, rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..context import ModuleContext
    from ..findings import Finding

RULE_ID = "REP003"

_BROAD = {"Exception", "BaseException"}

_FORBIDDEN_RAISES = {
    "Exception",
    "BaseException",
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "LookupError",
    "AttributeError",
    "RuntimeError",
    "ArithmeticError",
    "ZeroDivisionError",
    "OverflowError",
    "OSError",
    "IOError",
    "StopIteration",
    "StopAsyncIteration",
    "SystemError",
    "BufferError",
    "EOFError",
    "MemoryError",
    "NameError",
    "ReferenceError",
    "UnboundLocalError",
}


def _exception_names(node: "ast.expr | None") -> "list[str]":
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        names = []
        for element in node.elts:
            name = dotted_name(element)
            if name is not None:
                names.append(name)
        return names
    name = dotted_name(node)
    return [name] if name is not None else []


@rule(
    RULE_ID,
    "error-taxonomy",
    "no bare/broad excepts; raise only repro.util.errors types",
    "catch the narrowest repro error types that can occur; mark a "
    "deliberate outermost backstop with `# reprolint: backstop -- "
    "<reason>`; raise ValidationError & friends instead of builtins",
)
def check(ctx: "ModuleContext") -> "Iterator[Finding]":
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler):
            if node.type is None:
                yield make_finding(
                    ctx, RULE_ID, node.lineno, node.col_offset,
                    "bare `except:` swallows every error including "
                    "KeyboardInterrupt",
                )
                continue
            broad = [
                name
                for name in _exception_names(node.type)
                if name in _BROAD
            ]
            if not broad:
                continue
            pragma = ctx.pragma_at(node.lineno)
            if pragma is not None and pragma["kind"] == "backstop":
                if not pragma["reason"]:
                    yield make_finding(
                        ctx, RULE_ID, node.lineno, node.col_offset,
                        "backstop marker has no justification "
                        "(`# reprolint: backstop -- <reason>`)",
                    )
                continue
            yield make_finding(
                ctx, RULE_ID, node.lineno, node.col_offset,
                f"broad `except {broad[0]}` outside a sanctioned backstop",
            )
        elif isinstance(node, ast.Raise):
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = dotted_name(exc) if exc is not None else None
            if name is not None and name in _FORBIDDEN_RAISES:
                yield make_finding(
                    ctx, RULE_ID, node.lineno, node.col_offset,
                    f"raises builtin `{name}` instead of a "
                    "repro.util.errors type",
                )
