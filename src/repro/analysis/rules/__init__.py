"""Built-in reprolint rules.

Importing this package registers every rule with the registry; each
module ships exactly one rule:

========  ==========================================================
REP001    determinism: no wall clock / sleep / unseeded randomness
REP002    reserve/release pairing on the step-5 commitment path
REP003    error-taxonomy discipline (no bare/broad except, repro errors)
REP004    no exact float equality on QoS/cost values
REP005    no mutable default arguments
REP006    no late-binding loop-variable capture in callbacks
REP007    paper-constant drift (literals duplicating named anchors)
REP008    offer immutability (Offer dataclasses must be frozen)
REP009    typed core: full annotations in core/faults/analysis
REP010    journaled transition: no unlogged commitment state flips
REP011    no naked timing; metric names registered in the catalog
REP018    shared negotiation cache: construct via shared_cache()
========  ==========================================================

The whole-program rules (REP012..REP017 — interprocedural leak paths,
exception-path leaks, journal-before-flip dataflow, module-global
mutation, blocking calls reachable from async code, foreign ledger
writes) live in :mod:`repro.analysis.deeprules` and only run under
``python -m repro lint --deep``.
"""

from __future__ import annotations

from . import (  # noqa: F401  (imports register the rules)
    closures,
    constants,
    defaults,
    determinism,
    floats,
    immutability,
    journaled,
    naked_timing,
    pairing,
    sharedcache,
    taxonomy,
    typedcore,
)

__all__ = [
    "closures",
    "constants",
    "defaults",
    "determinism",
    "floats",
    "immutability",
    "journaled",
    "naked_timing",
    "pairing",
    "sharedcache",
    "taxonomy",
    "typedcore",
]
