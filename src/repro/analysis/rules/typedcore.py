"""REP009 — typed core: full annotations in core/faults/analysis.

The strict mypy gate (``python -m repro typecheck``) only proves what
the annotations state, so the typed core — :mod:`repro.core`,
:mod:`repro.faults` and :mod:`repro.analysis` — must annotate every
parameter and return type on module- and class-level functions.  Nested
helper functions are exempt (mypy infers them from the enclosing
scope), as are ``*args``/``**kwargs`` pass-throughs on decorators.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..astutil import decorator_name
from ..registry import make_finding, rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..context import ModuleContext
    from ..findings import Finding

RULE_ID = "REP009"

_SCOPES = (("repro", "core"), ("repro", "faults"), ("repro", "analysis"))
_SELF_NAMES = {"self", "cls"}


def _missing_annotations(node: "ast.FunctionDef | ast.AsyncFunctionDef", *, method: bool) -> "list[str]":
    missing: list[str] = []
    args = node.args
    positional = [*args.posonlyargs, *args.args]
    if method and positional and positional[0].arg in _SELF_NAMES:
        is_static = any(
            decorator_name(d) == "staticmethod" for d in node.decorator_list
        )
        if not is_static:
            positional = positional[1:]
    for arg in [*positional, *args.kwonlyargs]:
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in (args.vararg, args.kwarg):
        if arg is not None and arg.annotation is None:
            missing.append(("*" if arg is args.vararg else "**") + arg.arg)
    if node.returns is None:
        missing.append("return")
    return missing


def _walk_defs(
    body: "list[ast.stmt]", *, method: bool
) -> "Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]]":
    """Module- and class-level defs only; nested defs are skipped."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt, method
        elif isinstance(stmt, ast.ClassDef):
            yield from _walk_defs(stmt.body, method=True)


@rule(
    RULE_ID,
    "typed-core",
    "core/faults/analysis functions must be fully annotated",
    "annotate every parameter and the return type so the strict mypy "
    "gate (python -m repro typecheck) can verify the function",
)
def check(ctx: "ModuleContext") -> "Iterator[Finding]":
    if not any(ctx.in_package(*scope) for scope in _SCOPES):
        return
    for node, method in _walk_defs(ctx.tree.body, method=False):
        missing = _missing_annotations(node, method=method)
        if missing:
            yield make_finding(
                ctx, RULE_ID, node.lineno, node.col_offset,
                f"`{node.name}` missing annotations: {', '.join(missing)}",
            )
