"""REP018 — shared negotiation-cache discipline.

:class:`~repro.perf.cache.NegotiationCache` is process-wide
infrastructure: the batch engine preseeds it, the service coalesces
through it, and the ``cache.*`` hit-rate telemetry assumes every
negotiation funnels through one instance.  A privately constructed
cache silently forks that world — requests stop sharing offer spaces
and classifications, the single-flight protocol degenerates to
per-instance, and the hit-rate series undercounts.

The rule flags every ``NegotiationCache(...)`` construction outside its
defining module.  Callers should obtain the process-wide instance from
:func:`repro.perf.cache.shared_cache` (and reset it between isolated
runs with :func:`~repro.perf.cache.reset_shared_cache`).  Deliberately
hermetic deployments — a scenario whose counters must start cold on a
scenario-scoped telemetry hub — stay possible via an inline pragma
with a reason::

    cache = NegotiationCache(telemetry=t)  # reprolint: disable=REP018 -- hermetic per-scenario cache
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..astutil import dotted_name
from ..registry import make_finding, rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..context import ModuleContext
    from ..findings import Finding

RULE_ID = "REP018"

_CLASS_NAME = "NegotiationCache"
# The one module allowed to construct the class: its own, where
# shared_cache() lives.
_DEFINING_MODULE = "repro.perf.cache"


def _constructor_aliases(tree: ast.Module) -> "frozenset[str]":
    """Local names bound to the class by from-imports (including
    ``as`` renames), so aliasing does not dodge the rule."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            for name in node.names:
                if name.name == _CLASS_NAME:
                    aliases.add(name.asname or name.name)
    return frozenset(aliases)


@rule(
    RULE_ID,
    "shared-cache",
    "NegotiationCache must not be constructed outside repro.perf.cache",
    "obtain the process-wide cache via repro.perf.shared_cache() "
    "(reset_shared_cache() between isolated runs); a private instance "
    "splits the cache.* hit-rate telemetry and defeats cross-client "
    "reuse — suppress with `# reprolint: disable=REP018 -- <reason>` "
    "only where a hermetic cache is the point",
)
def check(ctx: "ModuleContext") -> "Iterator[Finding]":
    if ctx.module == _DEFINING_MODULE:
        return
    aliases = _constructor_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        if name in aliases or name.split(".")[-1] == _CLASS_NAME:
            yield make_finding(
                ctx, RULE_ID, node.lineno, node.col_offset,
                f"`{name}(...)` constructs a private negotiation cache "
                f"outside {_DEFINING_MODULE}",
            )
