"""The deep lint engine: per-file rules + whole-program rules, cached.

``lint --deep`` is a superset of the plain engine: every per-file rule
runs as usual, then the module extracts are assembled into a
:class:`~repro.analysis.callgraph.Project` and the REP012+ whole-program
rules run over the call graph.

The expensive per-module work — parsing, CFG construction, event
extraction, and the per-file rule findings — is cached on disk keyed by
the file's content hash, so a warm re-run only re-executes the global
fixpoint (which must always rerun: editing one module can change its
*callers'* summaries).  Cache entries self-invalidate when the file
changes or when the engine's extract format is bumped.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..util.errors import ValidationError
from .baseline import Baseline
from .callgraph import Project, build_project
from .context import ModuleContext
from .engine import LintReport, iter_python_files
from .extract import ModuleExtract, extract_module
from .findings import Finding
from .registry import all_deep_rules, all_rules, deep_rule_ids

__all__ = ["DeepLintEngine", "DeepLintReport", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".reprolint_cache"

# Bump when ModuleExtract / event semantics change: stale cache entries
# from an older analyzer must re-extract, not deserialize garbage.
_EXTRACT_VERSION = 1


@dataclass(slots=True)
class DeepLintReport(LintReport):
    """LintReport plus cache effectiveness counters."""

    cold_files: int = 0
    warm_files: int = 0


class DeepLintEngine:
    """Run per-file and whole-program rules with per-module caching."""

    def __init__(
        self,
        *,
        select: "Sequence[str] | None" = None,
        ignore: "Sequence[str] | None" = None,
        baseline: "Baseline | None" = None,
        cache_dir: "Path | str | None" = DEFAULT_CACHE_DIR,
    ) -> None:
        file_rules = all_rules()
        project_rules = all_deep_rules()
        known = {r.rule_id for r in file_rules} | {
            r.rule_id for r in project_rules
        }
        for rule_id in list(select or []) + list(ignore or []):
            if rule_id not in known:
                raise ValidationError(f"unknown rule id {rule_id!r}")
        active = set(known)
        if select:
            active &= set(select)
        if ignore:
            active -= set(ignore)
        self.file_rules = [r for r in file_rules if r.rule_id in active]
        self.project_rules = [
            r for r in project_rules if r.rule_id in active
        ]
        self._active = active
        self.baseline = baseline if baseline is not None else Baseline()
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None

    # -- cache ---------------------------------------------------------------------

    def _cache_path(self, path: Path) -> "Path | None":
        if self.cache_dir is None:
            return None
        key = hashlib.sha256(
            str(path.resolve()).encode("utf-8")
        ).hexdigest()[:24]
        return self.cache_dir / f"{key}.json"

    def _cache_load(
        self, path: Path, content_hash: str
    ) -> "tuple[ModuleExtract, list[Finding]] | None":
        cache_path = self._cache_path(path)
        if cache_path is None or not cache_path.is_file():
            return None
        try:
            entry = json.loads(cache_path.read_text(encoding="utf-8"))
            if (
                entry.get("version") != _EXTRACT_VERSION
                or entry.get("hash") != content_hash
            ):
                return None
            extract = ModuleExtract.from_dict(entry["extract"])
            findings = [Finding.from_dict(raw) for raw in entry["findings"]]
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
            return None  # corrupt/foreign entry: fall back to a cold pass
        return extract, findings

    def _cache_store(
        self,
        path: Path,
        content_hash: str,
        extract: ModuleExtract,
        findings: "list[Finding]",
    ) -> None:
        cache_path = self._cache_path(path)
        if cache_path is None:
            return
        try:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            cache_path.write_text(
                json.dumps(
                    {
                        "version": _EXTRACT_VERSION,
                        "hash": content_hash,
                        "path": str(path),
                        "extract": extract.to_dict(),
                        "findings": [f.to_dict() for f in findings],
                    }
                ),
                encoding="utf-8",
            )
        except OSError:
            pass  # read-only checkout: run uncached

    # -- run -----------------------------------------------------------------------

    def run(self, paths: "Sequence[Path | str]") -> DeepLintReport:
        report = DeepLintReport()
        modules: "list[tuple[ModuleExtract, list[Finding]]]" = []
        for path in iter_python_files(paths):
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as error:
                report.errors.append(str(error))
                continue
            content_hash = hashlib.sha256(
                source.encode("utf-8")
            ).hexdigest()
            cached = self._cache_load(path, content_hash)
            if cached is not None:
                report.warm_files += 1
                report.files_checked += 1
                modules.append(cached)
                continue
            try:
                ctx = ModuleContext.from_path(path)
            except (ValidationError, OSError, UnicodeDecodeError) as error:
                report.errors.append(str(error))
                continue
            # Cache stores *every* per-file rule's findings so one cache
            # serves any --select/--ignore combination.
            raw_findings: "list[Finding]" = []
            for rule in all_rules():
                raw_findings.extend(rule.run(ctx))
            extract = extract_module(ctx)
            self._cache_store(path, content_hash, extract, raw_findings)
            report.cold_files += 1
            report.files_checked += 1
            modules.append((extract, raw_findings))

        extract_by_path = {extract.path: extract for extract, _ in modules}

        def admit(finding: Finding, extract: "ModuleExtract | None") -> None:
            if extract is not None and extract.suppressed(
                finding.rule_id, finding.line
            ):
                report.suppressed += 1
            elif self.baseline.match(finding) is not None:
                report.baselined += 1
            else:
                report.findings.append(finding)

        active_file_rules = {r.rule_id for r in self.file_rules}
        for extract, raw_findings in modules:
            for finding in raw_findings:
                if finding.rule_id in active_file_rules:
                    admit(finding, extract)

        # The whole-program fixpoint always reruns: a change in one
        # module can alter its callers' summaries project-wide.
        project = build_project(extract for extract, _ in modules)
        for project_rule in self.project_rules:
            for finding in project_rule.run(project):
                admit(finding, extract_by_path.get(finding.path))

        report.findings.sort(key=Finding.sort_key)
        report.unjustified_baseline = [
            f"{entry.path}: baseline entry {entry.fingerprint} "
            f"({entry.rule_id}) has no justification"
            for entry in self.baseline.unjustified()
        ]
        return report

    def build_project(self, paths: "Sequence[Path | str]") -> Project:
        """Project view only (no rule run) — used by tests/tools."""
        extracts: "list[ModuleExtract]" = []
        for path in iter_python_files(paths):
            ctx = ModuleContext.from_path(path)
            extracts.append(extract_module(ctx))
        return build_project(extracts)


def is_deep_rule_id(rule_id: str) -> bool:
    return rule_id in deep_rule_ids()
