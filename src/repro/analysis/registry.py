"""Rule registry.

Each per-file rule is a function ``(ModuleContext) -> Iterable[Finding]``
registered under a stable id via the :func:`rule` decorator.  The
decorator records the rule's summary and fix hint so reporters and
``lint --list-rules`` render them without importing anything else.

*Deep* rules (REP012+) see the whole program at once: they are
``(Project) -> Iterable[Finding]`` functions registered via
:func:`deep_rule` and run only under ``lint --deep`` (they need the
project-wide call graph and resource summaries, not one file's AST).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..util.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .callgraph import Project
    from .context import ModuleContext
    from .findings import Finding

__all__ = [
    "Rule",
    "ProjectRule",
    "rule",
    "deep_rule",
    "all_rules",
    "all_deep_rules",
    "get_rule",
    "make_finding",
]

CheckFn = Callable[["ModuleContext"], Iterable["Finding"]]
DeepCheckFn = Callable[["Project"], Iterable["Finding"]]


@dataclass(frozen=True, slots=True)
class Rule:
    """One registered invariant check."""

    rule_id: str
    name: str
    summary: str
    hint: str
    check: CheckFn

    def run(self, ctx: "ModuleContext") -> "list[Finding]":
        return list(self.check(ctx))


@dataclass(frozen=True, slots=True)
class ProjectRule:
    """One registered whole-program invariant check (``lint --deep``)."""

    rule_id: str
    name: str
    summary: str
    hint: str
    check: DeepCheckFn

    def run(self, project: "Project") -> "list[Finding]":
        return list(self.check(project))


_REGISTRY: "dict[str, Rule]" = {}
_DEEP_REGISTRY: "dict[str, ProjectRule]" = {}


def rule(rule_id: str, name: str, summary: str, hint: str) -> "Callable[[CheckFn], CheckFn]":
    """Register ``check`` under ``rule_id``; returns it unchanged."""

    def decorate(check: CheckFn) -> CheckFn:
        if rule_id in _REGISTRY or rule_id in _DEEP_REGISTRY:
            raise ValidationError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(
            rule_id=rule_id, name=name, summary=summary, hint=hint, check=check
        )
        return check

    return decorate


def deep_rule(
    rule_id: str, name: str, summary: str, hint: str
) -> "Callable[[DeepCheckFn], DeepCheckFn]":
    """Register a whole-program rule under ``rule_id``."""

    def decorate(check: DeepCheckFn) -> DeepCheckFn:
        if rule_id in _REGISTRY or rule_id in _DEEP_REGISTRY:
            raise ValidationError(f"duplicate rule id {rule_id!r}")
        _DEEP_REGISTRY[rule_id] = ProjectRule(
            rule_id=rule_id, name=name, summary=summary, hint=hint, check=check
        )
        return check

    return decorate


def _ensure_loaded() -> None:
    from . import deeprules, rules  # noqa: F401  (importing registers the built-ins)


def all_rules() -> "list[Rule]":
    _ensure_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def all_deep_rules() -> "list[ProjectRule]":
    _ensure_loaded()
    return [_DEEP_REGISTRY[rule_id] for rule_id in sorted(_DEEP_REGISTRY)]


def deep_rule_ids() -> "frozenset[str]":
    _ensure_loaded()
    return frozenset(_DEEP_REGISTRY)


def get_rule(rule_id: str) -> "Rule | ProjectRule":
    _ensure_loaded()
    found: "Rule | ProjectRule | None" = _REGISTRY.get(
        rule_id
    ) or _DEEP_REGISTRY.get(rule_id)
    if found is None:
        raise ValidationError(f"unknown rule id {rule_id!r}")
    return found


def make_finding(
    ctx: "ModuleContext",
    rule_id: str,
    line: int,
    column: int,
    message: str,
) -> "Finding":
    """Build a finding for ``rule_id``, pulling hint + source text."""
    from .findings import Finding

    _ensure_loaded()
    registered = _REGISTRY.get(rule_id)
    if registered is None:
        registered = _DEEP_REGISTRY.get(rule_id)
    return Finding(
        rule_id=rule_id,
        path=ctx.path,
        line=line,
        column=column,
        message=message,
        hint=registered.hint if registered is not None else "",
        source_line=ctx.line_text(line),
        context=ctx.scope_at(line),
    )
