"""Rule registry.

Each rule is a function ``(ModuleContext) -> Iterable[Finding]``
registered under a stable id via the :func:`rule` decorator.  The
decorator records the rule's summary and fix hint so reporters and
``lint --list-rules`` render them without importing anything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..util.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import ModuleContext
    from .findings import Finding

__all__ = ["Rule", "rule", "all_rules", "get_rule", "make_finding"]

CheckFn = Callable[["ModuleContext"], Iterable["Finding"]]


@dataclass(frozen=True, slots=True)
class Rule:
    """One registered invariant check."""

    rule_id: str
    name: str
    summary: str
    hint: str
    check: CheckFn

    def run(self, ctx: "ModuleContext") -> "list[Finding]":
        return list(self.check(ctx))


_REGISTRY: "dict[str, Rule]" = {}


def rule(rule_id: str, name: str, summary: str, hint: str) -> "Callable[[CheckFn], CheckFn]":
    """Register ``check`` under ``rule_id``; returns it unchanged."""

    def decorate(check: CheckFn) -> CheckFn:
        if rule_id in _REGISTRY:
            raise ValidationError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(
            rule_id=rule_id, name=name, summary=summary, hint=hint, check=check
        )
        return check

    return decorate


def _ensure_loaded() -> None:
    from . import rules  # noqa: F401  (importing registers the built-ins)


def all_rules() -> "list[Rule]":
    _ensure_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _ensure_loaded()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise ValidationError(f"unknown rule id {rule_id!r}") from None


def make_finding(
    ctx: "ModuleContext",
    rule_id: str,
    line: int,
    column: int,
    message: str,
) -> "Finding":
    """Build a finding for ``rule_id``, pulling hint + source text."""
    from .findings import Finding

    _ensure_loaded()
    registered = _REGISTRY.get(rule_id)
    return Finding(
        rule_id=rule_id,
        path=ctx.path,
        line=line,
        column=column,
        message=message,
        hint=registered.hint if registered is not None else "",
        source_line=ctx.line_text(line),
    )
