"""reprolint — project-invariant static analysis for the repro codebase.

The paper's negotiation procedure is only reproducible if its machinery
obeys a handful of structural invariants: step-5 commitment must pair
every ``reserve`` with a ``release``/rollback path, the simulation must
replay identically from a seed (no wall clock, no unseeded randomness),
and failures must flow through the :mod:`repro.util.errors` taxonomy.
This package enforces those invariants mechanically:

* a rule registry (:mod:`repro.analysis.registry`) with one module per
  rule under :mod:`repro.analysis.rules` (REP001..REP011);
* a per-file visitor pipeline (:mod:`repro.analysis.engine`) producing
  precise ``file:line`` findings with rule ids and fix hints;
* a whole-program tier behind ``--deep`` (REP012..REP017): per-module
  extraction (:mod:`repro.analysis.extract`), a project call graph with
  Tarjan SCCs (:mod:`repro.analysis.callgraph`), bottom-up function
  summaries (:mod:`repro.analysis.summaries`), per-function CFGs with
  exception edges (:mod:`repro.analysis.cfg`), leak/journal dataflow
  (:mod:`repro.analysis.dataflow`) and the interprocedural rules
  themselves (:mod:`repro.analysis.deeprules`), orchestrated by
  :class:`repro.analysis.deep.DeepLintEngine` with a content-hashed
  per-module extract cache;
* text/JSON reporters (:mod:`repro.analysis.report`);
* an allowlist/baseline file (:mod:`repro.analysis.baseline`) for
  sanctioned exceptions, plus inline ``# reprolint: disable=REPnnn``
  pragmas;
* a CLI entry point: ``python -m repro lint [paths]`` (nonzero exit on
  findings; ``--deep`` adds the whole-program rules, ``--changed``
  restricts to the git diff) and ``python -m repro typecheck`` (strict
  mypy gate over the typed core, skipped gracefully when mypy is not
  installed).
"""

from __future__ import annotations

from .baseline import Baseline, BaselineEntry
from .context import ModuleContext
from .deep import DeepLintEngine, DeepLintReport
from .engine import LintEngine, LintReport, iter_python_files
from .findings import Finding
from .gitdiff import changed_python_files
from .registry import ProjectRule, Rule, all_deep_rules, all_rules, get_rule
from .report import render_json, render_text

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DeepLintEngine",
    "DeepLintReport",
    "Finding",
    "LintEngine",
    "LintReport",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "all_deep_rules",
    "all_rules",
    "changed_python_files",
    "get_rule",
    "iter_python_files",
    "render_json",
    "render_text",
]
