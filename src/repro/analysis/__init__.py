"""reprolint — project-invariant static analysis for the repro codebase.

The paper's negotiation procedure is only reproducible if its machinery
obeys a handful of structural invariants: step-5 commitment must pair
every ``reserve`` with a ``release``/rollback path, the simulation must
replay identically from a seed (no wall clock, no unseeded randomness),
and failures must flow through the :mod:`repro.util.errors` taxonomy.
This package enforces those invariants mechanically:

* a rule registry (:mod:`repro.analysis.registry`) with one module per
  rule under :mod:`repro.analysis.rules` (REP001..REP011);
* a per-file visitor pipeline (:mod:`repro.analysis.engine`) producing
  precise ``file:line`` findings with rule ids and fix hints;
* text/JSON reporters (:mod:`repro.analysis.report`);
* an allowlist/baseline file (:mod:`repro.analysis.baseline`) for
  sanctioned exceptions, plus inline ``# reprolint: disable=REPnnn``
  pragmas;
* a CLI entry point: ``python -m repro lint [paths]`` (nonzero exit on
  findings) and ``python -m repro typecheck`` (strict mypy gate over the
  typed core, skipped gracefully when mypy is not installed).
"""

from __future__ import annotations

from .baseline import Baseline, BaselineEntry
from .context import ModuleContext
from .engine import LintEngine, LintReport, iter_python_files
from .findings import Finding
from .registry import Rule, all_rules, get_rule
from .report import render_json, render_text

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintEngine",
    "LintReport",
    "ModuleContext",
    "Rule",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "render_json",
    "render_text",
]
