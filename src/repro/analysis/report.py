"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import LintReport

__all__ = ["render_text", "render_json"]


def render_text(report: "LintReport", *, show_hints: bool = True) -> str:
    """GCC-style ``file:line:col: RULE message`` lines plus a summary."""
    lines: list[str] = []
    for finding in report.findings:
        lines.append(
            f"{finding.location()}: {finding.rule_id} {finding.message}"
        )
        if show_hints and finding.hint:
            lines.append(f"    hint: {finding.hint}")
    for error in report.errors:
        lines.append(f"error: {error}")
    for warning in report.unjustified_baseline:
        lines.append(f"baseline: {warning}")
    count = len(report.findings)
    summary = (
        f"{count} finding{'s' if count != 1 else ''} "
        f"in {report.files_checked} file{'s' if report.files_checked != 1 else ''}"
    )
    extras = []
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed inline")
    if report.baselined:
        extras.append(f"{report.baselined} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: "LintReport") -> str:
    payload = {
        "findings": [finding.to_dict() for finding in report.findings],
        "errors": list(report.errors),
        "unjustified_baseline": list(report.unjustified_baseline),
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "clean": report.clean,
    }
    cold = getattr(report, "cold_files", None)
    if cold is not None:  # deep runs also report cache effectiveness
        payload["cold_files"] = cold
        payload["warm_files"] = getattr(report, "warm_files", 0)
    return json.dumps(payload, indent=2)
