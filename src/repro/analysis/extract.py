"""Per-module extraction: the cacheable IR the deep analyses run on.

``lint --deep`` must be incremental: re-linting after editing one file
should re-parse *that* file only.  Everything the whole-program passes
need from a module is therefore distilled into a JSON-serialisable
:class:`ModuleExtract` — functions with their statement-level CFGs and
*resource events*, the import map, class/method tables, module-level
mutable globals, and the pragma/suppression tables — keyed by content
hash in the summary cache (:mod:`repro.analysis.deep`).

Event vocabulary (one ordered list per CFG node):

========  =======================================================
call      a call site: dotted name, receiver, result binding, the
          symbolic argument names, whether it sits in a ``return``,
          whether it is a ``with``-managed acquisition, and whether
          the resolved target is a known blocking primitive
assign    ``x = y`` aliasing (taint propagation between locals)
store     names escaping into an attribute/subscript (ownership
          leaves the function)
return    names flowing out through ``return``/``yield``
flip      a ``.state = CommitmentState...`` transition (REP014)
gmut      mutation of a module-level mutable global (REP015)
ledger    mutation of another object's reservation ledger (REP017)
========  =======================================================

Symbolic values are local variable names plus ``%N`` temporaries for
intermediate call results, so acquisitions flowing through containers
(``streams.append(server.admit(...))``) or constructors
(``Bundle(streams=tuple(streams))``) keep their taint.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterable

from .cfg import ENTRY, EXIT, RAISE, Cfg, build_cfg
from .context import ModuleContext

__all__ = [
    "CallEvent",
    "FuncExtract",
    "ModuleExtract",
    "extract_module",
    "ACQUIRE_ATTRS",
    "RELEASE_MARKERS",
    "JOURNAL_MARKER",
    "LEDGER_ATTRS",
]

ACQUIRE_ATTRS = frozenset({"admit", "reserve", "acquire"})
RELEASE_MARKERS = ("release", "rollback", "teardown", "confirm", "compensate")
JOURNAL_MARKER = "journal"
LEDGER_ATTRS = frozenset(
    {"_streams", "_flows", "_ledger", "ledger", "_reservations"}
)

# Methods that move an argument's ownership into their receiver.
_CONTAINER_TRANSFER = frozenset(
    {"append", "add", "insert", "extend", "setdefault", "push"}
)
# Methods that mutate their receiver in place (globals / ledgers).
_MUTATING_METHODS = frozenset(
    {
        "append", "add", "insert", "extend", "update", "pop", "popitem",
        "clear", "remove", "discard", "setdefault", "push",
    }
)
_MUTABLE_FACTORIES = frozenset(
    {
        "list", "dict", "set", "bytearray", "deque", "defaultdict",
        "OrderedDict", "Counter",
    }
)
_BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.system",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)
_BLOCKING_ATTRS = frozenset(
    {"fsync", "read_text", "write_text", "read_bytes", "write_bytes"}
)
_STATE_ENUM = "CommitmentState"


@dataclass(slots=True)
class CallEvent:
    """One call site, symbolically."""

    name: str               # dotted text as written ("self._transport.reserve")
    attr: str               # leaf name ("reserve")
    recv: "str | None"      # receiver chain ("self._transport") or None
    bound: "str | None"     # local the result binds to (or container receiver)
    args: "tuple[str, ...]"  # symbolic names used as arguments
    line: int
    col: int
    ret: bool = False       # value flows out through return/yield
    managed: bool = False   # bound by `with ... as v` (released by __exit__)
    blocking: bool = False  # resolves to a known blocking primitive

    def to_dict(self) -> "dict[str, Any]":
        return {
            "op": "call", "name": self.name, "attr": self.attr,
            "recv": self.recv, "bound": self.bound, "args": list(self.args),
            "line": self.line, "col": self.col, "ret": self.ret,
            "managed": self.managed, "blocking": self.blocking,
        }

    @classmethod
    def from_dict(cls, raw: "dict[str, Any]") -> "CallEvent":
        return cls(
            name=raw["name"], attr=raw["attr"], recv=raw["recv"],
            bound=raw["bound"], args=tuple(raw["args"]), line=raw["line"],
            col=raw["col"], ret=raw["ret"], managed=raw["managed"],
            blocking=raw["blocking"],
        )


Event = "dict[str, Any] | CallEvent"


@dataclass(slots=True)
class FuncExtract:
    """One function's analysable shape."""

    qualname: str            # module-relative ("ResourceCommitter.try_commit")
    module: str
    path: str
    line: int
    col: int
    is_async: bool
    cls: "str | None"
    params: "tuple[str, ...]"
    # node id -> {"line": int, "events": [Event], "succ": [(id, kind)]}
    nodes: "dict[int, dict[str, Any]]" = field(default_factory=dict)

    @property
    def ref(self) -> str:
        """Project-unique id, ``module::qualname``."""
        return f"{self.module}::{self.qualname}"

    def events(self) -> "Iterable[Event]":
        for node_id in sorted(self.nodes):
            yield from self.nodes[node_id]["events"]

    def call_events(self) -> "Iterable[CallEvent]":
        for event in self.events():
            if isinstance(event, CallEvent):
                yield event

    def to_dict(self) -> "dict[str, Any]":
        return {
            "qualname": self.qualname, "module": self.module,
            "path": self.path, "line": self.line, "col": self.col,
            "is_async": self.is_async, "cls": self.cls,
            "params": list(self.params),
            "nodes": {
                str(node_id): {
                    "line": node["line"],
                    "events": [
                        e.to_dict() if isinstance(e, CallEvent) else e
                        for e in node["events"]
                    ],
                    "succ": [list(edge) for edge in node["succ"]],
                }
                for node_id, node in self.nodes.items()
            },
        }

    @classmethod
    def from_dict(cls, raw: "dict[str, Any]") -> "FuncExtract":
        nodes: "dict[int, dict[str, Any]]" = {}
        for key, node in raw["nodes"].items():
            nodes[int(key)] = {
                "line": node["line"],
                "events": [
                    CallEvent.from_dict(e) if e.get("op") == "call" else e
                    for e in node["events"]
                ],
                "succ": [(int(t), k) for t, k in node["succ"]],
            }
        return cls(
            qualname=raw["qualname"], module=raw["module"], path=raw["path"],
            line=raw["line"], col=raw["col"], is_async=raw["is_async"],
            cls=raw["cls"], params=tuple(raw["params"]), nodes=nodes,
        )


@dataclass(slots=True)
class ModuleExtract:
    """Everything the deep passes need from one file."""

    module: str
    path: str
    functions: "dict[str, FuncExtract]" = field(default_factory=dict)
    classes: "dict[str, dict[str, Any]]" = field(default_factory=dict)
    imports: "dict[str, str]" = field(default_factory=dict)
    mutable_globals: "dict[str, int]" = field(default_factory=dict)
    pragmas: "dict[int, dict[str, Any]]" = field(default_factory=dict)
    suppression_extents: "list[tuple[int, int]]" = field(default_factory=list)
    scopes: "list[tuple[int, int, str]]" = field(default_factory=list)

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Pragma suppression without re-parsing (mirrors ModuleContext)."""
        if self._pragma_disables(rule_id, line):
            return True
        for start, end in self.suppression_extents:
            if start <= line <= end:
                if any(
                    self._pragma_disables(rule_id, pragma_line)
                    for pragma_line in range(start, end + 1)
                    if pragma_line in self.pragmas
                ):
                    return True
        return False

    def _pragma_disables(self, rule_id: str, line: int) -> bool:
        pragma = self.pragmas.get(line)
        if pragma is None or pragma.get("kind") != "disable":
            return False
        rules = pragma.get("rules") or frozenset()
        return not rules or rule_id in rules

    def scope_at(self, line: int) -> str:
        best = ""
        best_span = None
        for start, end, qualname in self.scopes:
            if start <= line <= end:
                span = end - start
                if best_span is None or span <= best_span:
                    best, best_span = qualname, span
        return best

    def to_dict(self) -> "dict[str, Any]":
        return {
            "module": self.module,
            "path": self.path,
            "functions": {
                name: fn.to_dict() for name, fn in self.functions.items()
            },
            "classes": self.classes,
            "imports": self.imports,
            "mutable_globals": self.mutable_globals,
            "pragmas": {
                str(line): {
                    "kind": p["kind"],
                    "rules": sorted(p["rules"]),
                    "reason": p["reason"],
                }
                for line, p in self.pragmas.items()
            },
            "suppression_extents": [list(e) for e in self.suppression_extents],
            "scopes": [list(s) for s in self.scopes],
        }

    @classmethod
    def from_dict(cls, raw: "dict[str, Any]") -> "ModuleExtract":
        return cls(
            module=raw["module"],
            path=raw["path"],
            functions={
                name: FuncExtract.from_dict(fn)
                for name, fn in raw["functions"].items()
            },
            classes=raw["classes"],
            imports=raw["imports"],
            mutable_globals=raw["mutable_globals"],
            pragmas={
                int(line): {
                    "kind": p["kind"],
                    "rules": frozenset(p["rules"]),
                    "reason": p["reason"],
                }
                for line, p in raw["pragmas"].items()
            },
            suppression_extents=[
                (int(a), int(b)) for a, b in raw["suppression_extents"]
            ],
            scopes=[(int(a), int(b), str(q)) for a, b, q in raw["scopes"]],
        )


# -- expression/event emission ---------------------------------------------------


def _dotted_text(node: ast.expr) -> "str | None":
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _loaded_names(node: ast.AST) -> "list[str]":
    names: "list[str]" = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            if sub.id not in names:
                names.append(sub.id)
    return names


def _mentions_state_enum(value: ast.AST) -> bool:
    for sub in ast.walk(value):
        if isinstance(sub, ast.Name) and sub.id == _STATE_ENUM:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == _STATE_ENUM:
            return True
    return False


class _EventEmitter:
    """Flattens one statement into its ordered event list."""

    def __init__(self, module: "_ModuleScan") -> None:
        self._module = module
        self._tmp = 0
        self.events: "list[Any]" = []

    def _new_tmp(self) -> str:
        self._tmp += 1
        return f"%{self._tmp}"

    # -- expressions ---------------------------------------------------------------

    def emit_expr(
        self, expr: "ast.expr | None", *, ret: bool = False
    ) -> "str | None":
        """Emit events for ``expr``; return its symbolic value name."""
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Call):
            return self._emit_call(expr, ret=ret)
        if isinstance(expr, ast.Attribute):
            self.emit_expr(expr.value, ret=ret)
            return _dotted_text(expr)
        if isinstance(expr, ast.Lambda):
            # Acquisition thunks (`lambda: server.admit(...)`) run inside
            # resilient-call helpers; attribute their calls to this site.
            return self.emit_expr(expr.body, ret=ret)
        if isinstance(expr, (ast.Await, ast.Starred, ast.UnaryOp)):
            inner = (
                expr.value
                if not isinstance(expr, ast.UnaryOp)
                else expr.operand
            )
            return self.emit_expr(inner, ret=ret)
        if isinstance(expr, ast.IfExp):
            self.emit_expr(expr.test)
            self.emit_expr(expr.body, ret=ret)
            self.emit_expr(expr.orelse, ret=ret)
            return None
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, (ast.expr, ast.comprehension, ast.keyword)):
                self._emit_child(child, ret=ret)
        return None

    def _emit_child(self, node: ast.AST, *, ret: bool) -> None:
        if isinstance(node, ast.comprehension):
            self.emit_expr(node.iter)
            for cond in node.ifs:
                self.emit_expr(cond)
        elif isinstance(node, ast.keyword):
            self.emit_expr(node.value, ret=ret)
        elif isinstance(node, ast.expr):
            self.emit_expr(node, ret=ret)

    def _emit_call(self, call: ast.Call, *, ret: bool = False) -> str:
        recv: "str | None" = None
        if isinstance(call.func, ast.Attribute):
            recv = _dotted_text(call.func.value)
            attr = call.func.attr
            # Emit receiver-side calls (`foo().bar()` chains).
            if recv is None:
                self.emit_expr(call.func.value)
            name = _dotted_text(call.func) or f"?.{attr}"
        elif isinstance(call.func, ast.Name):
            attr = call.func.id
            name = call.func.id
        else:
            self.emit_expr(call.func)
            attr = ""
            name = "?"
        args: "list[str]" = []
        thunk_syms: "list[str]" = []
        for arg in call.args:
            sym = self.emit_expr(arg)
            if sym is not None:
                args.append(sym)
                if isinstance(arg, ast.Lambda):
                    thunk_syms.append(sym)
        for kw in call.keywords:
            sym = self.emit_expr(kw.value)
            if sym is not None:
                args.append(sym)
                if isinstance(kw.value, ast.Lambda):
                    thunk_syms.append(sym)
        bound: "str | None" = self._new_tmp()
        if (
            attr in _CONTAINER_TRANSFER
            and recv is not None
            and "." not in recv
        ):
            bound = recv  # streams.append(acq) moves ownership into streams
        event = CallEvent(
            name=name,
            attr=attr,
            recv=recv,
            bound=bound,
            args=tuple(args),
            line=call.lineno,
            col=call.col_offset,
            ret=ret,
            blocking=self._module.is_blocking(name, attr),
        )
        self.events.append(event)
        # A lambda thunk's value is returned by the resilient-call helper
        # invoking it, so ownership flows thunk-result -> call-result.
        if bound is not None:
            for thunk_sym in thunk_syms:
                self.events.append(
                    {"op": "assign", "target": bound, "sources": [thunk_sym]}
                )
        return bound if bound is not None else "?"

    # -- statements ----------------------------------------------------------------

    def emit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Expr):
            value = self.emit_expr(stmt.value)
            if (
                isinstance(stmt.value, ast.Call)
                and value is not None
                and value.startswith("%")
            ):
                # A bare expression statement discards the result — unless
                # a thunk assign routed an acquisition into it (that tmp
                # staying bound is exactly how a discarded acquisition is
                # caught holding at EXIT).
                for index in range(len(self.events) - 1, -1, -1):
                    event = self.events[index]
                    if isinstance(event, CallEvent) and event.bound == value:
                        if not any(
                            isinstance(later, dict)
                            and later.get("op") == "assign"
                            and later.get("target") == value
                            for later in self.events[index + 1 :]
                        ):
                            self.events[index] = CallEvent(
                                name=event.name, attr=event.attr,
                                recv=event.recv, bound=None, args=event.args,
                                line=event.line, col=event.col, ret=event.ret,
                                managed=event.managed, blocking=event.blocking,
                            )
                        break
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            self._emit_assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self.emit_expr(stmt.value)
            self._emit_target_effects(stmt.target, [])
        elif isinstance(stmt, ast.Return):
            sym = self.emit_expr(stmt.value, ret=True)
            names = _loaded_names(stmt.value) if stmt.value is not None else []
            if sym is not None and sym.startswith("%"):
                names.append(sym)
            self.events.append({"op": "return", "vars": names})
        elif isinstance(stmt, ast.Raise):
            self.emit_expr(stmt.exc)
            self.emit_expr(stmt.cause)
            self.events.append({"op": "raise"})
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._emit_target_effects(target, [])
        elif isinstance(stmt, ast.Assert):
            self.emit_expr(stmt.test)
            self.emit_expr(stmt.msg)
            self.events.append({"op": "raise"})  # assert = conditional raise
        elif isinstance(stmt, (ast.Global, ast.Nonlocal)):
            pass
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.emit_expr(child)

    def _emit_assign(self, stmt: "ast.Assign | ast.AnnAssign") -> None:
        value = stmt.value
        if value is None:
            return
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        sym = self.emit_expr(value)
        value_names = _loaded_names(value)
        is_call = isinstance(value, ast.Call)
        for target in targets:
            for element in self._flatten_target(target):
                if isinstance(element, ast.Name):
                    if is_call and sym is not None and self.events:
                        self._rebind_last_call(sym, element.id)
                    else:
                        sources = value_names or ([sym] if sym else [])
                        self.events.append(
                            {
                                "op": "assign",
                                "target": element.id,
                                "sources": [s for s in sources if s],
                            }
                        )
                    if element.id in self._module.func_global_decls:
                        if element.id in self._module.mutable_globals:
                            self.events.append(
                                {
                                    "op": "gmut",
                                    "name": element.id,
                                    "line": stmt.lineno,
                                    "col": stmt.col_offset,
                                }
                            )
                else:
                    self._emit_target_effects(
                        element, value_names + ([sym] if sym else [])
                    )
        # CommitmentState flips live on attribute targets.
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "state"
                and _mentions_state_enum(value)
            ):
                self.events.append(
                    {
                        "op": "flip",
                        "line": stmt.lineno,
                        "col": stmt.col_offset,
                    }
                )

    def _rebind_last_call(self, tmp: str, var: str) -> None:
        rebound = False
        for index in range(len(self.events) - 1, -1, -1):
            event = self.events[index]
            if isinstance(event, CallEvent) and event.bound == tmp:
                self.events[index] = CallEvent(
                    name=event.name, attr=event.attr, recv=event.recv,
                    bound=var, args=event.args, line=event.line,
                    col=event.col, ret=event.ret, managed=event.managed,
                    blocking=event.blocking,
                )
                rebound = True
            elif (
                isinstance(event, dict)
                and event.get("op") == "assign"
                and event.get("target") == tmp
            ):
                event["target"] = var
                rebound = True
        if not rebound:
            self.events.append({"op": "assign", "target": var, "sources": [tmp]})

    def _flatten_target(self, target: ast.expr) -> "list[ast.expr]":
        if isinstance(target, (ast.Tuple, ast.List)):
            flat: "list[ast.expr]" = []
            for element in target.elts:
                flat.extend(self._flatten_target(element))
            return flat
        if isinstance(target, ast.Starred):
            return self._flatten_target(target.value)
        return [target]

    def _emit_target_effects(
        self, target: ast.expr, escaping: "list[str]"
    ) -> None:
        """Stores into attributes/subscripts: escapes + ledger/global hits."""
        line = getattr(target, "lineno", 0)
        col = getattr(target, "col_offset", 0)
        if isinstance(target, ast.Subscript):
            self.emit_expr(target.slice)
            root = target.value
            dotted = _dotted_text(root)
            if isinstance(root, ast.Name):
                if root.id in self._module.mutable_globals:
                    self.events.append(
                        {"op": "gmut", "name": root.id, "line": line, "col": col}
                    )
            elif isinstance(root, ast.Attribute) and root.attr in LEDGER_ATTRS:
                owner = _dotted_text(root.value)
                if owner not in ("self", "cls"):
                    self.events.append(
                        {
                            "op": "ledger", "attr": root.attr,
                            "recv": owner or "?", "line": line, "col": col,
                        }
                    )
        elif isinstance(target, ast.Attribute):
            if target.attr in LEDGER_ATTRS:
                owner = _dotted_text(target.value)
                if owner not in ("self", "cls"):
                    self.events.append(
                        {
                            "op": "ledger", "attr": target.attr,
                            "recv": owner or "?", "line": line, "col": col,
                        }
                    )
        if escaping:
            self.events.append(
                {"op": "store", "vars": [s for s in escaping if s]}
            )

    def mark_mutating_method_effects(self) -> None:
        """Post-pass: receiver mutations on globals and foreign ledgers."""
        extra: "list[tuple[int, dict[str, Any]]]" = []
        for index, event in enumerate(self.events):
            if not isinstance(event, CallEvent):
                continue
            if event.attr not in _MUTATING_METHODS or event.recv is None:
                continue
            recv = event.recv
            if "." not in recv and recv in self._module.mutable_globals:
                extra.append(
                    (
                        index,
                        {
                            "op": "gmut", "name": recv,
                            "line": event.line, "col": event.col,
                        },
                    )
                )
                continue
            parts = recv.split(".")
            if len(parts) >= 2 and parts[-1] in LEDGER_ATTRS:
                owner = ".".join(parts[:-1])
                if parts[0] not in ("self", "cls"):
                    extra.append(
                        (
                            index,
                            {
                                "op": "ledger", "attr": parts[-1],
                                "recv": owner, "line": event.line,
                                "col": event.col,
                            },
                        )
                    )
        for offset, (index, event) in enumerate(extra):
            self.events.insert(index + 1 + offset, event)


# -- module scan ----------------------------------------------------------------


class _ModuleScan:
    """Shared per-module state the emitter consults."""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.imports: "dict[str, str]" = {}
        self.mutable_globals: "dict[str, int]" = {}
        self.func_global_decls: "set[str]" = set()
        self._collect_imports()
        self._collect_globals()

    def _collect_imports(self) -> None:
        is_init = self.ctx.path.replace("\\", "/").endswith("__init__.py")
        package = (
            self.ctx.module
            if is_init
            else self.ctx.module.rsplit(".", 1)[0]
            if "." in self.ctx.module
            else ""
        )
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    anchor_parts = package.split(".") if package else []
                    drop = node.level - 1
                    if drop:
                        anchor_parts = anchor_parts[: -drop] if drop <= len(anchor_parts) else []
                    anchor = ".".join(anchor_parts)
                    base = f"{anchor}.{base}" if base and anchor else (anchor or base)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def _collect_globals(self) -> None:
        for stmt in self.ctx.tree.body:
            targets: "list[ast.expr]" = []
            value: "ast.expr | None" = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            if not self._is_mutable_value(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and not (
                    target.id.startswith("__") and target.id.endswith("__")
                ):
                    self.mutable_globals[target.id] = stmt.lineno

    @staticmethod
    def _is_mutable_value(value: ast.expr) -> bool:
        if isinstance(
            value,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(value, ast.Call):
            name = _dotted_text(value.func)
            if name is not None and name.split(".")[-1] in _MUTABLE_FACTORIES:
                return True
        return False

    def is_blocking(self, name: str, attr: str) -> bool:
        resolved = self.resolve_external(name)
        if resolved in _BLOCKING_DOTTED:
            return True
        if resolved == "open" or name == "open":
            return True
        return attr in _BLOCKING_ATTRS

    def resolve_external(self, name: str) -> str:
        """Absolute dotted name through the import map (best effort)."""
        parts = name.split(".")
        root = parts[0]
        target = self.imports.get(root)
        if target is None:
            return name
        return ".".join([target] + parts[1:])


def _function_defs(
    tree: ast.Module,
) -> "list[tuple[str, str | None, ast.FunctionDef | ast.AsyncFunctionDef]]":
    """(qualname, enclosing class, node) for every def, depth-first."""
    found: "list[tuple[str, str | None, ast.FunctionDef | ast.AsyncFunctionDef]]" = []

    def visit(node: ast.AST, prefix: str, cls: "str | None") -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                found.append((qualname, cls, child))
                visit(child, qualname, None)
            elif isinstance(child, ast.ClassDef):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                visit(child, qualname, child.name)

    visit(tree, "", None)
    return found


def _extract_function(
    qualname: str,
    cls: "str | None",
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
    scan: _ModuleScan,
    ctx: ModuleContext,
) -> FuncExtract:
    cfg = build_cfg(node)
    scan.func_global_decls = _global_decls(node)
    params = tuple(
        arg.arg
        for arg in (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
        )
    )
    extract = FuncExtract(
        qualname=qualname,
        module=ctx.module,
        path=ctx.path,
        line=node.lineno,
        col=node.col_offset,
        is_async=isinstance(node, ast.AsyncFunctionDef),
        cls=cls,
        params=params,
    )
    for cfg_node in cfg.nodes.values():
        events = _node_events(cfg_node.stmt, scan)
        extract.nodes[cfg_node.node_id] = {
            "line": cfg_node.line,
            "events": events,
            "succ": list(cfg_node.succ),
        }
    return extract


def _global_decls(node: ast.AST) -> "set[str]":
    names: "set[str]" = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            names.update(sub.names)
    return names


def _node_events(stmt: "ast.stmt | None", scan: _ModuleScan) -> "list[Any]":
    if stmt is None:
        return []
    emitter = _EventEmitter(scan)
    if isinstance(stmt, ast.If):
        emitter.emit_expr(stmt.test)
    elif isinstance(stmt, ast.While):
        emitter.emit_expr(stmt.test)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        emitter.emit_expr(stmt.iter)
        iter_names = _loaded_names(stmt.iter)
        for sub in ast.walk(stmt.target):
            if isinstance(sub, ast.Name):
                # "loop" assigns *move* held sites from the iterated
                # container onto the target (and the LOOP_EXIT edge
                # retires the target), so a release loop settles its
                # container exactly.
                emitter.events.append(
                    {
                        "op": "assign",
                        "target": sub.id,
                        "sources": iter_names,
                        "loop": True,
                    }
                )
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            sym = emitter.emit_expr(item.context_expr)
            if (
                isinstance(item.optional_vars, ast.Name)
                and isinstance(item.context_expr, ast.Call)
                and sym is not None
            ):
                emitter._rebind_last_call(sym, item.optional_vars.id)
                for index in range(len(emitter.events) - 1, -1, -1):
                    event = emitter.events[index]
                    if (
                        isinstance(event, CallEvent)
                        and event.bound == item.optional_vars.id
                    ):
                        emitter.events[index] = CallEvent(
                            name=event.name, attr=event.attr, recv=event.recv,
                            bound=event.bound, args=event.args,
                            line=event.line, col=event.col, ret=event.ret,
                            managed=True, blocking=event.blocking,
                        )
                        break
    elif isinstance(stmt, ast.Try):
        return []
    elif isinstance(stmt, ast.ExceptHandler):  # type: ignore[unreachable]
        return []
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    else:
        emitter.emit_stmt(stmt)
    emitter.mark_mutating_method_effects()
    return emitter.events


def _class_table(tree: ast.Module) -> "dict[str, dict[str, Any]]":
    classes: "dict[str, dict[str, Any]]" = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        bases = [
            name
            for name in (_dotted_text(base) for base in node.bases)
            if name is not None
        ]
        methods = [
            child.name
            for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        classes[node.name] = {"bases": bases, "methods": methods}
    return classes


def extract_module(ctx: ModuleContext) -> ModuleExtract:
    """Distil one parsed module into its cacheable extract."""
    scan = _ModuleScan(ctx)
    extract = ModuleExtract(
        module=ctx.module,
        path=ctx.path,
        imports=dict(scan.imports),
        mutable_globals=dict(scan.mutable_globals),
        classes=_class_table(ctx.tree),
        pragmas={
            line: dict(pragma) for line, pragma in ctx.pragmas.items()
        },
        suppression_extents=list(ctx.suppression_extents()),
        scopes=list(ctx.scopes()),
    )
    for qualname, cls, node in _function_defs(ctx.tree):
        extract.functions[qualname] = _extract_function(
            qualname, cls, node, scan, ctx
        )
    return extract
