"""Per-file analysis context shared by every rule.

Parses the file once, resolves its dotted module name (so rules can
scope themselves to ``repro.core`` etc.), and extracts the inline
``# reprolint:`` pragmas:

* ``# reprolint: disable=REP001[,REP003]`` — suppress those rules on
  that line;
* ``# reprolint: backstop -- <reason>`` — sanction a broad exception
  handler (REP003) with a mandatory justification.

A pragma covers the whole *logical* statement it sits on, not just its
physical line: a ``disable`` on any line of a multi-line call suppresses
findings reported anywhere inside that statement, and a pragma on a
decorator line (or the ``def`` line of a decorated function) covers the
whole decorator-plus-signature header.  Bodies are never covered — a
pragma inside a function suppresses only its own statement.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from ..util.errors import ValidationError

__all__ = [
    "ModuleContext",
    "parse_pragmas",
    "pragma_extents",
    "scope_extents",
]

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable|backstop)"
    r"(?:\s*=\s*(?P<rules>[A-Z0-9,\s]+?))?"
    r"(?:\s*--\s*(?P<reason>.*))?\s*$"
)


def parse_pragmas(lines: "list[str]") -> "dict[int, dict[str, object]]":
    """Map 1-based line numbers to their pragma, if any."""
    pragmas: dict[int, dict[str, object]] = {}
    for number, text in enumerate(lines, start=1):
        if "reprolint:" not in text:
            continue
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        pragmas[number] = {
            "kind": match.group("kind"),
            "rules": frozenset(
                rule.strip() for rule in rules.split(",") if rule.strip()
            )
            if rules
            else frozenset(),
            "reason": (match.group("reason") or "").strip(),
        }
    return pragmas


def pragma_extents(tree: ast.Module) -> "list[tuple[int, int]]":
    """Line ranges over which one inline pragma covers its neighbours.

    Two kinds of range:

    * every *simple* statement spanning several physical lines covers
      ``lineno..end_lineno`` (a pragma on the opening line of a
      multi-line call suppresses a finding reported on an inner line,
      and vice versa);
    * every function/class *header* covers first-decorator..last
      signature line (a pragma on the decorator suppresses a finding at
      the ``def``, and vice versa), stopping before the first body
      statement so a header pragma never silences the body.
    """
    extents: "list[tuple[int, int]]" = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            start = min(
                [node.lineno] + [dec.lineno for dec in node.decorator_list]
            )
            end = node.body[0].lineno - 1 if node.body else node.lineno
            if end > start:
                extents.append((start, end))
        elif isinstance(node, ast.stmt):
            end_lineno = getattr(node, "end_lineno", None) or node.lineno
            if end_lineno > node.lineno and not _is_compound(node):
                extents.append((node.lineno, end_lineno))
    return sorted(set(extents))


def _is_compound(node: ast.stmt) -> bool:
    return isinstance(
        node,
        (
            ast.If,
            ast.For,
            ast.AsyncFor,
            ast.While,
            ast.With,
            ast.AsyncWith,
            ast.Try,
            ast.FunctionDef,
            ast.AsyncFunctionDef,
            ast.ClassDef,
        ),
    )


def scope_extents(tree: ast.Module) -> "list[tuple[int, int, str]]":
    """``(start, end, qualname)`` for every def/class, innermost-last.

    Used by finding fingerprints: the enclosing scope's qualified name
    anchors a finding to its *code context*, so identical source lines
    in two different functions baseline independently while edits
    elsewhere in the file keep the fingerprint stable.
    """
    extents: "list[tuple[int, int, str]]" = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                start = min(
                    [child.lineno] + [d.lineno for d in child.decorator_list]
                )
                end = getattr(child, "end_lineno", None) or child.lineno
                extents.append((start, end, qualname))
                visit(child, qualname)
            else:
                visit(child, prefix)

    visit(tree, "")
    return extents


def _module_name(path: Path) -> str:
    """Dotted module name, resolved from the path's package layout.

    Walks up through directories that contain ``__init__.py`` so
    ``src/repro/core/offers.py`` becomes ``repro.core.offers``.  Files
    outside any package keep their stem (fixtures, scripts).
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


@dataclass(slots=True)
class ModuleContext:
    """Everything a rule needs to inspect one file."""

    path: str
    module: str
    source: str
    tree: ast.Module
    lines: "list[str]" = field(default_factory=list)
    pragmas: "dict[int, dict[str, object]]" = field(default_factory=dict)
    _extents: "list[tuple[int, int]] | None" = field(default=None, repr=False)
    _scopes: "list[tuple[int, int, str]] | None" = field(default=None, repr=False)

    @classmethod
    def from_source(
        cls, source: str, *, path: str = "<string>", module: "str | None" = None
    ) -> "ModuleContext":
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            raise ValidationError(f"{path}: not parseable: {error}") from error
        lines = source.splitlines()
        return cls(
            path=path,
            module=module if module is not None else Path(path).stem,
            source=source,
            tree=tree,
            lines=lines,
            pragmas=parse_pragmas(lines),
        )

    @classmethod
    def from_path(cls, path: "Path | str") -> "ModuleContext":
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        return cls.from_source(
            source, path=str(path), module=_module_name(path)
        )

    # -- helpers used by rules -----------------------------------------------------

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def pragma_at(self, line: int) -> "dict[str, object] | None":
        return self.pragmas.get(line)

    def suppression_extents(self) -> "list[tuple[int, int]]":
        if self._extents is None:
            self._extents = pragma_extents(self.tree)
        return self._extents

    def scopes(self) -> "list[tuple[int, int, str]]":
        if self._scopes is None:
            self._scopes = scope_extents(self.tree)
        return self._scopes

    def scope_at(self, line: int) -> str:
        """Qualified name of the innermost def/class enclosing ``line``."""
        best = ""
        best_span = None
        for start, end, qualname in self.scopes():
            if start <= line <= end:
                span = end - start
                if best_span is None or span <= best_span:
                    best, best_span = qualname, span
        return best

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Is ``rule_id`` disabled on ``line`` by an inline pragma?

        A pragma applies to its own physical line and, via
        :func:`pragma_extents`, to every line of the logical statement
        (or decorated def/class header) it lives in.
        """
        if self._pragma_disables(rule_id, line):
            return True
        for start, end in self.suppression_extents():
            if start <= line <= end:
                if any(
                    self._pragma_disables(rule_id, pragma_line)
                    for pragma_line in range(start, end + 1)
                    if pragma_line in self.pragmas
                ):
                    return True
        return False

    def _pragma_disables(self, rule_id: str, line: int) -> bool:
        pragma = self.pragmas.get(line)
        if pragma is None or pragma["kind"] != "disable":
            return False
        rules = pragma["rules"]
        return not rules or rule_id in rules  # bare disable hits every rule

    def in_package(self, *segments: str) -> bool:
        """Does the file live under the given package path?

        Matches either the resolved dotted module name or consecutive
        path segments, so fixture trees laid out as ``.../repro/core/``
        scope the same way the real package does.
        """
        dotted = ".".join(segments)
        if self.module == dotted or self.module.startswith(dotted + "."):
            return True
        parts = Path(self.path).parts
        n = len(segments)
        return any(
            parts[i : i + n] == segments for i in range(len(parts) - n + 1)
        )
