"""Per-file analysis context shared by every rule.

Parses the file once, resolves its dotted module name (so rules can
scope themselves to ``repro.core`` etc.), and extracts the inline
``# reprolint:`` pragmas:

* ``# reprolint: disable=REP001[,REP003]`` — suppress those rules on
  that line;
* ``# reprolint: backstop -- <reason>`` — sanction a broad exception
  handler (REP003) with a mandatory justification.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from ..util.errors import ValidationError

__all__ = ["ModuleContext", "parse_pragmas"]

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable|backstop)"
    r"(?:\s*=\s*(?P<rules>[A-Z0-9,\s]+?))?"
    r"(?:\s*--\s*(?P<reason>.*))?\s*$"
)


def parse_pragmas(lines: "list[str]") -> "dict[int, dict[str, object]]":
    """Map 1-based line numbers to their pragma, if any."""
    pragmas: dict[int, dict[str, object]] = {}
    for number, text in enumerate(lines, start=1):
        if "reprolint:" not in text:
            continue
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        pragmas[number] = {
            "kind": match.group("kind"),
            "rules": frozenset(
                rule.strip() for rule in rules.split(",") if rule.strip()
            )
            if rules
            else frozenset(),
            "reason": (match.group("reason") or "").strip(),
        }
    return pragmas


def _module_name(path: Path) -> str:
    """Dotted module name, resolved from the path's package layout.

    Walks up through directories that contain ``__init__.py`` so
    ``src/repro/core/offers.py`` becomes ``repro.core.offers``.  Files
    outside any package keep their stem (fixtures, scripts).
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


@dataclass(slots=True)
class ModuleContext:
    """Everything a rule needs to inspect one file."""

    path: str
    module: str
    source: str
    tree: ast.Module
    lines: "list[str]" = field(default_factory=list)
    pragmas: "dict[int, dict[str, object]]" = field(default_factory=dict)

    @classmethod
    def from_source(
        cls, source: str, *, path: str = "<string>", module: "str | None" = None
    ) -> "ModuleContext":
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            raise ValidationError(f"{path}: not parseable: {error}") from error
        lines = source.splitlines()
        return cls(
            path=path,
            module=module if module is not None else Path(path).stem,
            source=source,
            tree=tree,
            lines=lines,
            pragmas=parse_pragmas(lines),
        )

    @classmethod
    def from_path(cls, path: "Path | str") -> "ModuleContext":
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        return cls.from_source(
            source, path=str(path), module=_module_name(path)
        )

    # -- helpers used by rules -----------------------------------------------------

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def pragma_at(self, line: int) -> "dict[str, object] | None":
        return self.pragmas.get(line)

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Is ``rule_id`` disabled on ``line`` by an inline pragma?"""
        pragma = self.pragmas.get(line)
        if pragma is None or pragma["kind"] != "disable":
            return False
        rules = pragma["rules"]
        return not rules or rule_id in rules  # bare disable hits every rule

    def in_package(self, *segments: str) -> bool:
        """Does the file live under the given package path?

        Matches either the resolved dotted module name or consecutive
        path segments, so fixture trees laid out as ``.../repro/core/``
        scope the same way the real package does.
        """
        dotted = ".".join(segments)
        if self.module == dotted or self.module.startswith(dotted + "."):
            return True
        parts = Path(self.path).parts
        n = len(segments)
        return any(
            parts[i : i + n] == segments for i in range(len(parts) - n + 1)
        )
