"""Retry policy: capped exponential backoff with deterministic jitter.

The resource-commitment path wraps each server admission and flow
reservation in :func:`execute_with_retry` so transient faults (injected
refusals, slow-call timeouts, short crash windows) don't immediately
fail an otherwise-committable offer.

All delays are *accounted*, not slept: the simulation runs on a manual
clock and advancing it from inside a commitment would race the event
loop, so backoff time counts against the policy's overall deadline
while the attempts themselves are instantaneous in simulated time.  A
``sleep`` callable can be supplied where real waiting is meaningful.
Jitter draws come from a seeded generator, so a chaos run replays
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

from ..util.errors import (
    FaultTimeoutError,
    ServerCrashedError,
    TransientFaultError,
    ValidationError,
)
from ..util.rng import RngLike, make_rng
from ..util.validation import (
    check_at_least,
    check_fraction,
    check_non_negative,
    check_positive,
)

__all__ = ["RETRYABLE_ERRORS", "is_retryable", "RetryPolicy", "execute_with_retry"]

T = TypeVar("T")

RETRYABLE_ERRORS: tuple[type[Exception], ...] = (
    TransientFaultError,
    FaultTimeoutError,
    ServerCrashedError,
)
"""Errors worth retrying: the same call may succeed a moment later.
Deterministic refusals (capacity, admission-control rejection) are *not*
here — backing off cannot create capacity; the commitment walk moves to
the next offer instead."""


def is_retryable(error: BaseException) -> bool:
    return isinstance(error, RETRYABLE_ERRORS)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Attempt ``n`` (1-based) waits ``base_delay_s * multiplier**(n-1)``
    before attempt ``n+1``, capped at ``max_delay_s`` and spread by
    ``±jitter`` (a fraction of the delay).  ``attempt_timeout_s`` bounds
    one call (enforced by the fault injector's slow-call threshold);
    ``deadline_s`` bounds the whole retry loop's accumulated backoff.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.5
    max_delay_s: float = 8.0
    multiplier: float = 2.0
    jitter: float = 0.1
    attempt_timeout_s: float = 1.0
    deadline_s: float = 30.0

    def __post_init__(self) -> None:
        # Bare ``<`` comparisons are not enough here: NaN compares False
        # against everything, so a NaN multiplier or attempt count used
        # to slip through and poison every backoff computation.
        check_at_least(self.max_attempts, 1, "max_attempts", integer=True)
        check_non_negative(self.base_delay_s, "base_delay_s")
        check_positive(self.max_delay_s, "max_delay_s")
        check_at_least(self.multiplier, 1.0, "multiplier")
        check_fraction(self.jitter, "jitter")
        check_positive(self.attempt_timeout_s, "attempt_timeout_s")
        check_positive(self.deadline_s, "deadline_s")
        if self.max_delay_s < self.base_delay_s:
            raise ValidationError(
                f"max_delay_s ({self.max_delay_s!r}) must not be below "
                f"base_delay_s ({self.base_delay_s!r})"
            )

    def backoff_delay(
        self, attempt: int, rng: "np.random.Generator | None" = None
    ) -> float:
        """Backoff before the attempt *after* 1-based ``attempt``."""
        if attempt < 1:
            raise ValidationError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return delay


def execute_with_retry(
    fn: "Callable[[], T]",
    policy: RetryPolicy,
    *,
    rng: RngLike = None,
    sleep: "Callable[[float], None] | None" = None,
    on_retry: "Callable[[int, BaseException, float], None] | None" = None,
    retryable: "Callable[[BaseException], bool]" = is_retryable,
) -> T:
    """Call ``fn`` under ``policy``; return its result or re-raise.

    Retries only errors ``retryable`` approves, stops when attempts or
    the backoff deadline run out, and reports each retry through
    ``on_retry(attempt, error, delay_s)``.  The final error propagates
    unchanged, so callers' except clauses keep working.
    """
    rng = make_rng(rng)
    elapsed = 0.0
    attempt = 1
    while True:
        try:
            return fn()
        # A generic combinator must catch broadly: callers may pass a
        # custom ``retryable`` predicate approving error types outside
        # the repro taxonomy.  Non-retryables are re-raised unchanged.
        except Exception as error:  # reprolint: backstop -- custom retryable predicates may approve non-repro errors
            if not retryable(error) or attempt >= policy.max_attempts:
                raise
            delay = policy.backoff_delay(attempt, rng)
            if elapsed + delay > policy.deadline_s + 1e-12:
                raise
            elapsed += delay
            if on_retry is not None:
                on_retry(attempt, error, delay)
            if sleep is not None:
                sleep(delay)
            attempt += 1
