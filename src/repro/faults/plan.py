"""Composable fault plans for chaos experiments.

A :class:`FaultPlan` is a seed plus an ordered list of :class:`FaultSpec`
entries; each spec describes one injectable failure — a server crash
window, a link flap, injected admission latency, a transient refusal, or
a lost (swallowed) release.  Plans are pure data: the
:class:`~repro.faults.injector.FaultInjector` interprets them against a
live deployment, so the same plan can be replayed against any scenario.

Specs also have a compact string form for the CLI
(``kind:target:start:duration[:value]``), parsed by
:func:`parse_fault_spec`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from ..util.errors import ValidationError
from ..util.validation import check_fraction, check_non_negative

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "parse_fault_spec"]


class FaultKind(enum.Enum):
    """The failure modes the injector can produce."""

    SERVER_CRASH = "server-crash"
    """The server machine is down for the window: admissions raise
    :class:`~repro.util.errors.ServerCrashedError`, every held stream is
    violated, and on restart the server's reservation ledger is wiped."""

    SLOW_ADMISSION = "slow-admission"
    """Admissions take ``value`` extra seconds.  Latency above the
    injector's per-attempt timeout surfaces as a retryable
    :class:`~repro.util.errors.FaultTimeoutError`."""

    TRANSIENT_REFUSAL = "transient-refusal"
    """Admissions fail with a retryable
    :class:`~repro.util.errors.TransientFaultError`; with ``count`` set,
    only the first ``count`` calls in the window are refused."""

    LINK_FLAP = "link-flap"
    """The link loses ``value`` of its capacity for the window (1.0 =
    fully down), then heals."""

    SERVER_BROWNOUT = "server-brownout"
    """The server loses ``value`` of its deliverable capacity for the
    window (a failing disk, background maintenance, a noisy neighbour —
    not a crash: the machine keeps serving what still fits).  The
    shrunken round budget sheds the latest admissions, flooding the
    monitor with violations — the mass-renegotiation storm the
    :mod:`repro.storm` layer exists to survive.  Heals at window end.
    Default severity 0.5."""

    LOST_RELEASE = "lost-release"
    """A release call is silently swallowed: the reservation leaks until
    the lease reaper recovers it."""

    MANAGER_CRASH = "crash-manager"
    """The QoS manager itself dies, raising
    :class:`~repro.util.errors.ManagerCrashError` at the ``value``-th
    crash opportunity (default: the first) inside the window — a crash
    opportunity is any journal append or admission attempt, i.e. exactly
    the points of steps 5–6 where a real process can die.  Recovery is
    by journal replay, not retry.  ``target_id`` is ``manager`` (or
    ``*``)."""


_ALIASES = {
    "crash": FaultKind.SERVER_CRASH,
    "server-crash": FaultKind.SERVER_CRASH,
    "slow": FaultKind.SLOW_ADMISSION,
    "slow-admission": FaultKind.SLOW_ADMISSION,
    "refuse": FaultKind.TRANSIENT_REFUSAL,
    "transient-refusal": FaultKind.TRANSIENT_REFUSAL,
    "flap": FaultKind.LINK_FLAP,
    "link-flap": FaultKind.LINK_FLAP,
    "brownout": FaultKind.SERVER_BROWNOUT,
    "server-brownout": FaultKind.SERVER_BROWNOUT,
    "lost-release": FaultKind.LOST_RELEASE,
    "crash-manager": FaultKind.MANAGER_CRASH,
    "manager-crash": FaultKind.MANAGER_CRASH,
}

_CALL_LEVEL = frozenset(
    {
        FaultKind.SLOW_ADMISSION,
        FaultKind.TRANSIENT_REFUSAL,
        FaultKind.LOST_RELEASE,
        FaultKind.MANAGER_CRASH,
    }
)


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One injectable failure.

    ``value`` is kind-specific: injected latency in seconds for
    SLOW_ADMISSION, severity fraction for LINK_FLAP (default 1.0 = full
    outage), refusal count for TRANSIENT_REFUSAL (``None`` = every call
    in the window).  ``probability`` gates call-level faults with a
    seeded draw (1.0 = always fire).
    """

    kind: FaultKind
    target_id: str
    start_s: float = 0.0
    duration_s: "float | None" = None
    value: "float | None" = None
    probability: float = 1.0

    def __post_init__(self) -> None:
        if not self.target_id:
            raise ValidationError("fault target_id must be non-empty")
        check_non_negative(self.start_s, "start_s")
        if self.duration_s is not None:
            check_non_negative(self.duration_s, "duration_s")
        check_fraction(self.probability, "probability")
        if self.kind is FaultKind.LINK_FLAP and self.value is not None:
            check_fraction(self.value, "flap severity")
        if self.kind is FaultKind.SERVER_BROWNOUT:
            if self.value is not None:
                check_fraction(self.value, "brownout severity")
            if self.value is not None and self.value == 0.0:
                raise ValidationError(
                    "brownout severity 0 is a no-op; omit the fault instead"
                )
        if self.kind is FaultKind.SLOW_ADMISSION and (
            self.value is None or self.value <= 0
        ):
            raise ValidationError(
                "slow-admission needs a positive latency value"
            )
        if self.kind is FaultKind.MANAGER_CRASH and (
            self.value is not None and self.value < 1
        ):
            raise ValidationError(
                "crash-manager value (the k-th crash opportunity) must be >= 1"
            )

    @property
    def end_s(self) -> "float | None":
        if self.duration_s is None:
            return None
        return self.start_s + self.duration_s

    def active_at(self, now: float) -> bool:
        """Is the fault window open at simulated time ``now``?"""
        if now < self.start_s - 1e-12:
            return False
        end = self.end_s
        return end is None or now < end - 1e-12

    @property
    def is_call_level(self) -> bool:
        """Fires on individual admit/release calls (vs a timed state
        change scheduled on the event loop)."""
        return self.kind in _CALL_LEVEL

    def describe(self) -> str:
        window = (
            f"t={self.start_s:g}s.."
            + (f"{self.end_s:g}s" if self.end_s is not None else "∞")
        )
        extra = f" value={self.value:g}" if self.value is not None else ""
        return f"{self.kind.value} on {self.target_id} [{window}]{extra}"


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A seed plus the faults to inject — everything a chaos run needs
    to be exactly reproducible."""

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> "Iterator[FaultSpec]":
        return iter(self.faults)

    def for_kind(self, kind: FaultKind) -> tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.kind is kind)

    def describe(self) -> str:
        if not self.faults:
            return "fault plan: (empty)"
        lines = [f"fault plan (seed {self.seed}):"]
        lines.extend(f"  - {spec.describe()}" for spec in self.faults)
        return "\n".join(lines)


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the CLI form ``kind:target:start:duration[:value]``.

    ``duration`` may be ``-`` for an open-ended window.  Examples::

        crash:server-a:10:30        # server-a down from t=10 for 30s
        flap:L-client-1:40:20:0.9   # link loses 90% capacity t=40..60
        brownout:server-a:50:60:0.4 # server-a loses 40% capacity t=50..110
        slow:server-b:0:60:2.5      # +2.5s admission latency t=0..60
        refuse:server-a:0:-:2       # first 2 admissions refused
        lost-release:server-a:0:120 # releases swallowed t=0..120
    """
    parts = text.split(":")
    if len(parts) < 2:
        raise ValidationError(
            f"fault spec {text!r}: expected kind:target[:start[:duration[:value]]]"
        )
    kind_text = parts[0].strip().lower()
    kind = _ALIASES.get(kind_text)
    if kind is None:
        raise ValidationError(
            f"unknown fault kind {kind_text!r}; have {sorted(_ALIASES)}"
        )
    target = parts[1].strip()

    def number(index: int, default: "float | None") -> "float | None":
        if len(parts) <= index or parts[index].strip() in ("", "-"):
            return default
        try:
            return float(parts[index])
        except ValueError:
            raise ValidationError(
                f"fault spec {text!r}: field {index} is not a number"
            ) from None

    start = number(2, 0.0) or 0.0
    duration = number(3, None)
    value = number(4, None)
    return FaultSpec(
        kind=kind,
        target_id=target,
        start_s=start,
        duration_s=duration,
        value=value,
    )
