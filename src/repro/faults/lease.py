"""Lease-based reservation lifetimes.

Every committed bundle is granted a lease; an active session renews it
on each monitoring sweep.  When a release is lost (a crashed holder, a
swallowed release RPC — the LOST_RELEASE fault) the lease stops being
renewed, expires, and the reaper returns the capacity.  This bounds the
damage of any failure on the release path: no reservation can leak
forever, including the ``choicePeriod`` expiry path under faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..util.errors import LeaseError
from ..util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.commitment import ReservationBundle

__all__ = ["Lease", "LeaseManager"]


@dataclass(slots=True)
class Lease:
    """One bundle's time-bounded right to hold its resources."""

    holder: str
    bundle: "ReservationBundle"
    granted_at: float
    ttl_s: float
    expires_at: float
    renewals: int = 0
    zombie: bool = False  # a release was attempted but resources remain

    def expired(self, now: float) -> bool:
        return now >= self.expires_at - 1e-12

    def renew(self, now: float) -> None:
        self.expires_at = now + self.ttl_s
        self.renewals += 1


class LeaseManager:
    """The lease table, keyed by reservation holder."""

    def __init__(self, *, ttl_s: float = 300.0) -> None:
        self.ttl_s = check_positive(ttl_s, "ttl_s")
        self._leases: dict[str, Lease] = {}
        self.reaped = 0  # lifetime count of expired leases collected

    def __len__(self) -> int:
        return len(self._leases)

    def __contains__(self, holder: str) -> bool:
        return holder in self._leases

    def get(self, holder: str) -> "Lease | None":
        return self._leases.get(holder)

    def leases(self) -> tuple[Lease, ...]:
        return tuple(self._leases.values())

    def grant(
        self, holder: str, bundle: "ReservationBundle", now: float
    ) -> Lease:
        if holder in self._leases:
            raise LeaseError(f"holder {holder!r} already has a lease")
        lease = Lease(
            holder=holder,
            bundle=bundle,
            granted_at=now,
            ttl_s=self.ttl_s,
            expires_at=now + self.ttl_s,
        )
        self._leases[holder] = lease
        return lease

    def renew(self, holder: str, now: float) -> None:
        lease = self._leases.get(holder)
        if lease is None:
            raise LeaseError(f"no lease for holder {holder!r}")
        lease.renew(now)

    def renew_if_held(self, holder: str, now: float) -> bool:
        lease = self._leases.get(holder)
        if lease is None:
            return False
        lease.renew(now)
        return True

    def drop(self, holder: str) -> "Lease | None":
        """Remove a lease after a verified-clean release."""
        return self._leases.pop(holder, None)

    def mark_zombie(self, holder: str) -> None:
        """A release ran but left resources behind (lost-release fault);
        keep the lease so the reaper retries, and stop waiting for the
        normal expiry — the holder is gone."""
        lease = self._leases.get(holder)
        if lease is not None:
            lease.zombie = True

    def due(self, now: float) -> tuple[Lease, ...]:
        """Leases the reaper should collect: expired or zombie."""
        return tuple(
            lease
            for lease in self._leases.values()
            if lease.zombie or lease.expired(now)
        )

    def collect(self, lease: Lease) -> None:
        """The reaper freed the lease's resources."""
        if self._leases.pop(lease.holder, None) is not None:
            self.reaped += 1

    def __repr__(self) -> str:
        return f"LeaseManager({len(self._leases)} held, ttl={self.ttl_s:g}s)"
