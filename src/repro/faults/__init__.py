"""Fault injection and resilience primitives.

The paper's negotiation (§4 steps 5–6) and automatic adaptation (§8)
exist because real fleets fail mid-reservation and mid-playout.  This
package supplies both sides of that story:

* the *fault* side — :class:`FaultPlan` / :class:`FaultInjector`
  deterministically produce server crashes, slow or transiently-refused
  admissions, link flaps, and lost releases against a live deployment;
* the *resilience* side — :class:`RetryPolicy` (capped backoff with
  deterministic jitter), :class:`CircuitBreaker` (per-server quarantine)
  and :class:`LeaseManager` (expiring reservation leases) let the
  control plane survive those faults gracefully.
"""

from .health import BreakerState, CircuitBreaker, ServerHealth
from .injector import FaultInjector, FaultStats
from .lease import Lease, LeaseManager
from .plan import FaultKind, FaultPlan, FaultSpec, parse_fault_spec
from .retry import (
    RETRYABLE_ERRORS,
    RetryPolicy,
    execute_with_retry,
    is_retryable,
)

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "ServerHealth",
    "FaultInjector",
    "FaultStats",
    "Lease",
    "LeaseManager",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "parse_fault_spec",
    "RETRYABLE_ERRORS",
    "RetryPolicy",
    "execute_with_retry",
    "is_retryable",
]
