"""The fault injector: interprets a :class:`FaultPlan` against a live
deployment.

Two delivery mechanisms:

* **Timed state faults** (server crash/restart, link flap/heal) are
  scheduled on the event loop by :meth:`FaultInjector.arm`, exactly like
  the congestion injector — the component's own state changes, so the
  monitor and routing see the failure without any hook.
* **Call-level faults** (slow admission, transient refusal, lost
  release) fire inside individual admit/release calls through the thin
  ``fault_hook`` attribute on :class:`~repro.cmfs.server.MediaServer`
  and :class:`~repro.network.transport.TransportSystem` — a single
  ``is None`` check on the happy path, zero overhead when no injector is
  installed.

Everything stochastic (per-call probabilities) draws from one seeded
generator in call order, so a chaos run is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping

from ..util.clock import ManualClock
from ..util.errors import (
    FaultTimeoutError,
    ManagerCrashError,
    SimulationError,
    TransientFaultError,
)
from ..util.rng import make_rng
from .plan import FaultKind, FaultPlan, FaultSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cmfs.server import MediaServer
    from ..journal import JournalRecord, ReservationJournal
    from ..network.link import Link
    from ..network.transport import TransportSystem
    from ..session.engine import EventLoop

__all__ = ["FaultStats", "FaultInjector"]


@dataclass(slots=True)
class FaultStats:
    """What the injector actually did — reported by the chaos run."""

    crashes: int = 0
    restarts: int = 0
    link_flaps: int = 0
    link_heals: int = 0
    brownouts: int = 0
    brownout_heals: int = 0
    transient_refusals: int = 0
    slow_admissions: int = 0
    timeouts: int = 0
    lost_releases: int = 0
    manager_crashes: int = 0
    injected_latency_s: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "crashes": self.crashes,
            "restarts": self.restarts,
            "link_flaps": self.link_flaps,
            "link_heals": self.link_heals,
            "brownouts": self.brownouts,
            "brownout_heals": self.brownout_heals,
            "transient_refusals": self.transient_refusals,
            "slow_admissions": self.slow_admissions,
            "timeouts": self.timeouts,
            "lost_releases": self.lost_releases,
            "manager_crashes": self.manager_crashes,
            "injected_latency_s": self.injected_latency_s,
        }


class FaultInjector:
    """Deterministic fault delivery for one deployment.

    ``attempt_timeout_s`` is the slow-call budget: injected admission
    latency above it surfaces as a retryable
    :class:`~repro.util.errors.FaultTimeoutError` (the caller's
    per-attempt timeout fired); latency at or below it is absorbed and
    only accounted in :attr:`stats`.
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        clock: "ManualClock | None" = None,
        attempt_timeout_s: float = 1.0,
    ) -> None:
        self.plan = plan
        self.clock = clock or ManualClock()
        self.attempt_timeout_s = float(attempt_timeout_s)
        self.stats = FaultStats()
        self._rng = make_rng(plan.seed)
        # Remaining firing budget per spec index (None = unlimited).
        self._budget: dict[int, "int | None"] = {
            i: (int(spec.value) if spec.kind is FaultKind.TRANSIENT_REFUSAL
                and spec.value is not None else None)
            for i, spec in enumerate(plan.faults)
        }
        self._servers: dict[str, "MediaServer"] = {}
        self._transport: "TransportSystem | None" = None
        self._journal: "ReservationJournal | None" = None
        # Manager-crash bookkeeping: opportunities seen and specs
        # already fired (a process dies once per spec).
        self._crash_opportunities: dict[int, int] = {}
        self._crashed_specs: set[int] = set()
        self._armed = False

    # -- installation --------------------------------------------------------------

    def install(
        self,
        servers: "Mapping[str, MediaServer]",
        transport: "TransportSystem | None" = None,
    ) -> "FaultInjector":
        """Attach the call-level hooks to the fleet and the transport."""
        self._servers = dict(servers)
        for server in self._servers.values():
            server.fault_hook = self
        if transport is not None:
            self._transport = transport
            transport.fault_hook = self
        return self

    def install_journal(
        self, journal: "ReservationJournal"
    ) -> "FaultInjector":
        """Attach the manager-crash hook to the reservation journal.

        The hook fires *after* each record is durable — the crash then
        lands exactly between append and apply, the window the
        write-ahead discipline exists for."""
        for spec in self.plan.for_kind(FaultKind.MANAGER_CRASH):
            if spec.target_id != "manager":
                raise SimulationError(
                    f"crash-manager targets unknown process "
                    f"{spec.target_id!r}; the QoS manager is 'manager'"
                )
        self._journal = journal
        journal.crash_hook = self._after_journal_append
        return self

    def uninstall(self) -> None:
        for server in self._servers.values():
            if server.fault_hook is self:
                server.fault_hook = None
        if self._transport is not None and self._transport.fault_hook is self:
            self._transport.fault_hook = None
        if (
            self._journal is not None
            and self._journal.crash_hook == self._after_journal_append
        ):
            self._journal.crash_hook = None

    def arm(self, loop: "EventLoop") -> None:
        """Schedule the timed state faults (crashes, flaps) on ``loop``."""
        if self._armed:
            raise SimulationError("fault injector already armed")
        self._armed = True
        for spec in self.plan.for_kind(FaultKind.SERVER_CRASH):
            server = self._server(spec.target_id)
            loop.at(
                spec.start_s,
                lambda s=server: self._crash(s),
                label=f"fault:crash:{spec.target_id}",
            )
            if spec.end_s is not None:
                loop.at(
                    spec.end_s,
                    lambda s=server: self._restart(s),
                    label=f"fault:restart:{spec.target_id}",
                )
        for spec in self.plan.for_kind(FaultKind.SERVER_BROWNOUT):
            server = self._server(spec.target_id)
            severity = 0.5 if spec.value is None else spec.value
            loop.at(
                spec.start_s,
                lambda s=server, sev=severity: self._brownout(s, sev),
                label=f"fault:brownout:{spec.target_id}",
            )
            if spec.end_s is not None:
                loop.at(
                    spec.end_s,
                    lambda s=server: self._brownout_heal(s),
                    label=f"fault:brownout-heal:{spec.target_id}",
                )
        for spec in self.plan.for_kind(FaultKind.LINK_FLAP):
            link = self._link(spec.target_id)
            severity = 1.0 if spec.value is None else spec.value
            loop.at(
                spec.start_s,
                lambda l=link, sev=severity: self._flap(l, sev),
                label=f"fault:flap:{spec.target_id}",
            )
            if spec.end_s is not None:
                loop.at(
                    spec.end_s,
                    lambda l=link: self._heal(l),
                    label=f"fault:heal:{spec.target_id}",
                )

    def _server(self, server_id: str) -> "MediaServer":
        try:
            return self._servers[server_id]
        except KeyError:
            raise SimulationError(
                f"fault plan targets unknown server {server_id!r}; "
                "call install() with the fleet first"
            ) from None

    def _link(self, link_id: str) -> "Link":
        if self._transport is None:
            raise SimulationError(
                "fault plan targets a link but no transport is installed"
            )
        return self._transport.topology.link(link_id)

    # -- timed state transitions ---------------------------------------------------

    def _crash(self, server: "MediaServer") -> None:
        server.crash()
        self.stats.crashes += 1

    def _restart(self, server: "MediaServer") -> None:
        server.restart()
        self.stats.restarts += 1

    def _brownout(self, server: "MediaServer", severity: float) -> None:
        server.set_degradation(severity)
        self.stats.brownouts += 1

    def _brownout_heal(self, server: "MediaServer") -> None:
        server.set_degradation(0.0)
        self.stats.brownout_heals += 1

    def _flap(self, link: "Link", severity: float) -> None:
        link.set_congestion(severity)
        self.stats.link_flaps += 1

    def _heal(self, link: "Link") -> None:
        link.restore()
        self.stats.link_heals += 1

    # -- call-level fault matching -------------------------------------------------

    def _fires(self, index: int, spec: FaultSpec) -> bool:
        """One deterministic yes/no for a matching call."""
        budget = self._budget[index]
        if budget is not None and budget <= 0:
            return False
        if spec.probability < 1.0:
            if float(self._rng.uniform()) >= spec.probability:
                return False
        if budget is not None:
            self._budget[index] = budget - 1
        return True

    def _matching(
        self, kind: FaultKind, target_id: str
    ) -> "Iterator[tuple[int, FaultSpec]]":
        now = self.clock.now()
        for index, spec in enumerate(self.plan.faults):
            if spec.kind is not kind:
                continue
            if spec.target_id not in (target_id, "*"):
                continue
            if spec.active_at(now):
                yield index, spec

    # -- hook interface (called by MediaServer / TransportSystem) ------------------

    def _after_journal_append(self, record: "JournalRecord") -> None:
        """Journal crash hook: each durable record is one opportunity
        for the manager to die (after append, before apply)."""
        self._crash_opportunity()

    def _crash_opportunity(self) -> None:
        """One deterministic point at which the manager may crash.

        Each MANAGER_CRASH spec counts opportunities inside its window
        and fires exactly once, at its ``value``-th one (default the
        first) — so a seeded plan kills the manager at a reproducible
        point of steps 5–6.
        """
        for index, spec in self._matching(FaultKind.MANAGER_CRASH, "manager"):
            if index in self._crashed_specs:
                continue
            seen = self._crash_opportunities.get(index, 0) + 1
            self._crash_opportunities[index] = seen
            kth = 1 if spec.value is None else int(spec.value)
            if seen < kth:
                continue
            self._crashed_specs.add(index)
            self.stats.manager_crashes += 1
            raise ManagerCrashError(
                f"injected manager crash at opportunity {seen} "
                f"(t={self.clock.now():g}s)"
            )

    def before_admit(
        self, server: "MediaServer", variant_id: str, rate_bps: float
    ) -> None:
        """May raise a transient refusal or a slow-call timeout."""
        self._crash_opportunity()
        server_id = server.server_id
        for index, spec in self._matching(
            FaultKind.TRANSIENT_REFUSAL, server_id
        ):
            if self._fires(index, spec):
                self.stats.transient_refusals += 1
                raise TransientFaultError(
                    f"{server_id}: injected transient refusal of "
                    f"{variant_id!r}"
                )
        for index, spec in self._matching(
            FaultKind.SLOW_ADMISSION, server_id
        ):
            if self._fires(index, spec):
                latency = float(spec.value or 0.0)
                self.stats.slow_admissions += 1
                self.stats.injected_latency_s += latency
                if latency > self.attempt_timeout_s + 1e-12:
                    self.stats.timeouts += 1
                    raise FaultTimeoutError(
                        f"{server_id}: admission of {variant_id!r} took "
                        f"{latency:g}s (> {self.attempt_timeout_s:g}s "
                        "per-attempt timeout)"
                    )

    def intercept_stream_release(
        self, server: "MediaServer", stream_id: str
    ) -> bool:
        """True = swallow the release (the reservation leaks)."""
        for index, spec in self._matching(
            FaultKind.LOST_RELEASE, server.server_id
        ):
            if self._fires(index, spec):
                self.stats.lost_releases += 1
                return True
        return False

    def intercept_flow_release(self, flow_id: str) -> bool:
        """True = swallow the flow release (the reservation leaks)."""
        for index, spec in self._matching(FaultKind.LOST_RELEASE, "transport"):
            if self._fires(index, spec):
                self.stats.lost_releases += 1
                return True
        return False

    def __repr__(self) -> str:
        return (
            f"FaultInjector({len(self.plan)} faults, seed {self.plan.seed}, "
            f"armed={self._armed})"
        )
