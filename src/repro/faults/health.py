"""Per-server health tracking with a circuit breaker.

The commitment walk (§4 step 5) consults a :class:`CircuitBreaker`
before attempting an offer: servers that failed repeatedly are
*quarantined* for a recovery window, so their variants are skipped and
the walk degrades gracefully to alternate-server offers instead of
burning its retry budget against a dead machine.  After the window one
probe is let through (half-open); success closes the breaker, failure
re-opens it for another window.

The breaker also powers the retry-after hint on ``FAILEDTRYLATER``
results: the earliest quarantine expiry is when retrying the whole
negotiation first becomes worthwhile.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from ..util.errors import ValidationError
from ..util.validation import check_positive

__all__ = ["BreakerState", "ServerHealth", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"        # healthy: requests flow
    OPEN = "open"            # quarantined: requests skipped
    HALF_OPEN = "half-open"  # recovery window elapsed: one probe allowed


@dataclass(slots=True)
class ServerHealth:
    """Mutable health record of one server."""

    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    successes: int = 0
    failures: int = 0
    opened_at: "float | None" = None


class CircuitBreaker:
    """Failure counting + quarantine over a server fleet.

    ``failure_threshold`` consecutive failures open the breaker for
    ``recovery_time_s``.  All transitions are driven by the caller's
    simulated ``now`` — the breaker holds no clock of its own.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        recovery_time_s: float = 30.0,
    ) -> None:
        if failure_threshold < 1:
            raise ValidationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.recovery_time_s = check_positive(
            recovery_time_s, "recovery_time_s"
        )
        self._health: dict[str, ServerHealth] = {}
        self.opens = 0  # lifetime count of CLOSED/HALF_OPEN -> OPEN trips
        # Optional observer called as (server_id, old, new, now) on every
        # state change — the seam repro.telemetry.observe_breaker uses.
        self.on_transition: (
            "Callable[[str, BreakerState, BreakerState, float], None] | None"
        ) = None

    def _notify(
        self,
        server_id: str,
        old: BreakerState,
        new: BreakerState,
        now: float,
    ) -> None:
        if self.on_transition is not None and old is not new:
            self.on_transition(server_id, old, new, now)

    def _record(self, server_id: str) -> ServerHealth:
        return self._health.setdefault(server_id, ServerHealth())

    def health(self, server_id: str) -> ServerHealth:
        return self._record(server_id)

    def state(self, server_id: str, now: float) -> BreakerState:
        record = self._record(server_id)
        self._maybe_half_open(server_id, record, now)
        return record.state

    # -- outcome recording ---------------------------------------------------------

    def record_success(self, server_id: str, now: float) -> None:
        record = self._record(server_id)
        old = record.state
        record.successes += 1
        record.consecutive_failures = 0
        record.state = BreakerState.CLOSED
        record.opened_at = None
        self._notify(server_id, old, BreakerState.CLOSED, now)

    def record_failure(self, server_id: str, now: float) -> None:
        record = self._record(server_id)
        record.failures += 1
        record.consecutive_failures += 1
        if record.state is BreakerState.HALF_OPEN:
            # The probe failed: back to quarantine for a fresh window.
            self._trip(server_id, record, now)
        elif (
            record.state is BreakerState.CLOSED
            and record.consecutive_failures >= self.failure_threshold
        ):
            self._trip(server_id, record, now)

    def _trip(self, server_id: str, record: ServerHealth, now: float) -> None:
        old = record.state
        record.state = BreakerState.OPEN
        record.opened_at = now
        self.opens += 1
        self._notify(server_id, old, BreakerState.OPEN, now)

    # -- admission gating ----------------------------------------------------------

    def _maybe_half_open(
        self, server_id: str, record: ServerHealth, now: float
    ) -> None:
        if (
            record.state is BreakerState.OPEN
            and record.opened_at is not None
            and now >= record.opened_at + self.recovery_time_s - 1e-12
        ):
            record.state = BreakerState.HALF_OPEN
            self._notify(
                server_id, BreakerState.OPEN, BreakerState.HALF_OPEN, now
            )

    def allow(self, server_id: str, now: float) -> bool:
        """May a request be sent to this server right now?  An OPEN
        breaker whose recovery window elapsed transitions to HALF_OPEN
        and admits the probe."""
        record = self._record(server_id)
        self._maybe_half_open(server_id, record, now)
        return record.state is not BreakerState.OPEN

    def quarantined(self, now: float) -> frozenset[str]:
        """Servers currently skipped (read-only: no transitions)."""
        out = []
        for server_id, record in self._health.items():
            if record.state is not BreakerState.OPEN:
                continue
            if (
                record.opened_at is not None
                and now >= record.opened_at + self.recovery_time_s - 1e-12
            ):
                continue  # due for a half-open probe: not quarantined
            out.append(server_id)
        return frozenset(out)

    def earliest_reopen(self, now: float) -> "float | None":
        """The soonest time a quarantined server becomes probeable, or
        ``None`` when nothing is quarantined."""
        deadlines = [
            record.opened_at + self.recovery_time_s
            for record in self._health.values()
            if record.state is BreakerState.OPEN and record.opened_at is not None
        ]
        future = [d for d in deadlines if d > now]
        return min(future) if future else None

    def reset(self) -> None:
        self._health.clear()

    def __repr__(self) -> str:
        open_count = sum(
            1 for r in self._health.values() if r.state is BreakerState.OPEN
        )
        return (
            f"CircuitBreaker({len(self._health)} tracked, {open_count} open, "
            f"threshold={self.failure_threshold}, "
            f"recovery={self.recovery_time_s:g}s)"
        )
