"""Small validation helpers shared by the value objects.

Each helper raises :class:`~repro.util.errors.ValidationError` with a
message naming the offending field, so constructor call sites stay terse.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional, Sequence, TypeVar

from .errors import ValidationError

__all__ = [
    "require",
    "check_range",
    "check_at_least",
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_name",
    "check_choice",
    "check_non_empty",
]

T = TypeVar("T")


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


# These helpers sit on the admission/reservation hot path (every link
# reserve and flow-spec construction runs through them), so the finite
# check is inlined — one ``math.isfinite`` call, no helper indirection.
_isfinite = math.isfinite


def _finite(value: float, what: str) -> float:
    value = float(value)
    if not _isfinite(value):
        raise ValidationError(f"{what} must be finite, got {value!r}")
    return value


def check_range(
    value: float,
    lo: float,
    hi: float,
    what: str,
    *,
    integer: bool = False,
) -> float:
    """Check ``lo <= value <= hi``; optionally require an integral value."""
    value = float(value)
    if not _isfinite(value):
        raise ValidationError(f"{what} must be finite, got {value!r}")
    if integer and value != int(value):
        raise ValidationError(f"{what} must be an integer, got {value!r}")
    if not (lo <= value <= hi):
        raise ValidationError(f"{what} must be in [{lo}, {hi}], got {value!r}")
    return int(value) if integer else value


def check_at_least(
    value: float, lo: float, what: str, *, integer: bool = False
) -> float:
    """Check ``value >= lo`` (finite; optionally integral).

    The dedicated lower-bound check exists because a bare ``value < lo``
    comparison silently passes NaN — ``NaN < lo`` is False — which is
    exactly the hole it replaces.
    """
    value = float(value)
    if not _isfinite(value):
        raise ValidationError(f"{what} must be finite, got {value!r}")
    if integer and value != int(value):
        raise ValidationError(f"{what} must be an integer, got {value!r}")
    if value < lo:
        raise ValidationError(f"{what} must be >= {lo:g}, got {value!r}")
    return int(value) if integer else value


def check_positive(value: float, what: str) -> float:
    value = float(value)
    if not _isfinite(value):
        raise ValidationError(f"{what} must be finite, got {value!r}")
    if value <= 0:
        raise ValidationError(f"{what} must be positive, got {value!r}")
    return value


def check_non_negative(value: float, what: str) -> float:
    value = float(value)
    if not _isfinite(value):
        raise ValidationError(f"{what} must be finite, got {value!r}")
    if value < 0:
        raise ValidationError(f"{what} must be non-negative, got {value!r}")
    return value


def check_fraction(value: float, what: str) -> float:
    """Check that ``value`` lies in the closed unit interval."""
    return check_range(value, 0.0, 1.0, what)


def check_name(value: Any, what: str) -> str:
    """Check a non-empty identifier string without control characters."""
    if not isinstance(value, str) or not value.strip():
        raise ValidationError(f"{what} must be a non-empty string, got {value!r}")
    if any(ord(ch) < 32 for ch in value):
        raise ValidationError(f"{what} contains control characters: {value!r}")
    return value


def check_choice(value: T, choices: Iterable[T], what: str) -> T:
    options = tuple(choices)
    if value not in options:
        raise ValidationError(f"{what} must be one of {options!r}, got {value!r}")
    return value


def check_non_empty(seq: Sequence[T], what: str) -> Sequence[T]:
    if len(seq) == 0:
        raise ValidationError(f"{what} must not be empty")
    return seq
