"""Exception hierarchy for the :mod:`repro` library.

Every error raised by library code derives from :class:`ReproError`, so
applications embedding the negotiation procedure can catch one base class
at their outermost boundary.  Sub-hierarchies mirror the package layout:
document/metadata errors, client-capability errors, resource errors
(network + server), and negotiation-protocol errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "UnitError",
    "DocumentError",
    "UnknownMediumError",
    "VariantError",
    "SynchronizationError",
    "MetadataError",
    "DuplicateKeyError",
    "NotFoundError",
    "PersistenceError",
    "ClientError",
    "DecoderError",
    "NetworkError",
    "NoRouteError",
    "ReservationError",
    "CapacityError",
    "ServerError",
    "AdmissionError",
    "ServerCrashedError",
    "FaultError",
    "TransientFaultError",
    "FaultTimeoutError",
    "LeaseError",
    "ManagerCrashError",
    "JournalError",
    "RecoveryError",
    "NegotiationError",
    "ProfileError",
    "OfferError",
    "ConfirmationTimeout",
    "AdaptationError",
    "SessionError",
    "SimulationError",
    "TelemetryError",
]


class ReproError(Exception):
    """Base class of all errors raised by the library."""


class ValidationError(ReproError, ValueError):
    """A value object was constructed with out-of-range or inconsistent data."""


class UnitError(ValidationError):
    """A quantity carried the wrong unit or an impossible magnitude."""


# --------------------------------------------------------------------------
# documents / metadata
# --------------------------------------------------------------------------

class DocumentError(ReproError):
    """Problems in the multimedia document model."""


class UnknownMediumError(DocumentError):
    """A medium name outside the taxonomy of Section 2 was used."""


class VariantError(DocumentError):
    """A variant was malformed or incompatible with its monomedia."""


class SynchronizationError(DocumentError):
    """Temporal/spatial synchronization constraints are inconsistent."""


class MetadataError(ReproError):
    """Problems in the metadata database substrate."""


class DuplicateKeyError(MetadataError):
    """An insert collided with an existing primary key."""


class NotFoundError(MetadataError, KeyError):
    """A lookup by key found nothing."""

    def __str__(self) -> str:  # KeyError quotes its message; keep it readable
        return Exception.__str__(self)


class PersistenceError(MetadataError):
    """Serialization or deserialization of the store failed."""


# --------------------------------------------------------------------------
# client
# --------------------------------------------------------------------------

class ClientError(ReproError):
    """Problems describing or querying a client machine."""


class DecoderError(ClientError):
    """A decoder description was malformed or a codec is unknown."""


# --------------------------------------------------------------------------
# network / server resources
# --------------------------------------------------------------------------

class NetworkError(ReproError):
    """Problems in the network substrate."""


class NoRouteError(NetworkError):
    """No path exists between the requested endpoints."""


class ReservationError(ReproError):
    """A resource reservation could not be created, found, or released."""


class CapacityError(ReservationError):
    """The requested reservation exceeds remaining capacity."""


class ServerError(ReproError):
    """Problems in the continuous-media file server substrate."""


class AdmissionError(ServerError):
    """The admission controller rejected a stream."""


class ServerCrashedError(ServerError):
    """The server machine is down; no request can be served until it
    restarts.  Retryable: the fleet-level retry policy may ride over a
    short outage, and the circuit breaker quarantines repeat offenders."""


# --------------------------------------------------------------------------
# fault injection / resilience
# --------------------------------------------------------------------------

class FaultError(ReproError):
    """Base class of errors raised by injected faults (chaos testing)."""


class TransientFaultError(FaultError):
    """An injected transient refusal: the operation would succeed if
    simply retried.  The canonical retryable error."""


class FaultTimeoutError(FaultError):
    """An injected slow call exceeded the per-attempt timeout budget.
    Retryable (the next attempt may be served promptly)."""


class LeaseError(ReproError):
    """A reservation lease was missing, duplicated, or already expired."""


class ManagerCrashError(FaultError):
    """An injected QoS-manager crash: the manager process dies mid-flight
    and every in-memory negotiation is lost.  NOT retryable from inside
    the manager — recovery happens by replaying the reservation journal
    after restart (see :mod:`repro.journal`)."""


# --------------------------------------------------------------------------
# reservation journal / crash recovery
# --------------------------------------------------------------------------

class JournalError(ReproError):
    """The write-ahead reservation journal is corrupt or was misused
    (non-monotonic sequence numbers, checksum mismatch away from the
    tail, appends after close)."""


class RecoveryError(ReproError):
    """The crash-recovery replay could not reconcile the journal with
    the live resource ledgers."""


# --------------------------------------------------------------------------
# negotiation core
# --------------------------------------------------------------------------

class NegotiationError(ReproError):
    """Protocol-level failures of the negotiation procedure itself.

    Note that ordinary negative outcomes (FAILEDTRYLATER etc.) are *not*
    exceptions — they are returned in the negotiation result, exactly as
    Section 4 of the paper returns a negotiation status to the user.
    """


class ProfileError(NegotiationError):
    """A user/MM/importance profile was malformed."""


class OfferError(NegotiationError):
    """A system/user offer was malformed or used inconsistently."""


class ConfirmationTimeout(NegotiationError):
    """The user failed to confirm an offer within ``choicePeriod``."""


class AdaptationError(NegotiationError):
    """The adaptation procedure could not find or switch to an alternate offer."""


# --------------------------------------------------------------------------
# session / simulation
# --------------------------------------------------------------------------

class SessionError(ReproError):
    """Problems in the playout session engine."""


class SimulationError(ReproError):
    """Problems in the workload/scenario simulation layer."""


class TelemetryError(ReproError):
    """The observability layer was misused (unregistered metric name,
    wrong instrument kind, malformed span record).  Telemetry *reading*
    is always safe; only mis-instrumentation raises."""
