"""Shared utilities: errors, units, RNG streams, tables, validation."""

from .errors import (
    AdaptationError,
    AdmissionError,
    CapacityError,
    ClientError,
    ConfirmationTimeout,
    DecoderError,
    DocumentError,
    DuplicateKeyError,
    MetadataError,
    NegotiationError,
    NetworkError,
    NoRouteError,
    NotFoundError,
    OfferError,
    PersistenceError,
    ProfileError,
    ReproError,
    ReservationError,
    ServerError,
    SessionError,
    SimulationError,
    SynchronizationError,
    UnitError,
    UnknownMediumError,
    ValidationError,
    VariantError,
)
from .rng import RngLike, derive_rng, make_rng, spawn_rngs
from .tables import render_box, render_kv, render_table
from .units import (
    Money,
    bps,
    bits,
    bytes_,
    dollars,
    format_bitrate,
    format_duration,
    format_size,
    gbps,
    kbps,
    kilobits,
    mbps,
    megabits,
    minutes,
    ms,
    seconds,
)
from .validation import (
    check_choice,
    check_fraction,
    check_name,
    check_non_empty,
    check_non_negative,
    check_positive,
    check_range,
    require,
)

__all__ = [name for name in dir() if not name.startswith("_")]
