"""ASCII table rendering.

The benchmark harness prints the paper's tables (offer classifications,
cost decompositions, blocking-probability sweeps) as plain-text tables;
the text-mode QoS GUI reuses the same renderer for its windows.  Only the
standard library is used so table output is available everywhere.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from .errors import ValidationError

__all__ = ["render_table", "render_kv", "render_box"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        # Trim trailing float noise but keep small magnitudes readable.
        text = f"{value:.4f}".rstrip("0").rstrip(".")
        return text if text not in ("", "-") else "0"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
    align: Sequence[str] | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a boxed ASCII table.

    ``align`` holds one of ``"l"``/``"r"`` per column; numeric-looking
    columns default to right alignment.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    headers = [str(h) for h in headers]
    ncols = len(headers)
    for row in str_rows:
        if len(row) != ncols:
            raise ValidationError(
                f"row has {len(row)} cells, expected {ncols}: {row!r}"
            )

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    if align is None:
        align = []
        for i in range(ncols):
            column = [row[i] for row in str_rows]
            numeric = column and all(
                c.replace(".", "", 1).replace("-", "", 1).replace("%", "", 1).isdigit()
                or c in ("", "-")
                for c in column
            )
            align.append("r" if numeric else "l")

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for cell, width, a in zip(cells, widths, align):
            parts.append(cell.rjust(width) if a == "r" else cell.ljust(width))
        return "| " + " | ".join(parts) + " |"

    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(headers))
    lines.append(sep)
    for row in str_rows:
        lines.append(fmt_row(row))
    lines.append(sep)
    return "\n".join(lines)


def render_kv(pairs: Iterable[tuple[str, Any]], *, title: str | None = None) -> str:
    """Render key/value pairs as an aligned two-column block."""
    items = [(str(k), _cell(v)) for k, v in pairs]
    if not items:
        return title or ""
    width = max(len(k) for k, _ in items)
    lines = [title] if title else []
    for key, value in items:
        lines.append(f"  {key.ljust(width)} : {value}")
    return "\n".join(lines)


def render_box(lines: Iterable[str], *, title: str | None = None, width: int | None = None) -> str:
    """Draw a bordered box around ``lines`` — the building block of the
    text-mode QoS GUI windows (Figures 3–7 of the paper)."""
    body = [str(line) for line in lines]
    inner = max(
        [len(line) for line in body] + [len(title or "") + 2, width or 0]
    )
    top = "+-" + (f" {title} " if title else "").center(inner, "-") + "-+"
    out = [top]
    for line in body:
        out.append(f"| {line.ljust(inner)} |")
    out.append("+-" + "-" * inner + "-+")
    return "\n".join(out)
