"""Simulation clock.

All time-dependent behaviour (confirmation deadlines, playout progress,
violation timing) reads an explicit clock object instead of wall time,
so tests and experiments are deterministic and can jump time freely.
"""

from __future__ import annotations

from ..util.errors import ValidationError

__all__ = ["ManualClock"]


class ManualClock:
    """A clock that only moves when told to."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta_s: float) -> float:
        if delta_s < 0:
            raise ValidationError(f"cannot advance by {delta_s}")
        self._now += float(delta_s)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        if timestamp < self._now:
            raise ValidationError(
                f"cannot move clock backwards ({timestamp} < {self._now})"
            )
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:
        return f"ManualClock(t={self._now:g}s)"
