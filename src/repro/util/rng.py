"""Seeded random-number helpers.

All stochastic components of the simulation layer (arrival processes,
congestion injection, workload mixes) take an explicit generator, never a
module-level one, so every experiment in ``benchmarks/`` is reproducible
from its recorded seed.  These helpers centralise generator construction
and deterministic sub-stream derivation.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .errors import ValidationError

__all__ = ["RngLike", "make_rng", "derive_rng", "spawn_rngs"]

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    ``seed`` may be ``None`` (OS entropy — only for interactive use), an
    integer, or an existing generator (returned unchanged so call sites
    can accept either form).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, *keys: Union[int, str]) -> np.random.Generator:
    """Derive a named, independent sub-stream of ``rng``.

    Deterministic: the same parent state and keys always yield the same
    child stream.  Used to give each simulated component (each server,
    each link, the arrival process, ...) its own generator so adding a
    component never perturbs the draws of another.
    """
    material = []
    for key in keys:
        if isinstance(key, str):
            material.extend(key.encode("utf-8"))
        else:
            material.append(int(key) & 0xFFFFFFFF)
    base = rng.bit_generator.seed_seq  # type: ignore[attr-defined]
    child = np.random.SeedSequence(
        entropy=getattr(base, "entropy", 0), spawn_key=tuple(material)
    )
    return np.random.default_rng(child)


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent generators from one seed."""
    if count < 0:
        raise ValidationError(f"count must be non-negative, got {count}")
    seq = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
