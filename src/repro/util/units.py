"""Unit-safe helpers for the quantities the paper manipulates.

The negotiation procedure mixes four kinds of quantities:

* **bit rates** (Section 6: ``maxBitRate``, ``avgBitRate``) — stored as
  bits per second (``float``);
* **money** (Section 7: cost tables, ``CostDoc``) — stored as dollars;
* **time** (Section 3: time profile; Section 8: ``choicePeriod``) —
  stored as seconds;
* **data sizes** (block/frame/sample lengths) — stored as bits.

Rather than a heavyweight unit system we provide conversion constants,
constructor helpers that validate sign/finiteness, and a tiny
:class:`Money` value type with exact cent arithmetic (floating dollars
would accumulate rounding error across the per-monomedia cost sums of
Eq. 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

from .errors import UnitError

__all__ = [
    "BITS_PER_BYTE",
    "KILO",
    "MEGA",
    "GIGA",
    "bits",
    "kilobits",
    "megabits",
    "bytes_",
    "bps",
    "kbps",
    "mbps",
    "gbps",
    "seconds",
    "minutes",
    "ms",
    "Money",
    "dollars",
    "format_bitrate",
    "format_size",
    "format_duration",
]

BITS_PER_BYTE = 8
KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000


def _positive_finite(value: float, what: str, *, allow_zero: bool = True) -> float:
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise UnitError(f"{what} must be finite, got {value!r}")
    if value < 0 or (value == 0 and not allow_zero):
        bound = "non-negative" if allow_zero else "positive"
        raise UnitError(f"{what} must be {bound}, got {value!r}")
    return value


# -- data sizes (canonical unit: bits) --------------------------------------

def bits(value: float) -> float:
    """Validate a size expressed in bits."""
    return _positive_finite(value, "size in bits")


def kilobits(value: float) -> float:
    """Convert kilobits to bits."""
    return bits(value) * KILO if value >= 0 else bits(value)


def megabits(value: float) -> float:
    """Convert megabits to bits."""
    return bits(value) * MEGA if value >= 0 else bits(value)


def bytes_(value: float) -> float:
    """Convert bytes to bits."""
    return bits(value) * BITS_PER_BYTE if value >= 0 else bits(value)


# -- bit rates (canonical unit: bits per second) -----------------------------

def bps(value: float) -> float:
    """Validate a rate expressed in bits per second."""
    return _positive_finite(value, "bit rate")


def kbps(value: float) -> float:
    """Convert kilobits per second to bits per second."""
    return bps(value) * KILO


def mbps(value: float) -> float:
    """Convert megabits per second to bits per second."""
    return bps(value) * MEGA


def gbps(value: float) -> float:
    """Convert gigabits per second to bits per second."""
    return bps(value) * GIGA


# -- time (canonical unit: seconds) ------------------------------------------

def seconds(value: float) -> float:
    """Validate a duration expressed in seconds."""
    return _positive_finite(value, "duration")


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return seconds(value) * 60.0


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return seconds(value) / 1000.0


# -- money --------------------------------------------------------------------

@dataclass(frozen=True, slots=True, order=True)
class Money:
    """Exact dollar amount held as integer cents.

    Supports the arithmetic the cost model of Section 7 needs: addition,
    scaling by a duration or a rate, and comparison against user cost
    limits.  Negative amounts are permitted (they appear transiently when
    computing cost *differences* between offers) but the public cost
    tables never produce them.
    """

    cents: int

    @classmethod
    def of(cls, amount: Union[int, float, "Money"]) -> "Money":
        """Build from a dollar amount, rounding to the nearest cent."""
        if isinstance(amount, Money):
            return amount
        value = float(amount)
        if math.isnan(value) or math.isinf(value):
            raise UnitError(f"money amount must be finite, got {value!r}")
        return cls(round(value * 100))

    @classmethod
    def zero(cls) -> "Money":
        return cls(0)

    @property
    def amount(self) -> float:
        """The amount in dollars as a float (for display / weighting)."""
        return self.cents / 100.0

    def __add__(self, other: "Money") -> "Money":
        if not isinstance(other, Money):
            return NotImplemented
        return Money(self.cents + other.cents)

    def __sub__(self, other: "Money") -> "Money":
        if not isinstance(other, Money):
            return NotImplemented
        return Money(self.cents - other.cents)

    def __mul__(self, factor: float) -> "Money":
        if isinstance(factor, Money):
            raise UnitError("cannot multiply money by money")
        return Money(round(self.cents * float(factor)))

    __rmul__ = __mul__

    def __neg__(self) -> "Money":
        return Money(-self.cents)

    def __bool__(self) -> bool:
        return self.cents != 0

    def __str__(self) -> str:
        sign = "-" if self.cents < 0 else ""
        whole, part = divmod(abs(self.cents), 100)
        return f"{sign}${whole}.{part:02d}"


def dollars(amount: Union[int, float, Money]) -> Money:
    """Shorthand constructor matching the paper's ``$`` notation."""
    return Money.of(amount)


# -- human-readable formatting -------------------------------------------------

def format_bitrate(rate_bps: float) -> str:
    """Render a bit rate with an adaptive unit (bps / kbps / Mbps / Gbps)."""
    rate_bps = float(rate_bps)
    for bound, suffix in ((GIGA, "Gbps"), (MEGA, "Mbps"), (KILO, "kbps")):
        if abs(rate_bps) >= bound:
            return f"{rate_bps / bound:.2f} {suffix}"
    return f"{rate_bps:.0f} bps"


def format_size(size_bits: float) -> str:
    """Render a data size with an adaptive unit (bits / kbit / Mbit / Gbit)."""
    size_bits = float(size_bits)
    for bound, suffix in ((GIGA, "Gbit"), (MEGA, "Mbit"), (KILO, "kbit")):
        if abs(size_bits) >= bound:
            return f"{size_bits / bound:.2f} {suffix}"
    return f"{size_bits:.0f} bit"


def format_duration(duration_s: float) -> str:
    """Render a duration as ``h:mm:ss`` or ``m:ss`` or ``s``."""
    duration_s = float(duration_s)
    total = int(round(duration_s))
    hours, rest = divmod(total, 3600)
    mins, secs = divmod(rest, 60)
    if hours:
        return f"{hours}:{mins:02d}:{secs:02d}"
    if mins:
        return f"{mins}:{secs:02d}"
    return f"{duration_s:.3g} s"
