"""Client machine substrate: display/audio capabilities and decoders."""

from .decoder import Decoder, DecoderBank, ScalableDecoder, standard_decoders
from .machine import ClientMachine, LocalCheckResult

__all__ = [
    "Decoder",
    "DecoderBank",
    "ScalableDecoder",
    "standard_decoders",
    "ClientMachine",
    "LocalCheckResult",
]
