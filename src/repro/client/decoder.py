"""Decoder descriptions for client machines (paper §4 step 2).

Step 2 of the negotiation, *static compatibility checking*, matches the
codec of each variant against "the decoder(s) supported by the client
machine" — e.g. "if the client machine supports only MPEG decoder and
the video variant is coded as MJPEG file then variant1 will simply not
be considered".

A :class:`Decoder` accepts one codec, bounded by capability limits
(maximum frame rate / resolution it can sustain, colour it can emit).
The INRS *scalable* decoder [Dub 95] is modelled by
:class:`ScalableDecoder`: for scalable codecs it can decode any stream
whose rate/resolution fall inside its window, down-scaling the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..documents.media import (
    Codec,
    ColorMode,
    HDTV_FRAME_RATE,
    HDTV_RESOLUTION,
    Medium,
)
from ..documents.monomedia import Variant
from ..documents.quality import AudioQoS, GraphicQoS, ImageQoS, VideoQoS
from ..util.errors import DecoderError

__all__ = ["Decoder", "ScalableDecoder", "DecoderBank", "standard_decoders"]


@dataclass(frozen=True, slots=True)
class Decoder:
    """A fixed-function decoder for one codec."""

    codec: Codec
    max_frame_rate: int = HDTV_FRAME_RATE
    max_resolution: int = HDTV_RESOLUTION
    max_color: ColorMode = ColorMode.SUPER_COLOR

    def __post_init__(self) -> None:
        if not isinstance(self.codec, Codec):
            raise DecoderError(f"codec must be a Codec, got {self.codec!r}")
        object.__setattr__(self, "max_color", ColorMode.parse(self.max_color))

    @property
    def medium(self) -> Medium:
        return self.codec.medium

    def can_decode(self, variant: Variant) -> bool:
        """True iff this decoder can present ``variant`` at its stored
        quality."""
        if variant.codec != self.codec:
            return False
        qos = variant.qos
        if isinstance(qos, VideoQoS):
            return (
                qos.frame_rate <= self.max_frame_rate
                and qos.resolution <= self.max_resolution
                and qos.color <= self.max_color
            )
        if isinstance(qos, (ImageQoS, GraphicQoS)):
            return (
                qos.resolution <= self.max_resolution
                and qos.color <= self.max_color
            )
        if isinstance(qos, AudioQoS):
            return True  # audio grades carry their own playable rates
        return True  # text has no decoder limits

    def __str__(self) -> str:
        return f"Decoder({self.codec})"


@dataclass(frozen=True, slots=True)
class ScalableDecoder(Decoder):
    """A decoder for a scalable codec that can down-convert streams.

    It decodes any variant of its codec whose parameters do not exceed
    its own limits, like :class:`Decoder`; additionally, for codecs
    flagged ``scalable`` it accepts streams *above* its limits and
    presents them down-scaled — the variant remains feasible, the
    effective QoS is clamped (``effective_qos``).
    """

    def can_decode(self, variant: Variant) -> bool:
        if variant.codec != self.codec:
            return False
        # Explicit base call: @dataclass(slots=True) rebuilds the class,
        # which breaks the zero-argument super() closure.
        if Decoder.can_decode(self, variant):
            return True
        return bool(self.codec.scalable)

    def effective_qos(self, variant: Variant):
        """The QoS actually presented after any down-scaling."""
        qos = variant.qos
        if not isinstance(qos, VideoQoS):
            return qos
        return VideoQoS(
            color=min(qos.color, self.max_color),
            frame_rate=min(qos.frame_rate, self.max_frame_rate),
            resolution=min(qos.resolution, self.max_resolution),
        )


class DecoderBank:
    """The set of decoders installed on one client machine."""

    def __init__(self, decoders: "tuple[Decoder, ...] | list[Decoder]" = ()) -> None:
        self._decoders: list[Decoder] = []
        for decoder in decoders:
            self.install(decoder)

    def install(self, decoder: Decoder) -> None:
        if not isinstance(decoder, Decoder):
            raise DecoderError(f"not a Decoder: {decoder!r}")
        self._decoders.append(decoder)

    def __len__(self) -> int:
        return len(self._decoders)

    def __iter__(self):
        return iter(self._decoders)

    def codecs(self) -> frozenset[Codec]:
        return frozenset(d.codec for d in self._decoders)

    def decoder_for(self, variant: Variant) -> "Decoder | None":
        """The first installed decoder able to present ``variant`` —
        the step-2 feasibility test."""
        for decoder in self._decoders:
            if decoder.can_decode(variant):
                return decoder
        return None

    def can_decode(self, variant: Variant) -> bool:
        return self.decoder_for(variant) is not None


def standard_decoders() -> DecoderBank:
    """The decoder complement of the prototype's client workstation:
    MPEG-1 video and the INRS scalable MPEG-2 decoder, MPEG audio and
    PCM, JPEG/GIF stills, text and graphics renderers."""
    from ..documents.media import Codecs

    return DecoderBank(
        (
            Decoder(Codecs.MPEG1),
            ScalableDecoder(Codecs.MPEG2),
            Decoder(Codecs.MPEG_AUDIO),
            Decoder(Codecs.PCM),
            Decoder(Codecs.JPEG),
            Decoder(Codecs.GIF),
            Decoder(Codecs.ASCII),
            Decoder(Codecs.HTML),
            Decoder(Codecs.CGM),
        )
    )
