"""Client machine model (paper §4 steps 1–2).

Step 1, *static local negotiation*, checks "the client machine
characteristics, such as the screen size and the screen color" against
the requested QoS: "the user asks for a color video, while the client
machine screen is black&white" yields FAILEDWITHLOCALOFFER.  The machine
also bounds the deliverable bandwidth (its network interface) and hosts
the decoder bank used by step 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..documents.media import ColorMode
from ..documents.monomedia import Variant
from ..documents.quality import (
    AudioQoS,
    GraphicQoS,
    ImageQoS,
    MediaQoS,
    TextQoS,
    VideoQoS,
)
from ..util.errors import ClientError
from ..util.units import mbps
from ..util.validation import check_name, check_positive
from .decoder import Decoder, DecoderBank, standard_decoders

__all__ = ["ClientMachine", "LocalCheckResult"]


@dataclass(frozen=True, slots=True)
class LocalCheckResult:
    """Outcome of checking one QoS point against the machine.

    ``supported`` is the step-1 verdict; ``local_best`` is the closest
    QoS the machine *can* present, which becomes the local offer
    returned with FAILEDWITHLOCALOFFER; ``violations`` names the
    offending parameters (the GUI colours those red, §8).
    """

    supported: bool
    local_best: MediaQoS
    violations: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class ClientMachine:
    """One client workstation of the news-on-demand service."""

    client_id: str
    screen_width: int = 1280
    screen_height: int = 1024
    screen_color: ColorMode = ColorMode.COLOR
    max_frame_rate: int = 30
    audio_output: bool = True
    access_point: str = "client-net"
    interface_bps: float = 10_000_000.0  # 10 Mbps Ethernet of the era
    decoders: DecoderBank = field(default_factory=standard_decoders)

    def __post_init__(self) -> None:
        check_name(self.client_id, "client_id")
        check_positive(self.screen_width, "screen_width")
        check_positive(self.screen_height, "screen_height")
        check_positive(self.max_frame_rate, "max_frame_rate")
        check_positive(self.interface_bps, "interface_bps")
        object.__setattr__(self, "screen_color", ColorMode.parse(self.screen_color))
        if not isinstance(self.decoders, DecoderBank):
            raise ClientError("decoders must be a DecoderBank")

    # -- step 1: static local negotiation ------------------------------------

    def check_local(self, requirement: MediaQoS) -> LocalCheckResult:
        """Check one requested QoS point against machine characteristics
        and derive the best locally supportable QoS."""
        if isinstance(requirement, VideoQoS):
            violations = []
            if requirement.color > self.screen_color:
                violations.append("color")
            if requirement.frame_rate > self.max_frame_rate:
                violations.append("frame_rate")
            if requirement.resolution > self.screen_width:
                violations.append("resolution")
            local_best = VideoQoS(
                color=min(requirement.color, self.screen_color),
                frame_rate=min(requirement.frame_rate, self.max_frame_rate),
                resolution=min(requirement.resolution, self.screen_width),
            )
            return LocalCheckResult(
                supported=not violations,
                local_best=local_best,
                violations=tuple(violations),
            )
        if isinstance(requirement, (ImageQoS, GraphicQoS)):
            violations = []
            if requirement.color > self.screen_color:
                violations.append("color")
            if requirement.resolution > self.screen_width:
                violations.append("resolution")
            local_best = type(requirement)(
                color=min(requirement.color, self.screen_color),
                resolution=min(requirement.resolution, self.screen_width),
            )
            return LocalCheckResult(
                supported=not violations,
                local_best=local_best,
                violations=tuple(violations),
            )
        if isinstance(requirement, AudioQoS):
            if not self.audio_output:
                return LocalCheckResult(
                    supported=False,
                    local_best=requirement,
                    violations=("audio_output",),
                )
            return LocalCheckResult(supported=True, local_best=requirement)
        if isinstance(requirement, TextQoS):
            return LocalCheckResult(supported=True, local_best=requirement)
        raise ClientError(f"unsupported QoS point {requirement!r}")

    def fits_layout(self, width: int, height: int) -> bool:
        """Whether a document's spatial bounding box fits the screen."""
        return width <= self.screen_width and height <= self.screen_height

    # -- step 2: static compatibility checking ----------------------------------

    def can_decode(self, variant: Variant) -> bool:
        return self.decoders.can_decode(variant)

    def decoder_for(self, variant: Variant) -> "Decoder | None":
        return self.decoders.decoder_for(variant)

    def presented_qos(self, variant: Variant) -> MediaQoS:
        """The QoS actually perceived at this machine for ``variant``:
        the decoder's effective output further clamped by the display.

        This is the QoS a system offer is judged on in §5 — a
        super-colour stream on a grey screen is a grey offer.
        """
        decoder = self.decoder_for(variant)
        if decoder is None:
            raise ClientError(
                f"{self.client_id} cannot decode {variant.variant_id}"
            )
        qos = variant.qos
        if hasattr(decoder, "effective_qos"):
            qos = decoder.effective_qos(variant)  # type: ignore[attr-defined]
        if isinstance(qos, VideoQoS):
            return VideoQoS(
                color=min(qos.color, self.screen_color),
                frame_rate=min(qos.frame_rate, self.max_frame_rate),
                resolution=min(qos.resolution, self.screen_width),
            )
        if isinstance(qos, (ImageQoS, GraphicQoS)):
            return type(qos)(
                color=min(qos.color, self.screen_color),
                resolution=min(qos.resolution, self.screen_width),
            )
        return qos

    def __str__(self) -> str:
        return (
            f"{self.client_id}({self.screen_width}x{self.screen_height} "
            f"{self.screen_color}, {len(self.decoders)} decoders)"
        )
