"""The paper's worked examples as data (§5.1–§5.2.2).

This module encodes, verbatim, the offers, profiles and importance
settings of the paper's classification examples, together with the
results the paper prints.  The E1–E4 benchmarks and the regression tests
both read from here, so the reproduction target lives in exactly one
place.

§5.2.1 example:
  user asks (color, TV resolution, 25 frames/s), desired = worst,
  maximum cost 4 $; the QoS manager produces:

  - offer1: (black&white, TV resolution, 25 frames/s) at 2.5 $
  - offer2: (color, TV resolution, 15 frames/s) at 4 $
  - offer3: (grey, TV resolution, 25 frames/s) at 3 $
  - offer4: (color, TV resolution, 25 frames/s) at 5 $

  SNS: offer1 CONSTRAINT, offer2 CONSTRAINT, offer3 CONSTRAINT,
  offer4 ACCEPTABLE.

§5.2.2 settings (importance factors):
  (1) color 9, grey 6, b&w 2, TV res 9, 25 f/s 9, 15 f/s 5, cost 4
      → OIF: offer1 10, offer2 7, offer3 12, offer4 7
      → classification: offer4, offer3, offer1, offer2
  (2) same but cost importance 0
      → OIF: offer1 20, offer2 23, offer3 24, offer4 27
      → classification: offer4, offer3, offer2, offer1
  (3) all QoS importances 0, cost importance 4
      → OIF: offer1 −10, offer2 −16, offer3 −12, offer4 −20
      → classification printed by the paper: offer1, offer3, offer2,
        offer4 — the *pure-OIF* order (see DESIGN.md on the SNS-primary
        discrepancy).
"""

from __future__ import annotations

from .core.importance import ImportanceProfile, ScaleImportance
from .core.offers import SystemOffer
from .core.profiles import MMProfile, UserProfile
from .documents.media import (
    AudioGrade,
    Codecs,
    ColorMode,
    FROZEN_FRAME_RATE,
    HDTV_FRAME_RATE,
    HDTV_RESOLUTION,
    Language,
    MIN_RESOLUTION,
    TV_RESOLUTION,
)
from .documents.monomedia import BlockStats, Variant
from .documents.quality import VideoQoS
from .util.units import Money, dollars

__all__ = [
    "MONOMEDIA_ID",
    "section_521_profile",
    "section_5_offers",
    "importance_setting_1",
    "importance_setting_2",
    "importance_setting_3",
    "EXPECTED_SNS",
    "EXPECTED_OIF_SETTING_1",
    "EXPECTED_OIF_SETTING_2",
    "EXPECTED_OIF_SETTING_3",
    "EXPECTED_ORDER_SETTING_1",
    "EXPECTED_ORDER_SETTING_2",
    "EXPECTED_ORDER_SETTING_3",
]

MONOMEDIA_ID = "news-article.video"

# (offer name, colour, frame rate, cost $) — resolution is TV throughout.
_OFFER_TABLE = (
    ("offer1", ColorMode.BLACK_AND_WHITE, 25, 2.5),
    ("offer2", ColorMode.COLOR, 15, 4.0),
    ("offer3", ColorMode.GREY, 25, 3.0),
    ("offer4", ColorMode.COLOR, 25, 5.0),
)

EXPECTED_SNS = {
    "offer1": "CONSTRAINT",
    "offer2": "CONSTRAINT",
    "offer3": "CONSTRAINT",
    "offer4": "ACCEPTABLE",
}

EXPECTED_OIF_SETTING_1 = {"offer1": 10.0, "offer2": 7.0, "offer3": 12.0, "offer4": 7.0}
EXPECTED_OIF_SETTING_2 = {"offer1": 20.0, "offer2": 23.0, "offer3": 24.0, "offer4": 27.0}
EXPECTED_OIF_SETTING_3 = {"offer1": -10.0, "offer2": -16.0, "offer3": -12.0, "offer4": -20.0}

EXPECTED_ORDER_SETTING_1 = ("offer4", "offer3", "offer1", "offer2")
EXPECTED_ORDER_SETTING_2 = ("offer4", "offer3", "offer2", "offer1")
EXPECTED_ORDER_SETTING_3 = ("offer1", "offer3", "offer2", "offer4")


def section_521_profile(importance: ImportanceProfile | None = None) -> UserProfile:
    """§5.2.1: '(color, TV resolution, 25 frames/s) as desired QoS and as
    the worst acceptable QoS, and 4 $ as the maximum cost to pay'."""
    requested = VideoQoS(
        color=ColorMode.COLOR, frame_rate=25, resolution=TV_RESOLUTION
    )
    return UserProfile(
        name="sec-5.2.1",
        desired=MMProfile(video=requested, cost=dollars(4)),
        worst=MMProfile(video=requested, cost=dollars(4)),
        importance=importance or importance_setting_1(),
    )


def _variant(name: str, color: ColorMode, frame_rate: int) -> Variant:
    qos = VideoQoS(color=color, frame_rate=frame_rate, resolution=TV_RESOLUTION)
    return Variant(
        variant_id=f"{MONOMEDIA_ID}.{name}",
        monomedia_id=MONOMEDIA_ID,
        codec=Codecs.MPEG1,
        qos=qos,
        size_bits=1e9,
        block_stats=BlockStats(
            max_block_bits=3e5, avg_block_bits=1e5,
            blocks_per_second=float(frame_rate),
        ),
        server_id="server-a",
        duration_s=120.0,
    )


def section_5_offers() -> list[SystemOffer]:
    """The four §5 offers with the paper's printed costs."""
    offers = []
    for name, color, frame_rate, cost in _OFFER_TABLE:
        variant = _variant(name, color, frame_rate)
        offers.append(
            SystemOffer(
                offer_id=name,
                variants={MONOMEDIA_ID: variant},
                presented={MONOMEDIA_ID: variant.qos},
                cost=dollars(cost),
            )
        )
    return offers


def _example_importance(cost_per_dollar: float, *, zero_qos: bool = False) -> ImportanceProfile:
    """Shared construction of the §5.2.2 importance settings."""
    if zero_qos:
        color = {mode: 0.0 for mode in ColorMode}
        frame_rate = ScaleImportance(
            anchors={float(FROZEN_FRAME_RATE): 0.0, float(HDTV_FRAME_RATE): 0.0}
        )
        resolution = ScaleImportance(
            anchors={float(MIN_RESOLUTION): 0.0, float(HDTV_RESOLUTION): 0.0}
        )
    else:
        color = {
            ColorMode.SUPER_COLOR: 10.0,
            ColorMode.COLOR: 9.0,
            ColorMode.GREY: 6.0,
            ColorMode.BLACK_AND_WHITE: 2.0,
        }
        frame_rate = ScaleImportance(
            anchors={
                float(FROZEN_FRAME_RATE): 1.0,
                25.0: 9.0,
                float(HDTV_FRAME_RATE): 10.0,
            },
            overrides={15.0: 5.0},  # stated directly in the example
        )
        resolution = ScaleImportance(
            anchors={
                float(MIN_RESOLUTION): 1.0,
                float(TV_RESOLUTION): 9.0,
                float(HDTV_RESOLUTION): 10.0,
            }
        )
    return ImportanceProfile(
        color=color,
        frame_rate=frame_rate,
        resolution=resolution,
        audio_grade={
            AudioGrade.CD: 0.0,
            AudioGrade.RADIO: 0.0,
            AudioGrade.TELEPHONE: 0.0,
        },
        language={Language.NONE: 0.0},
        media_weight={},
        cost_per_dollar=cost_per_dollar,
    )


def importance_setting_1() -> ImportanceProfile:
    """§5.2.2 (1): QoS importances as stated, cost importance 4."""
    return _example_importance(4.0)


def importance_setting_2() -> ImportanceProfile:
    """§5.2.2 (2): QoS importances as stated, cost importance 0."""
    return _example_importance(0.0)


def importance_setting_3() -> ImportanceProfile:
    """§5.2.2 (3): all QoS importances 0, cost importance 4."""
    return _example_importance(4.0, zero_qos=True)
