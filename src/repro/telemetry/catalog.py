"""The metric catalog: every instrument the library may emit.

Metrics are declared here, not at the call site — the registry rejects
names outside the catalog (and reprolint REP011 flags them statically),
so a typo can never silently fork a time series.  Units follow the
simulation's conventions: seconds are *simulated* seconds read from the
injected clock, never wall time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["MetricKind", "MetricSpec", "METRICS", "CATALOG", "metric_names"]


class MetricKind(enum.Enum):
    COUNTER = "counter"
    GAUGE = "gauge"
    HISTOGRAM = "histogram"


@dataclass(frozen=True, slots=True)
class MetricSpec:
    """Declaration of one instrument."""

    name: str
    kind: MetricKind
    unit: str
    description: str
    label: "str | None" = None        # at most one label dimension
    buckets: "tuple[float, ...]" = ()  # histogram upper bounds


def _counter(
    name: str, unit: str, description: str, label: "str | None" = None
) -> MetricSpec:
    return MetricSpec(name, MetricKind.COUNTER, unit, description, label)


def _gauge(
    name: str, unit: str, description: str, label: "str | None" = None
) -> MetricSpec:
    return MetricSpec(name, MetricKind.GAUGE, unit, description, label)


def _histogram(
    name: str, unit: str, description: str, buckets: "tuple[float, ...]"
) -> MetricSpec:
    return MetricSpec(
        name, MetricKind.HISTOGRAM, unit, description, buckets=buckets
    )


METRICS: "tuple[MetricSpec, ...]" = (
    # -- negotiation procedure (paper §4 steps 1-6) ---------------------------------
    _counter("negotiation.outcomes", "negotiations",
             "negotiations finished, by final status", "status"),
    _counter("negotiation.offers.enumerated", "variants",
             "variants considered by the step-2 compatibility filter"),
    _counter("negotiation.offers.dropped", "variants",
             "variants/offers dropped, by negotiation step", "step"),
    _counter("admission.attempts", "calls",
             "individual reservation calls (server admit or network "
             "reserve), by target", "target"),
    _counter("admission.retries", "calls",
             "backoff retries of reservation calls, by target", "target"),
    _counter("admission.refusals", "calls",
             "reservation calls that failed after retries, by target",
             "target"),
    _counter("commitment.rollbacks", "offers",
             "offer commitments rolled back after a partial reservation"),
    _counter("commitment.outcomes", "commitments",
             "step-6 commitment resolutions, by final state", "state"),
    # -- resilience stack -----------------------------------------------------------
    _counter("breaker.skips", "offers",
             "offers skipped because a server was quarantined"),
    _counter("breaker.opens", "transitions",
             "circuit-breaker trips to OPEN, by server", "server"),
    _counter("breaker.open_time_s", "seconds",
             "cumulative simulated time servers spent quarantined",
             "server"),
    _counter("leases.reaped", "leases",
             "expired/zombie reservation leases collected"),
    # -- write-ahead journal / crash recovery ---------------------------------------
    _counter("journal.records", "records",
             "write-ahead journal appends, by record type", "type"),
    _counter("recovery.replays", "replays",
             "journal replays after a manager crash"),
    _counter("recovery.holders", "holders",
             "holders reconciled by recovery, by outcome", "outcome"),
    # -- active phase (sessions, monitoring, adaptation) ----------------------------
    _counter("adaptation.switches", "transitions",
             "adaptation attempts, by outcome", "outcome"),
    _counter("session.started", "sessions", "playout sessions started"),
    _counter("session.completed", "sessions", "playout sessions completed"),
    _counter("session.aborted", "sessions", "playout sessions aborted"),
    _counter("monitor.violations", "violations",
             "QoS violations detected by the monitor sweep, by source",
             "source"),
    _counter("supervisor.heartbeats", "beats",
             "liveness signals (explicit heartbeats or playout progress)"),
    _counter("supervisor.releases", "sessions",
             "sessions released by the supervisor (stalled or dead)"),
    # -- storm survival layer (repro.storm) -----------------------------------------
    _counter("storm.gate.decisions", "requests",
             "admission-gate verdicts on incoming negotiation/"
             "renegotiation requests, by decision "
             "(admitted/queued/shed)", "decision"),
    _counter("storm.gate.retries", "requests",
             "queued requests re-dispatched after their jittered "
             "not-before time"),
    _counter("storm.waves", "waves",
             "renegotiation waves processed by the storm controller"),
    _counter("storm.downgrades", "sessions",
             "storm-controller downgrade attempts, by outcome "
             "(in-place/fallback/failed)", "outcome"),
    # -- concurrent negotiation service (repro.service) -----------------------------
    _counter("service.tasks", "tasks",
             "cooperative scheduler tasks finished, by outcome "
             "(completed/failed)", "outcome"),
    _counter("service.deadline.overruns", "negotiations",
             "negotiations whose step-5 walk exhausted its deadline "
             "budget and returned an honest FAILEDTRYLATER"),
    _counter("load.arrivals", "requests",
             "load-generator arrivals submitted to the service, by "
             "arrival process (poisson/diurnal/flash)", "process"),
    # -- negotiation cache (repro.perf) ---------------------------------------------
    _counter("cache.hits", "lookups",
             "negotiation cache lookups served from memory, by store",
             "store"),
    _counter("cache.misses", "lookups",
             "negotiation cache lookups that had to compute, by store",
             "store"),
    _counter("cache.evictions", "entries",
             "negotiation cache entries evicted (LRU or invalidation), "
             "by store", "store"),
    _counter("cache.flushes", "entries",
             "negotiation cache entries discarded by an explicit "
             "clear(), by store — kept apart from cache.evictions so "
             "the SLO eviction-rate series only sees capacity pressure",
             "store"),
    # -- batch negotiation engine (repro.batch) --------------------------------------
    _counter("batch.plans", "plans",
             "equivalence-class plans computed once by the batch "
             "engine and fanned out to every member"),
    _counter("batch.coalesced", "requests",
             "negotiation requests that reused an equivalence-class "
             "plan instead of replanning, by site (batch/service/"
             "storm)", "site"),
    # -- substrate ledgers ----------------------------------------------------------
    _counter("server.streams.reserved", "streams",
             "stream admissions granted, by server", "server"),
    _counter("server.streams.released", "streams",
             "stream reservations released, by server", "server"),
    _counter("network.flows.reserved", "flows",
             "end-to-end network flows reserved"),
    _counter("network.flows.released", "flows",
             "network flow reservations released"),
    # -- gauges ---------------------------------------------------------------------
    _gauge("sessions.active", "sessions",
           "playout sessions currently active"),
    _gauge("storm.queue.depth", "requests",
           "negotiation requests waiting in the admission gate's "
           "bounded retry queue"),
    _gauge("service.inflight", "negotiations",
           "negotiations submitted to the concurrent service and not "
           "yet delivered a terminal verdict"),
    # -- histograms -----------------------------------------------------------------
    _histogram("negotiation.latency_s", "seconds",
               "end-to-end negotiation latency in simulated seconds",
               (0.0, 0.5, 1.0, 5.0, 15.0, 60.0)),
    _histogram("negotiation.attempts", "attempts",
               "commitment attempts consumed per negotiation",
               (0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0)),
    _histogram("negotiation.offers.classified", "offers",
               "feasible offers classified per negotiation",
               (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)),
    _histogram("batch.class_size", "requests",
               "pending requests fanned out per capability equivalence "
               "class in one batch negotiation",
               (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)),
    _histogram("storm.wave.batch_size", "sessions",
               "sessions re-reserved per capability-class batch in one "
               "storm wave",
               (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)),
    _histogram("storm.retry.convergence_s", "seconds",
               "simulated time from a request's first gate submission "
               "to its terminal verdict",
               (0.0, 1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0)),
    _histogram("service.verdict.wait_s", "seconds",
               "simulated time from service submission to terminal "
               "verdict (includes gate queueing)",
               (0.0, 0.1, 0.5, 1.0, 5.0, 15.0, 30.0, 60.0, 120.0)),
    _histogram("service.walk.switches", "switches",
               "cooperative yield points consumed by one negotiation's "
               "step-5 walk",
               (0.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)),
    _histogram("storm.gate.wait_s", "seconds",
               "simulated time a request spent parked in the admission "
               "gate's retry queue before dispatch (0 when admitted "
               "immediately)",
               (0.0, 0.5, 1.0, 2.0, 5.0, 15.0, 30.0, 60.0, 120.0)),
)

CATALOG: "dict[str, MetricSpec]" = {spec.name: spec for spec in METRICS}


def metric_names() -> "frozenset[str]":
    """Every registered metric name (the REP011 allow-list)."""
    return frozenset(CATALOG)
