"""The deterministic critical-path profiler.

A negotiation's latency is not one number — it is queue wait at the
admission gate, planning (§4 steps 1–4), the step-5 reservation walk
(split into the committed attempt, rolled-back retries, and abandoned
attempts), and whatever remains: time parked in the cooperative
scheduler behind other tasks.  This module extracts that breakdown
from the span trees the service emits (root ``service.negotiation``
per request, children emitted against its pre-allocated context) and
from synchronous ``negotiation`` traces (steps 1–6 as nested spans),
then aggregates them into:

* a :class:`ProfileReport` naming the **top bottleneck** — the segment
  with the largest share of total latency;
* a **folded-stack flamegraph** (``root;segment <microseconds>``, one
  line per stack, sorted) that any flamegraph renderer consumes.

Simulated time is exact and the spans are seeded, so the same run
profiles to byte-identical output — flamegraphs diff cleanly in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Union

from ..util.tables import render_table
from .report import STEP_SPANS
from .spans import Span

__all__ = [
    "CriticalPath",
    "ProfileReport",
    "extract_critical_paths",
    "profile_spans",
    "folded_stacks",
    "write_flamegraph",
]

# Segment order is the canonical rendering/tie-break order: the
# request's own timeline, queue first, residual last.
SERVICE_SEGMENTS: "tuple[str, ...]" = (
    "gate.wait",
    "plan",
    "step5.commit",
    "step5.retry",
    "step5.abandoned",
    "scheduler.other",
)

SYNC_SEGMENTS: "tuple[str, ...]" = tuple(
    name for _, name, _ in STEP_SPANS
) + ("scheduler.other",)

_ATTEMPT_SEGMENT = {
    "committed": "step5.commit",
    "rolled-back": "step5.retry",
    "abandoned": "step5.abandoned",
}


@dataclass(slots=True)
class CriticalPath:
    """One negotiation's latency, attributed segment by segment."""

    trace_id: str
    root: str
    label: str
    status: str
    start_s: float
    end_s: float
    segments: "dict[str, float]" = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return self.end_s - self.start_s

    def as_dict(self) -> "dict[str, Any]":
        return {
            "trace_id": self.trace_id,
            "root": self.root,
            "label": self.label,
            "status": self.status,
            "total_s": round(self.total_s, 9),
            "segments": {
                name: round(value, 9)
                for name, value in self.segments.items()
            },
        }


def _segment_order(root: str) -> "tuple[str, ...]":
    return SERVICE_SEGMENTS if root == "service.negotiation" else SYNC_SEGMENTS


def _path_from_service_trace(
    root: Span, children: "list[Span]"
) -> CriticalPath:
    segments = {name: 0.0 for name in SERVICE_SEGMENTS}
    for span in children:
        if span.name == "service.gate.wait":
            segments["gate.wait"] += span.duration_s
        elif span.name == "service.plan":
            segments["plan"] += span.duration_s
        elif span.name == "negotiation.step5.attempt":
            outcome = str(span.attributes.get("outcome", "rolled-back"))
            segment = _ATTEMPT_SEGMENT.get(outcome, "step5.retry")
            segments[segment] += span.duration_s
    return _finish_path(root, segments)


def _path_from_sync_trace(
    root: Span, children: "list[Span]"
) -> CriticalPath:
    segments = {name: 0.0 for name in SYNC_SEGMENTS}
    # Only the top-level step spans count — a step-5 span's nested
    # attempt spans overlap their parent and would double-charge.
    top_level = {span.span_id for span in children
                 if span.parent_id == root.span_id}
    for span in children:
        if span.name in segments and span.span_id in top_level:
            segments[span.name] += span.duration_s
    return _finish_path(root, segments)


def _finish_path(root: Span, segments: "dict[str, float]") -> CriticalPath:
    attributed = sum(segments.values())
    total = root.duration_s
    segments["scheduler.other"] = max(0.0, total - attributed)
    return CriticalPath(
        trace_id=root.trace_id,
        root=root.name,
        label=str(root.attributes.get("label", root.trace_id)),
        status=str(root.attributes.get("status", "")),
        start_s=root.start_s,
        end_s=root.end_s if root.end_s is not None else root.start_s,
        segments=segments,
    )


def extract_critical_paths(
    spans: "Iterable[Span]",
) -> "list[CriticalPath]":
    """One :class:`CriticalPath` per negotiation root found in
    ``spans`` (service or synchronous), in root start order."""
    by_trace: "dict[str, list[Span]]" = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    paths: "list[CriticalPath]" = []
    for trace in by_trace.values():
        root = None
        for span in trace:
            if span.parent_id is None and span.name in (
                "service.negotiation", "negotiation"
            ):
                root = span
                break
        if root is None:
            continue
        children = [s for s in trace if s is not root]
        if root.name == "service.negotiation":
            paths.append(_path_from_service_trace(root, children))
        else:
            paths.append(_path_from_sync_trace(root, children))
    paths.sort(key=lambda p: (p.start_s, p.label))
    return paths


@dataclass(slots=True)
class ProfileReport:
    """Aggregated critical paths: where did the simulated time go?"""

    paths: int = 0
    total_s: float = 0.0
    segment_totals: "dict[str, float]" = field(default_factory=dict)

    @property
    def top_bottleneck(self) -> "str | None":
        """The segment holding the largest share of total latency
        (first in canonical order on ties); None without data."""
        best = None
        best_value = 0.0
        for name, value in self.segment_totals.items():
            if value > best_value + 1e-12:
                best, best_value = name, value
        return best

    def share(self, segment: str) -> float:
        if self.total_s <= 0:
            return 0.0
        return self.segment_totals.get(segment, 0.0) / self.total_s

    def as_dict(self) -> "dict[str, Any]":
        return {
            "paths": self.paths,
            "total_s": round(self.total_s, 9),
            "segments": {
                name: round(value, 9)
                for name, value in self.segment_totals.items()
            },
            "top_bottleneck": self.top_bottleneck,
        }

    def render(self) -> str:
        if not self.paths:
            return "profile: (no negotiation traces)"
        rows = []
        for name, value in self.segment_totals.items():
            mean_ms = value / self.paths * 1e3
            rows.append((
                name,
                f"{value:.3f}",
                f"{mean_ms:.2f}",
                f"{self.share(name) * 100:.1f}%",
                "<-- top bottleneck" if name == self.top_bottleneck else "",
            ))
        return render_table(
            ("segment", "total s", "mean ms/negotiation", "share", ""),
            rows,
            title=f"critical path over {self.paths} negotiations",
        )

    def to_json(self) -> str:
        return json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        )


def profile_spans(spans: "Iterable[Span]") -> ProfileReport:
    """Extract and aggregate every negotiation critical path."""
    paths = extract_critical_paths(spans)
    report = ProfileReport(paths=len(paths))
    if not paths:
        return report
    order = _segment_order(paths[0].root)
    totals = {name: 0.0 for name in order}
    for path in paths:
        report.total_s += path.total_s
        for name, value in path.segments.items():
            totals[name] = totals.get(name, 0.0) + value
    report.segment_totals = totals
    return report


def folded_stacks(
    paths: "Iterable[CriticalPath]", *, prefix: str = ""
) -> "list[str]":
    """Folded flamegraph lines: ``[prefix;]root;segment <µs>``, summed
    and sorted.  Values are integer simulated microseconds, so the
    artifact is byte-stable across same-seed runs."""
    weights: "dict[str, int]" = {}
    for path in paths:
        base = f"{prefix};{path.root}" if prefix else path.root
        for segment, seconds in path.segments.items():
            micros = int(round(seconds * 1e6))
            if micros <= 0:
                continue
            stack = f"{base};{segment}"
            weights[stack] = weights.get(stack, 0) + micros
    return [f"{stack} {weights[stack]}" for stack in sorted(weights)]


def write_flamegraph(
    path: "Union[str, Path]",
    sections: "dict[str, list[CriticalPath]]",
) -> int:
    """Write one folded-stack file covering ``sections`` (e.g. one per
    load multiplier; the section name prefixes each stack).  Returns
    the number of lines written."""
    lines: "list[str]" = []
    for name in sorted(sections):
        lines.extend(folded_stacks(sections[name], prefix=name))
    Path(path).write_text(
        "\n".join(lines) + ("\n" if lines else ""),
        encoding="utf-8", newline="\n",
    )
    return len(lines)
