"""Machine-readable negotiation reports built from the trace.

The :class:`NegotiationReport` replaces ad-hoc tuples of step
statistics: it is derived purely from the spans of one finished
negotiation trace, so the numbers the user sees in ``repro trace`` are
exactly the numbers the tracer recorded — there is no second
bookkeeping path to drift.

Also here: :func:`reconcile_journal`, the audit ``repro stats`` runs to
prove the metrics, the write-ahead journal and the leak audit agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from ..journal.records import TERMINAL_TYPES, JournalRecordType
from .spans import Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..journal.store import ReservationJournal
    from .metrics import MetricsRegistry

__all__ = [
    "STEP_SPANS",
    "AttemptSummary",
    "StepSummary",
    "NegotiationReport",
    "reconcile_journal",
]

# Paper §4 step number -> span name (the taxonomy DESIGN.md §9 tables).
STEP_SPANS: "tuple[tuple[int, str, str], ...]" = (
    (1, "negotiation.step1.local", "static local negotiation"),
    (2, "negotiation.step2.filter", "static compatibility checking"),
    (3, "negotiation.step3.parameters", "classification parameters"),
    (4, "negotiation.step4.classify", "classification of system offers"),
    (5, "negotiation.step5.commit", "resource commitment"),
    (6, "negotiation.step6.confirm", "user confirmation"),
)


@dataclass(slots=True)
class StepSummary:
    """One negotiation step as the trace recorded it."""

    step: int
    title: str
    span_name: str
    ran: bool
    status: str = "ok"
    offers_in: "int | None" = None
    offers_out: "int | None" = None
    dropped: int = 0
    drop_reasons: "dict[str, int]" = field(default_factory=dict)
    attributes: "dict[str, Any]" = field(default_factory=dict)


@dataclass(slots=True)
class AttemptSummary:
    """One step-5 admission attempt (or breaker skip)."""

    offer_id: str
    servers: "tuple[str, ...]"
    outcome: str               # committed | rolled-back | breaker-skip
    refusal: "str | None" = None


@dataclass(slots=True)
class NegotiationReport:
    """Per-step offer accounting + attempted offers, from one trace."""

    trace_id: str
    status: str
    document: str
    profile: str
    steps: "list[StepSummary]" = field(default_factory=list)
    attempts: "list[AttemptSummary]" = field(default_factory=list)
    attributes: "dict[str, Any]" = field(default_factory=dict)

    @classmethod
    def from_spans(
        cls, spans: "tuple[Span, ...] | list[Span]"
    ) -> "NegotiationReport":
        root = next((s for s in spans if s.name == "negotiation"), None)
        by_name: "dict[str, Span]" = {}
        attempts: "list[AttemptSummary]" = []
        for span in spans:
            if span.name == "negotiation.step5.attempt":
                attempts.append(
                    AttemptSummary(
                        offer_id=str(span.attributes.get("offer_id", "?")),
                        servers=tuple(span.attributes.get("servers", ())),
                        outcome=str(span.attributes.get("outcome", "?")),
                        refusal=span.attributes.get("refusal"),
                    )
                )
            elif span.name not in by_name:
                by_name[span.name] = span
        report = cls(
            trace_id=root.trace_id if root is not None else "",
            status=str(root.attributes.get("status", "?")) if root else "?",
            document=str(root.attributes.get("document", "?")) if root else "?",
            profile=str(root.attributes.get("profile", "?")) if root else "?",
            attempts=attempts,
            attributes=dict(root.attributes) if root is not None else {},
        )
        for step, span_name, title in STEP_SPANS:
            span = by_name.get(span_name)
            if span is None:
                report.steps.append(
                    StepSummary(step, title, span_name, ran=False)
                )
                continue
            attrs = span.attributes
            report.steps.append(
                StepSummary(
                    step=step,
                    title=title,
                    span_name=span_name,
                    ran=True,
                    status=span.status,
                    offers_in=attrs.get("offers_in"),
                    offers_out=attrs.get("offers_out"),
                    dropped=int(attrs.get("dropped", 0)),
                    drop_reasons=dict(attrs.get("drop_reasons", {})),
                    attributes=dict(attrs),
                )
            )
        return report

    @property
    def total_dropped(self) -> int:
        return sum(step.dropped for step in self.steps)

    def as_dict(self) -> "dict[str, Any]":
        return {
            "trace_id": self.trace_id,
            "status": self.status,
            "document": self.document,
            "profile": self.profile,
            "steps": [
                {
                    "step": s.step,
                    "title": s.title,
                    "span": s.span_name,
                    "ran": s.ran,
                    "status": s.status,
                    "offers_in": s.offers_in,
                    "offers_out": s.offers_out,
                    "dropped": s.dropped,
                    "drop_reasons": dict(s.drop_reasons),
                }
                for s in self.steps
            ],
            "attempts": [
                {
                    "offer_id": a.offer_id,
                    "servers": list(a.servers),
                    "outcome": a.outcome,
                    "refusal": a.refusal,
                }
                for a in self.attempts
            ],
        }

    def render(self) -> str:
        lines = [
            f"negotiation report (trace {self.trace_id})",
            f"  document={self.document} profile={self.profile} "
            f"status={self.status}",
        ]
        for step in self.steps:
            label = f"  step {step.step} {step.title:<34}"
            if not step.ran:
                lines.append(f"{label} (not reached)")
                continue
            bits = []
            if step.offers_in is not None:
                bits.append(f"offers_in={step.offers_in}")
            if step.offers_out is not None:
                bits.append(f"offers_out={step.offers_out}")
            bits.append(f"dropped={step.dropped}")
            if step.drop_reasons:
                reasons = ", ".join(
                    f"{key}: {count}"
                    for key, count in sorted(step.drop_reasons.items())
                )
                bits.append(f"[{reasons}]")
            for key in ("violations", "attempts", "breaker_skips", "outcome"):
                if key in step.attributes:
                    bits.append(f"{key}={step.attributes[key]}")
            lines.append(f"{label} {' '.join(bits)}")
        if self.attempts:
            lines.append("  commitment attempts:")
            for index, attempt in enumerate(self.attempts, start=1):
                detail = f"offer={attempt.offer_id} outcome={attempt.outcome}"
                if attempt.servers:
                    detail += f" servers={','.join(attempt.servers)}"
                if attempt.refusal:
                    detail += f" refusal={attempt.refusal}"
                lines.append(f"    {index}. {detail}")
        return "\n".join(lines)


def reconcile_journal(
    journal: "ReservationJournal",
    metrics: "MetricsRegistry | None" = None,
) -> "dict[str, Any]":
    """Audit the journal against itself and (optionally) the metrics.

    Invariants checked:

    * every holder with a ``RESERVED`` record ends on a terminal record
      (``RELEASED``/``EXPIRED``) — reserved capacity never outlives its
      negotiation (``reserved == confirmed-then-closed + released +
      expired``, i.e. zero open holders);
    * when a registry is given, its ``journal.records{type}`` counters
      equal the journal's actual per-type record counts.
    """
    by_type: "dict[str, int]" = {}
    for record in journal.records():
        key = record.record_type.value
        by_type[key] = by_type.get(key, 0) + 1
    reserved_holders = 0
    open_holders: "list[str]" = []
    for holder, timeline in journal.by_holder().items():
        if not any(
            r.record_type is JournalRecordType.RESERVED for r in timeline
        ):
            continue
        reserved_holders += 1
        if timeline[-1].record_type not in TERMINAL_TYPES:
            open_holders.append(holder)
    result: "dict[str, Any]" = {
        "records": len(journal),
        "records_by_type": {key: by_type[key] for key in sorted(by_type)},
        "reserved_holders": reserved_holders,
        "closed_holders": reserved_holders - len(open_holders),
        "open_holders": sorted(open_holders),
        "balanced": not open_holders,
    }
    if metrics is not None:
        counted = {
            key: int(
                metrics.counter_value("journal.records", type=key)
            )
            for key in sorted(by_type)
        }
        result["metrics_records_by_type"] = counted
        result["metrics_match"] = counted == result["records_by_type"]
    return result
