"""The tracer: deterministic nested spans over the simulated clock.

Span/trace ids are drawn from a seeded RNG and timestamps from the
injected :class:`~repro.util.clock.ManualClock`, so a trace is a pure
function of the run's seed — two same-seed runs export byte-identical
JSONL.  The tracer keeps a stack of open spans (nesting), hands every
finished span to its exporters, and retains the most recently finished
*root* trace so the negotiation can turn it into a
:class:`~repro.telemetry.report.NegotiationReport` in O(trace size).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Protocol

from ..util.clock import ManualClock
from ..util.errors import TelemetryError
from ..util.rng import make_rng
from .spans import Span, SpanStatus

__all__ = ["SpanExporter", "Tracer", "NULL_SPAN"]


class SpanExporter(Protocol):
    """Receives every span as it finishes."""

    def export(self, span: Span) -> None: ...


class _NullSpan:
    """The span handed out by a disabled tracer: accepts attributes,
    records nothing."""

    __slots__ = ()
    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    status = SpanStatus.OK

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_attributes(self, attributes: "dict[str, Any]") -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Deterministic span factory bound to one simulated clock."""

    def __init__(
        self,
        *,
        clock: ManualClock,
        seed: int = 0,
        exporters: "tuple[SpanExporter, ...]" = (),
        enabled: bool = True,
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self._rng = make_rng(seed)
        self._exporters: "list[SpanExporter]" = list(exporters)
        self._stack: "list[Span]" = []
        self._sequence = 0
        # trace_id -> spans started under it, in start order; a root
        # span's end moves its bucket to _last_trace, so collecting the
        # finished negotiation trace is O(1) lookups per span (never a
        # scan over the whole run's span history).
        self._open_traces: "dict[str, list[Span]]" = {}
        self._last_trace: "tuple[Span, ...]" = ()

    # -- wiring --------------------------------------------------------------------

    def add_exporter(self, exporter: SpanExporter) -> None:
        self._exporters.append(exporter)

    @property
    def exporters(self) -> "tuple[SpanExporter, ...]":
        return tuple(self._exporters)

    # -- identity ------------------------------------------------------------------

    def _new_id(self) -> str:
        return self._rng.integers(
            0, 256, size=8, dtype="uint8"
        ).tobytes().hex()

    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    # -- the span lifecycle --------------------------------------------------------

    def start_span(self, name: str, **attributes: Any) -> Span:
        parent = self._stack[-1] if self._stack else None
        trace_id = parent.trace_id if parent is not None else self._new_id()
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=self._new_id(),
            parent_id=parent.span_id if parent is not None else None,
            start_s=self.clock.now(),
            sequence=self._next_sequence(),
            attributes=dict(attributes),
        )
        self._stack.append(span)
        self._open_traces.setdefault(trace_id, []).append(span)
        return span

    def end_span(self, span: Span) -> None:
        span.end_s = self.clock.now()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # defensive: out-of-order end
            self._stack.remove(span)
        for exporter in self._exporters:
            exporter.export(span)
        if span.parent_id is None:
            bucket = self._open_traces.pop(span.trace_id, [])
            self._last_trace = tuple(bucket)

    @contextmanager
    def span(self, name: str, **attributes: Any) -> "Iterator[Any]":
        """Open a nested span for the duration of the block.

        The span records failure status but never swallows, converts or
        reorders the exception — instrumentation must be invisible to
        the error-handling paths it wraps.
        """
        if not self.enabled:
            yield NULL_SPAN
            return
        span = self.start_span(name, **attributes)
        try:
            yield span
        except BaseException as error:  # reprolint: backstop -- record status, always re-raise unchanged
            span.status = SpanStatus.ERROR
            span.set_attribute("error.type", type(error).__name__)
            raise
        finally:
            self.end_span(span)

    def new_context(self) -> "tuple[str, str]":
        """Pre-allocate a ``(trace_id, span_id)`` for a root span that
        will be emitted *later* via :meth:`emit` with ``context=``.

        Cooperative tasks need this: a negotiation's children (gate
        wait, plan, step-5 attempts) finish while the request is still
        in flight, long before the root's end time is known — and the
        stack-based :meth:`span` cannot stay open across task switches
        without capturing unrelated tasks' spans.  Children emitted
        with ``parent=context`` accumulate under the trace until the
        root lands.
        """
        trace_id, span_id = self._new_id(), self._new_id()
        self._open_traces.setdefault(trace_id, [])
        return trace_id, span_id

    def emit(
        self,
        name: str,
        *,
        start_s: float,
        end_s: float,
        parent: "tuple[str, str] | None" = None,
        context: "tuple[str, str] | None" = None,
        status: str = SpanStatus.OK,
        attributes: "dict[str, Any] | None" = None,
    ) -> "Span | _NullSpan":
        """Record a manually-timed span (confirmation waits, breaker
        open windows — intervals whose end is observed after the
        enclosing trace closed).  ``parent`` is a ``(trace_id,
        span_id)`` context, e.g. from :meth:`root_context`; ``context``
        instead makes this span the *root* carrying the pre-allocated
        identity from :meth:`new_context`, closing that trace."""
        if not self.enabled:
            return NULL_SPAN
        if context is not None and parent is not None:
            raise TelemetryError(
                "emit takes parent= or context=, not both"
            )
        if context is not None:
            trace_id, span_id = context
            parent_id = None
        elif parent is not None:
            trace_id, parent_id = parent
            span_id = self._new_id()
        else:
            trace_id, parent_id = self._new_id(), None
            span_id = self._new_id()
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            start_s=start_s,
            end_s=end_s,
            status=status,
            sequence=self._next_sequence(),
            attributes=dict(attributes or {}),
        )
        bucket = self._open_traces.get(trace_id)
        if bucket is not None:
            if context is not None:
                bucket.insert(0, span)
            else:
                bucket.append(span)
        for exporter in self._exporters:
            exporter.export(span)
        if context is not None:
            finished = self._open_traces.pop(trace_id, [span])
            self._last_trace = tuple(finished)
        return span

    # -- context -------------------------------------------------------------------

    def current_span(self) -> "Span | None":
        return self._stack[-1] if self._stack else None

    def current_context(self) -> "tuple[str, str] | None":
        """(trace_id, span_id) of the innermost open span."""
        if not self._stack:
            return None
        top = self._stack[-1]
        return top.trace_id, top.span_id

    def root_context(self) -> "tuple[str, str] | None":
        """(trace_id, span_id) of the outermost open span — the anchor
        for late spans that belong at the top of the trace."""
        if not self._stack:
            return None
        root = self._stack[0]
        return root.trace_id, root.span_id

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the innermost open span (no-op when no
        span is open or the tracer is disabled)."""
        if self._stack:
            self._stack[-1].attributes.update(attributes)

    def last_trace(self) -> "tuple[Span, ...]":
        """Every span of the most recently finished root trace, in
        start order."""
        return self._last_trace
