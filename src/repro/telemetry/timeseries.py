"""The flight recorder: fixed-interval time series over the registry.

A terminal metrics snapshot answers *what happened*; an operator needs
*when*.  The :class:`FlightRecorder` rides the simulated clock: armed
on an :class:`~repro.session.engine.EventLoop`, it snapshots the
:class:`~repro.telemetry.metrics.MetricsRegistry` every ``interval_s``
simulated seconds into bounded ring buffers — cumulative counters (from
which per-interval rates derive), gauge values, and full histogram
bucket vectors (from which windowed quantiles derive).  Everything is a
pure function of the run's seed: sample times come from the event loop,
values from the catalog-validated registry, so two same-seed runs
export byte-identical JSONL.

Series keys are ``kind:flat-metric-key`` (``rate:`` series are derived
at query/export time, never stored):

* ``counter:storm.gate.decisions{decision=shed}`` — cumulative value,
* ``gauge:storm.queue.depth`` — last set value,
* ``hist:service.verdict.wait_s`` — ``[count_0, …, overflow, total,
  sum]`` cumulative bucket vector.

The query methods (:meth:`~FlightRecorder.counter_series`,
:meth:`~FlightRecorder.counter_rate`,
:meth:`~FlightRecorder.gauge_series`,
:meth:`~FlightRecorder.quantile_series`,
:meth:`~FlightRecorder.histogram_series`) take catalog metric names —
reprolint REP011 statically rejects names the catalog does not know,
exactly as it does for emission sites.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Union

from ..util.errors import TelemetryError
from .catalog import CATALOG, MetricKind
from .metrics import HistogramState, format_metric_key, parse_metric_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..session.engine import EventLoop
    from . import Telemetry

__all__ = [
    "FlightRecorder",
    "SeriesPoint",
    "TimeSeriesDump",
    "read_timeseries_jsonl",
]

TIMESERIES_SCHEMA = "repro.timeseries/v1"

# A sample is (simulated time, value); histogram samples carry the
# bucket vector instead of a scalar.
SeriesPoint = "tuple[float, Any]"


class _Ring:
    """Fixed-capacity append-only window; overwrites the oldest point."""

    __slots__ = ("capacity", "_items", "_start", "dropped")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise TelemetryError(
                f"ring capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._items: "list[Any]" = []
        self._start = 0
        self.dropped = 0

    def append(self, item: Any) -> None:
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        self._items[self._start] = item
        self._start = (self._start + 1) % self.capacity
        self.dropped += 1

    def items(self) -> "list[Any]":
        return self._items[self._start:] + self._items[:self._start]

    def __len__(self) -> int:
        return len(self._items)


class FlightRecorder:
    """Seeded, sim-clock-driven scraper for the metrics registry.

    Wire-up is two calls: construct over the deployment's telemetry
    hub, then :meth:`arm` on the scenario's event loop (bounded by the
    run horizon so a drained loop terminates); the driver calls
    :meth:`finish` after the loop drains to capture the end state.
    """

    def __init__(
        self,
        telemetry: "Telemetry",
        *,
        interval_s: float = 1.0,
        capacity: int = 4096,
    ) -> None:
        if interval_s <= 0:
            raise TelemetryError(
                f"interval_s must be positive, got {interval_s}"
            )
        self.telemetry = telemetry
        self.interval_s = interval_s
        self.capacity = capacity
        self._ticks = _Ring(capacity)
        self._series: "dict[str, _Ring]" = {}
        self._armed_at: "float | None" = None

    # -- sampling ------------------------------------------------------------------

    def arm(self, loop: "EventLoop", *, until: "float | None" = None) -> None:
        """Take a baseline sample now, then one every ``interval_s``
        until ``until`` (absolute simulated time).  A bound is required
        whenever the loop is drained to exhaustion — an unbounded
        periodic sampler would keep the loop alive forever."""
        self._armed_at = loop.now
        self.sample(loop.now)
        loop.every(
            self.interval_s,
            lambda: self.sample(loop.now),
            label="telemetry:flight-recorder",
            until=until,
        )

    def sample(self, now: float) -> None:
        """Snapshot every live instrument at simulated time ``now``."""
        if not self.telemetry.enabled:
            return
        if len(self._ticks) and self._ticks.items()[-1] == now:
            return  # one sample per instant, even if armed twice
        self._ticks.append(now)
        registry = self.telemetry.metrics
        snapshot = registry.snapshot()
        for key, value in snapshot["counters"].items():
            self._point(f"counter:{key}", now, value)
        for key, value in snapshot["gauges"].items():
            self._point(f"gauge:{key}", now, value)
        for name in snapshot["histograms"]:
            state = registry.histogram(name)
            if state is None:  # pragma: no cover - snapshot implies state
                continue
            vector = list(state.counts) + [
                state.overflow, state.total, state.sum,
            ]
            self._point(f"hist:{name}", now, vector)

    def finish(self, now: float) -> None:
        """Capture the drained end state (idempotent per instant)."""
        self.sample(now)

    def _point(self, series: str, now: float, value: Any) -> None:
        ring = self._series.get(series)
        if ring is None:
            ring = self._series[series] = _Ring(self.capacity)
        ring.append((now, value))

    # -- bookkeeping ---------------------------------------------------------------

    @property
    def samples(self) -> int:
        return len(self._ticks)

    @property
    def dropped(self) -> int:
        return self._ticks.dropped + sum(
            ring.dropped for ring in self._series.values()
        )

    def tick_times(self) -> "tuple[float, ...]":
        return tuple(self._ticks.items())

    def series_names(self) -> "tuple[str, ...]":
        return tuple(sorted(self._series))

    def label_values(self, name: str) -> "tuple[str, ...]":
        """Label values a counter/gauge has emitted under, sorted."""
        self._require(name)
        values = []
        for series in self._series:
            kind, _, key = series.partition(":")
            if kind not in ("counter", "gauge"):
                continue
            metric, label_value = parse_metric_key(key)
            if metric == name and label_value is not None:
                values.append(label_value)
        return tuple(sorted(values))

    @staticmethod
    def _require(name: str, kind: "MetricKind | None" = None) -> None:
        spec = CATALOG.get(name)
        if spec is None:
            raise TelemetryError(
                f"metric {name!r} is not in the catalog; the recorder "
                "only serves catalog time series"
            )
        if kind is not None and spec.kind is not kind:
            raise TelemetryError(
                f"metric {name!r} is a {spec.kind.value}, not a "
                f"{kind.value}"
            )

    def _points(self, series: str) -> "list[tuple[float, Any]]":
        ring = self._series.get(series)
        return ring.items() if ring is not None else []

    # -- queries (first argument must be a catalog metric name) --------------------

    def counter_series(
        self, name: str, label: "str | None" = None
    ) -> "tuple[tuple[float, float], ...]":
        """Cumulative counter value at each sample tick."""
        self._require(name, MetricKind.COUNTER)
        key = format_metric_key(name, label)
        return tuple(self._points(f"counter:{key}"))

    def counter_rate(
        self, name: str, label: "str | None" = None
    ) -> "tuple[tuple[float, float], ...]":
        """Per-second rate over each sampling interval; the point at
        ``t`` covers ``(previous tick, t]``.  A counter born mid-run
        counts from zero at the preceding tick."""
        self._require(name, MetricKind.COUNTER)
        key = format_metric_key(name, label)
        return self._rate_of(self._points(f"counter:{key}"))

    def _rate_of(
        self, points: "list[tuple[float, float]]"
    ) -> "tuple[tuple[float, float], ...]":
        if not points:
            return ()
        ticks = self._ticks.items()
        first_t = points[0][0]
        previous_ticks = [t for t in ticks if t < first_t]
        if previous_ticks:
            prior = (previous_ticks[-1], 0.0)
        elif self._armed_at is not None and self._armed_at < first_t:
            prior = (self._armed_at, 0.0)
        else:
            prior = None
        rates: "list[tuple[float, float]]" = []
        if prior is not None:
            points = [prior] + points
        else:
            rates.append((points[0][0], 0.0))
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            dt = t1 - t0
            rates.append((t1, (v1 - v0) / dt if dt > 0 else 0.0))
        return tuple(rates)

    def gauge_series(
        self, name: str, label: "str | None" = None
    ) -> "tuple[tuple[float, float], ...]":
        self._require(name, MetricKind.GAUGE)
        key = format_metric_key(name, label)
        return tuple(self._points(f"gauge:{key}"))

    def histogram_series(
        self, name: str
    ) -> "tuple[tuple[float, HistogramState], ...]":
        """Cumulative :class:`HistogramState` at each tick."""
        self._require(name, MetricKind.HISTOGRAM)
        spec = CATALOG[name]
        out = []
        for now, vector in self._points(f"hist:{name}"):
            out.append((now, _state_from_vector(spec.buckets, vector)))
        return tuple(out)

    def quantile_series(
        self, name: str, q: float
    ) -> "tuple[tuple[float, float], ...]":
        """Cumulative-distribution quantile estimate at each tick."""
        return tuple(
            (now, state.quantile(q))
            for now, state in self.histogram_series(name)
        )

    def window_histogram(
        self, name: str, start_s: float, end_s: float
    ) -> HistogramState:
        """Delta histogram over ``(start_s, end_s]``: observations made
        strictly after the last tick at/before ``start_s`` up to the
        last tick at/before ``end_s``."""
        series = self.histogram_series(name)
        spec = CATALOG[name]
        at_end = _last_at_or_before(series, end_s)
        at_start = _last_at_or_before(series, start_s)
        if at_end is None:
            return HistogramState(spec.buckets)
        if at_start is None:
            return at_end[1]
        return _subtract_states(spec.buckets, at_end, at_start)

    # -- export --------------------------------------------------------------------

    def as_dict(self) -> "dict[str, Any]":
        """Compact summary for embedding in run reports."""
        ticks = self._ticks.items()
        return {
            "schema": TIMESERIES_SCHEMA,
            "interval_s": self.interval_s,
            "samples": len(ticks),
            "series": len(self._series),
            "dropped": self.dropped,
            "first_s": ticks[0] if ticks else None,
            "last_s": ticks[-1] if ticks else None,
        }

    def to_jsonl_lines(self) -> "list[str]":
        """Canonical JSONL: one header line, then one line per series
        in sorted key order — byte-identical across same-seed runs."""
        header = {
            "schema": TIMESERIES_SCHEMA,
            "interval_s": self.interval_s,
            "samples": self.samples,
            "series": len(self._series),
            "dropped": self.dropped,
            "ticks": self._ticks.items(),
        }
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        for series in sorted(self._series):
            record = {
                "series": series,
                "points": [
                    [now, value] for now, value in self._points(series)
                ],
            }
            lines.append(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
            )
        return lines

    def write_jsonl(self, path: "Union[str, Path]") -> int:
        """Write the canonical dump; returns the number of lines."""
        lines = self.to_jsonl_lines()
        Path(path).write_text(
            "\n".join(lines) + "\n", encoding="utf-8", newline="\n"
        )
        return len(lines)


def _state_from_vector(
    buckets: "tuple[float, ...]", vector: "list[Any]"
) -> HistogramState:
    state = HistogramState(buckets)
    state.counts = [int(count) for count in vector[:len(buckets)]]
    state.overflow = int(vector[len(buckets)])
    state.total = int(vector[len(buckets) + 1])
    state.sum = float(vector[len(buckets) + 2])
    return state


def _subtract_states(
    buckets: "tuple[float, ...]",
    later: "tuple[float, HistogramState]",
    earlier: "tuple[float, HistogramState]",
) -> HistogramState:
    _, end = later
    _, start = earlier
    state = HistogramState(buckets)
    state.counts = [
        e - s for e, s in zip(end.counts, start.counts)
    ]
    state.overflow = end.overflow - start.overflow
    state.total = end.total - start.total
    state.sum = end.sum - start.sum
    return state


def _last_at_or_before(
    series: "tuple[tuple[float, HistogramState], ...]", when: float
) -> "tuple[float, HistogramState] | None":
    found = None
    for now, state in series:
        if now <= when + 1e-12:
            found = (now, state)
        else:
            break
    return found


class TimeSeriesDump:
    """Parsed form of one recorder JSONL artifact."""

    __slots__ = ("header", "series")

    def __init__(
        self, header: "dict[str, Any]",
        series: "dict[str, list[tuple[float, Any]]]",
    ) -> None:
        self.header = header
        self.series = series

    def points(self, series: str) -> "list[tuple[float, Any]]":
        return self.series.get(series, [])

    def names(self) -> "tuple[str, ...]":
        return tuple(sorted(self.series))


def read_timeseries_jsonl(path: "Union[str, Path]") -> TimeSeriesDump:
    """Round-trip reader for :meth:`FlightRecorder.write_jsonl`."""
    lines = [
        line for line in
        Path(path).read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    if not lines:
        raise TelemetryError(f"empty time-series file: {path}")
    header = json.loads(lines[0])
    if header.get("schema") != TIMESERIES_SCHEMA:
        raise TelemetryError(
            f"unexpected time-series schema {header.get('schema')!r} "
            f"in {path}"
        )
    series: "dict[str, list[tuple[float, Any]]]" = {}
    for line in lines[1:]:
        record = json.loads(line)
        series[record["series"]] = [
            (float(now), value) for now, value in record["points"]
        ]
    return TimeSeriesDump(header, series)
