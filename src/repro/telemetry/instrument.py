"""One-line instrumentation helpers.

``traced`` wraps a method in a span read from ``self.telemetry``;
``observe_breaker`` wires a :class:`~repro.faults.health.CircuitBreaker`
into the hub (trip/half-open/close transitions become counters, open
windows become ``breaker.transition`` spans with accumulated open time).

Both are transparent to errors by construction: the span context
manager records failure status and re-raises unchanged, so the
rollback/teardown paths under test in ``tests/telemetry`` see exactly
the exceptions they would without instrumentation.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Any, Callable, TypeVar

from ..faults.health import BreakerState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.health import CircuitBreaker
    from . import Telemetry

F = TypeVar("F", bound=Callable[..., Any])

__all__ = ["traced", "observe_breaker"]


def traced(name: str, **static_attributes: Any) -> "Callable[[F], F]":
    """Wrap a method in a span named ``name``.

    The receiver must expose a ``telemetry`` attribute (a
    :class:`~repro.telemetry.Telemetry` hub or ``None``).  With no hub,
    or a disabled one, the call costs one attribute read.
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            telemetry = getattr(self, "telemetry", None)
            if telemetry is None or not telemetry.enabled:
                return fn(self, *args, **kwargs)
            with telemetry.tracer.span(name, **static_attributes):
                return fn(self, *args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def observe_breaker(
    breaker: "CircuitBreaker", telemetry: "Telemetry"
) -> None:
    """Install a transition observer on ``breaker`` that feeds the hub.

    Every trip to OPEN counts ``breaker.opens{server}``; when the
    quarantine ends (OPEN -> HALF_OPEN probe or OPEN -> CLOSED reset)
    the open window's simulated duration is added to
    ``breaker.open_time_s{server}`` and emitted as a
    ``breaker.transition`` span covering the window.
    """
    opened_at: "dict[str, float]" = {}

    def on_transition(
        server_id: str, old: BreakerState, new: BreakerState, now: float
    ) -> None:
        if new is BreakerState.OPEN and old is not BreakerState.OPEN:
            telemetry.metrics.count("breaker.opens", server=server_id)
            opened_at[server_id] = now
        elif old is BreakerState.OPEN and new is not BreakerState.OPEN:
            start = opened_at.pop(server_id, now)
            telemetry.metrics.count(
                "breaker.open_time_s", now - start, server=server_id
            )
            telemetry.tracer.emit(
                "breaker.transition",
                start_s=start,
                end_s=now,
                attributes={
                    "server": server_id,
                    "from": old.value,
                    "to": new.value,
                    "open_s": now - start,
                },
            )

    breaker.on_transition = on_transition
