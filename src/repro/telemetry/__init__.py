"""Deterministic, zero-dependency observability for the negotiation stack.

Three layers behind one :class:`Telemetry` hub:

* **tracing** (:mod:`repro.telemetry.tracer`) — nested spans with a
  span per negotiation step (paper §4 steps 1–6), one child span per
  admission attempt, plus journal appends/replays, lease reaps, breaker
  windows, adaptation switches and playout heartbeats.  Timestamps come
  from the injected :class:`~repro.util.clock.ManualClock` and ids from
  a seeded RNG, so traces are byte-reproducible;
* **metrics** (:mod:`repro.telemetry.metrics`) — catalog-validated
  counters, gauges and fixed-bucket histograms
  (:mod:`repro.telemetry.catalog` is the only place names are born);
* **export** (:mod:`repro.telemetry.export`) — in-memory and JSONL span
  exporters plus text renderers; ``python -m repro trace`` and
  ``python -m repro stats`` drive them from the CLI.

Instrumented components take an optional hub and default to the shared
*disabled* hub, whose every operation is a cheap no-op — the seed
behaviour of the library is unchanged until a deployment opts in.
"""

from __future__ import annotations

from typing import Any

from ..util.clock import ManualClock
from .catalog import CATALOG, METRICS, MetricKind, MetricSpec, metric_names
from .export import (
    InMemorySpanExporter,
    JsonlSpanExporter,
    read_spans_jsonl,
    render_span_tree,
)
from .instrument import observe_breaker, traced
from .metrics import (
    HistogramState,
    MetricsRegistry,
    format_metric_key,
    parse_metric_key,
)
from .profiler import (
    CriticalPath,
    ProfileReport,
    extract_critical_paths,
    folded_stacks,
    profile_spans,
    write_flamegraph,
)
from .report import (
    AttemptSummary,
    NegotiationReport,
    StepSummary,
    reconcile_journal,
)
from .slo import (
    BurnAlert,
    BurnRatePolicy,
    EventSelector,
    SloReport,
    SloResult,
    SloSpec,
    default_slos,
    evaluate_slos,
)
from .spans import Span, SpanStatus
from .timeseries import (
    FlightRecorder,
    TimeSeriesDump,
    read_timeseries_jsonl,
)
from .tracer import NULL_SPAN, SpanExporter, Tracer

__all__ = [
    "CATALOG",
    "METRICS",
    "MetricKind",
    "MetricSpec",
    "metric_names",
    "InMemorySpanExporter",
    "JsonlSpanExporter",
    "read_spans_jsonl",
    "render_span_tree",
    "observe_breaker",
    "traced",
    "HistogramState",
    "MetricsRegistry",
    "format_metric_key",
    "parse_metric_key",
    "CriticalPath",
    "ProfileReport",
    "extract_critical_paths",
    "folded_stacks",
    "profile_spans",
    "write_flamegraph",
    "BurnAlert",
    "BurnRatePolicy",
    "EventSelector",
    "SloReport",
    "SloResult",
    "SloSpec",
    "default_slos",
    "evaluate_slos",
    "FlightRecorder",
    "TimeSeriesDump",
    "read_timeseries_jsonl",
    "AttemptSummary",
    "NegotiationReport",
    "StepSummary",
    "reconcile_journal",
    "Span",
    "SpanStatus",
    "NULL_SPAN",
    "SpanExporter",
    "Tracer",
    "Telemetry",
]


class Telemetry:
    """One tracer + one metrics registry sharing a clock and a seed."""

    def __init__(
        self,
        *,
        clock: ManualClock,
        seed: int = 0,
        exporters: "tuple[SpanExporter, ...]" = (),
        enabled: bool = True,
    ) -> None:
        self.clock = clock
        self.seed = seed
        self.enabled = enabled
        self.tracer = Tracer(
            clock=clock, seed=seed, exporters=exporters, enabled=enabled
        )
        self.metrics = MetricsRegistry(enabled=enabled)

    # -- convenience delegates (the one-line call sites) ---------------------------

    def span(self, name: str, **attributes: Any) -> Any:
        return self.tracer.span(name, **attributes)

    def count(self, name: str, amount: float = 1.0, **labels: str) -> None:
        self.metrics.count(name, amount, **labels)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def annotate(self, **attributes: Any) -> None:
        self.tracer.annotate(**attributes)

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The shared inert hub: every span/count is a no-op.  One
        instance serves the whole process — it holds no state."""
        return _DISABLED


_DISABLED = Telemetry(clock=ManualClock(), enabled=False)
