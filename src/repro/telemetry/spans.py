"""Trace spans: the unit of the negotiation timeline.

A :class:`Span` is one timed operation — a negotiation step, an
admission attempt, a journal append — with a deterministic identity:
ids come from the tracer's seeded RNG, timestamps from the injected
:class:`~repro.util.clock.ManualClock`, and the monotonically
increasing ``sequence`` fixes a total order even among zero-duration
spans.  Serialization is canonical JSON (sorted keys, compact
separators) so two same-seed runs produce byte-identical JSONL.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..util.errors import TelemetryError

__all__ = ["Span", "SpanStatus"]


class SpanStatus:
    """String constants for :attr:`Span.status` (no enum: the span is
    serialized verbatim and compared byte-for-byte)."""

    OK = "ok"
    ERROR = "error"


@dataclass(slots=True)
class Span:
    """One timed, attributed operation in a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: "str | None"
    start_s: float
    end_s: "float | None" = None
    status: str = SpanStatus.OK
    sequence: int = 0
    attributes: "dict[str, Any]" = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Simulated duration; 0.0 while the span is still open."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_attributes(self, attributes: "Mapping[str, Any]") -> None:
        self.attributes.update(attributes)

    # -- canonical serialization ---------------------------------------------------

    def to_dict(self) -> "dict[str, Any]":
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "status": self.status,
            "sequence": self.sequence,
            "attributes": dict(self.attributes),
        }

    def to_json_line(self) -> str:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any]") -> "Span":
        try:
            return cls(
                name=str(data["name"]),
                trace_id=str(data["trace_id"]),
                span_id=str(data["span_id"]),
                parent_id=(
                    None if data["parent_id"] is None
                    else str(data["parent_id"])
                ),
                start_s=float(data["start_s"]),
                end_s=(
                    None if data["end_s"] is None else float(data["end_s"])
                ),
                status=str(data["status"]),
                sequence=int(data["sequence"]),
                attributes=dict(data["attributes"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise TelemetryError(f"malformed span record: {error}") from error

    @classmethod
    def from_json_line(cls, line: str) -> "Span":
        try:
            data = json.loads(line)
        except ValueError as error:
            raise TelemetryError(
                f"span line is not valid JSON: {error}"
            ) from error
        if not isinstance(data, dict):
            raise TelemetryError("span line must decode to an object")
        return cls.from_dict(data)
