"""Declarative SLOs with multi-window burn-rate alerting.

An SLO here is exactly the SRE-workbook object, evaluated over the
:class:`~repro.telemetry.timeseries.FlightRecorder`'s deterministic
time series instead of a wall-clock TSDB:

* a **ratio** SLO counts bad events against total events (selected
  from catalog counters by label), e.g. *≥97% of terminal verdicts are
  served, not shed/FAILEDTRYLATER*;
* a **quantile** SLO grades each sampling interval good/bad by a
  windowed histogram quantile, e.g. *p99 verdict wait ≤ 30 simulated
  seconds*;
* a **zero** SLO demands two counter families balance at end of run —
  the leak-freedom invariant (every reserved stream/flow released).

The error budget is the classic ``1 - objective`` fraction; the **burn
rate** over a window is the observed bad fraction divided by the
allowed fraction (burn 1.0 = spending budget exactly at the sustainable
pace).  An alert fires only when *both* the long and the short window
of a :class:`BurnRatePolicy` exceed its threshold — the long window
filters blips, the short window makes the alert reset quickly once the
incident ends.  Windows are simulated seconds scaled to the sim's
horizons (minutes, not hours), but the arithmetic is the standard
multi-window, multi-burn-rate construction.

Everything here is a pure function of the recorder's contents, so the
``repro slo`` verdict and report are byte-reproducible from the run
seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..util.errors import TelemetryError
from ..util.tables import render_table
from .catalog import CATALOG, MetricKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .timeseries import FlightRecorder

__all__ = [
    "EventSelector",
    "BurnRatePolicy",
    "SloSpec",
    "BurnAlert",
    "SloResult",
    "SloReport",
    "evaluate_slos",
    "default_slos",
    "DEFAULT_BURN_POLICIES",
]


@dataclass(frozen=True, slots=True)
class EventSelector:
    """A family of counter series: a catalog metric, optionally pinned
    to specific label values (empty = every label value emitted)."""

    metric: str
    labels: "tuple[str, ...]" = ()

    def __post_init__(self) -> None:
        spec = CATALOG.get(self.metric)
        if spec is None:
            raise TelemetryError(
                f"SLO selector metric {self.metric!r} is not in the "
                "telemetry catalog"
            )
        if spec.kind is not MetricKind.COUNTER:
            raise TelemetryError(
                f"SLO selectors count events; {self.metric!r} is a "
                f"{spec.kind.value}"
            )
        if self.labels and spec.label is None:
            raise TelemetryError(
                f"metric {self.metric!r} takes no label, but selector "
                f"pins {self.labels!r}"
            )


@dataclass(frozen=True, slots=True)
class BurnRatePolicy:
    """One multi-window alert rule: fire when the burn rate over both
    the long and the short trailing window reaches ``threshold``."""

    long_s: float
    short_s: float
    threshold: float
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.short_s <= 0 or self.long_s <= self.short_s:
            raise TelemetryError(
                f"burn windows must satisfy 0 < short < long, got "
                f"short={self.short_s} long={self.long_s}"
            )
        if self.threshold <= 0:
            raise TelemetryError(
                f"burn threshold must be positive, got {self.threshold}"
            )


# Scaled-down analogue of the SRE-workbook 1h/5m + 6h/30m pairs for
# 120-second load horizons: the page pair spots a fast burn inside two
# long windows, the ticket pair a slow sustained burn.
DEFAULT_BURN_POLICIES: "tuple[BurnRatePolicy, ...]" = (
    BurnRatePolicy(long_s=30.0, short_s=5.0, threshold=8.0,
                   severity="page"),
    BurnRatePolicy(long_s=90.0, short_s=15.0, threshold=3.0,
                   severity="ticket"),
)


@dataclass(frozen=True, slots=True)
class SloSpec:
    """One service-level objective over recorder time series.

    ``kind`` selects the evaluation:

    * ``"ratio"`` — ``bad`` / ``total`` event selectors;
    * ``"quantile"`` — ``metric`` names a catalog histogram; an
      interval is bad when its windowed ``quantile`` exceeds
      ``threshold_s``;
    * ``"zero"`` — ``acquired`` minus ``released`` must be zero at end
      of run (burn policies do not apply).
    """

    name: str
    description: str
    objective: float
    kind: str
    bad: "tuple[EventSelector, ...]" = ()
    total: "tuple[EventSelector, ...]" = ()
    metric: "str | None" = None
    quantile: float = 0.99
    threshold_s: float = 0.0
    acquired: "tuple[EventSelector, ...]" = ()
    released: "tuple[EventSelector, ...]" = ()
    policies: "tuple[BurnRatePolicy, ...]" = DEFAULT_BURN_POLICIES

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise TelemetryError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.kind not in ("ratio", "quantile", "zero"):
            raise TelemetryError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "ratio" and (not self.bad or not self.total):
            raise TelemetryError(
                f"ratio SLO {self.name!r} needs bad and total selectors"
            )
        if self.kind == "quantile":
            spec = CATALOG.get(self.metric or "")
            if spec is None or spec.kind is not MetricKind.HISTOGRAM:
                raise TelemetryError(
                    f"quantile SLO {self.name!r} needs a catalog "
                    f"histogram, got {self.metric!r}"
                )
        if self.kind == "zero" and (not self.acquired or not self.released):
            raise TelemetryError(
                f"zero SLO {self.name!r} needs acquired and released "
                "selectors"
            )

    @property
    def budget(self) -> float:
        """Allowed bad fraction: ``1 - objective``."""
        return 1.0 - self.objective


@dataclass(frozen=True, slots=True)
class BurnAlert:
    """One multi-window alert firing."""

    slo: str
    severity: str
    fired_at_s: float
    long_s: float
    short_s: float
    long_burn: float
    short_burn: float
    threshold: float

    def as_dict(self) -> "dict[str, Any]":
        return {
            "slo": self.slo,
            "severity": self.severity,
            "fired_at_s": self.fired_at_s,
            "long_s": self.long_s,
            "short_s": self.short_s,
            "long_burn": round(self.long_burn, 6),
            "short_burn": round(self.short_burn, 6),
            "threshold": self.threshold,
        }


@dataclass(slots=True)
class SloResult:
    """One SLO's verdict over a whole run."""

    spec: SloSpec
    total_events: float
    bad_events: float
    alerts: "tuple[BurnAlert, ...]" = ()
    worst_burn: float = 0.0

    @property
    def bad_fraction(self) -> float:
        return self.bad_events / self.total_events if self.total_events else 0.0

    @property
    def budget_spent(self) -> float:
        """Fraction of the error budget consumed (1.0 = exhausted)."""
        allowed = self.spec.budget * self.total_events
        if allowed <= 0:
            return 1.0 if self.bad_events else 0.0
        return self.bad_events / allowed

    @property
    def paged(self) -> bool:
        return any(alert.severity == "page" for alert in self.alerts)

    @property
    def breached(self) -> bool:
        """Out of SLO: a page-severity alert fired or the whole-run
        error budget is exhausted."""
        return self.paged or self.budget_spent >= 1.0

    def as_dict(self) -> "dict[str, Any]":
        return {
            "name": self.spec.name,
            "kind": self.spec.kind,
            "objective": self.spec.objective,
            "total_events": self.total_events,
            "bad_events": self.bad_events,
            "bad_fraction": round(self.bad_fraction, 6),
            "budget_spent": round(self.budget_spent, 6),
            "worst_burn": round(self.worst_burn, 6),
            "alerts": [alert.as_dict() for alert in self.alerts],
            "breached": self.breached,
        }


@dataclass(slots=True)
class SloReport:
    """The full scorecard ``repro slo`` prints and CI archives."""

    results: "tuple[SloResult, ...]" = field(default_factory=tuple)

    @property
    def breached(self) -> bool:
        return any(result.breached for result in self.results)

    def as_dict(self) -> "dict[str, Any]":
        return {
            "schema": "repro.slo-report/v1",
            "breached": self.breached,
            "slos": [result.as_dict() for result in self.results],
        }

    def to_json(self) -> str:
        return json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        )

    def render(self) -> str:
        rows = []
        for result in self.results:
            rows.append((
                result.spec.name,
                result.spec.kind,
                f"{result.spec.objective:.3f}",
                f"{result.bad_events:g}/{result.total_events:g}",
                f"{result.budget_spent * 100:.1f}%",
                f"{result.worst_burn:.2f}x",
                str(len(result.alerts)),
                "BREACHED" if result.breached else "ok",
            ))
        return render_table(
            ("slo", "kind", "objective", "bad/total", "budget spent",
             "worst burn", "alerts", "verdict"),
            rows,
            title="SLO scorecard",
        )


# -- evaluation --------------------------------------------------------------------


def _sum_selectors_at(
    recorder: "FlightRecorder",
    selectors: "tuple[EventSelector, ...]",
    when: float,
) -> float:
    """Summed cumulative count across selected series at tick ``when``
    (last sample at or before it; 0 before the first sample)."""
    total = 0.0
    for selector in selectors:
        spec = CATALOG[selector.metric]
        if spec.label is None:
            labels: "tuple[str | None, ...]" = (None,)
        elif selector.labels:
            labels = selector.labels
        else:
            labels = recorder.label_values(selector.metric) or ()
        for label in labels:
            series = recorder.counter_series(selector.metric, label)
            value = 0.0
            for now, cumulative in series:
                if now <= when + 1e-12:
                    value = cumulative
                else:
                    break
            total += value
    return total


def _window_bad_fraction(
    recorder: "FlightRecorder",
    spec: SloSpec,
    start_s: float,
    end_s: float,
) -> float:
    """Bad fraction of a ratio SLO over ``(start_s, end_s]``; windows
    with no traffic burn nothing."""
    bad = (_sum_selectors_at(recorder, spec.bad, end_s)
           - _sum_selectors_at(recorder, spec.bad, start_s))
    total = (_sum_selectors_at(recorder, spec.total, end_s)
             - _sum_selectors_at(recorder, spec.total, start_s))
    if total <= 0:
        return 0.0
    return max(0.0, bad) / total


def _quantile_interval_verdicts(
    recorder: "FlightRecorder", spec: SloSpec
) -> "tuple[tuple[float, bool], ...]":
    """Per-tick (time, is_bad) for a quantile SLO: the interval ending
    at each tick is bad when its delta-histogram quantile exceeds the
    threshold.  Idle intervals (no new observations) are good."""
    assert spec.metric is not None
    ticks = recorder.tick_times()
    verdicts: "list[tuple[float, bool]]" = []
    for previous, now in zip(ticks, ticks[1:]):
        window = recorder.window_histogram(spec.metric, previous, now)
        if window.total <= 0:
            verdicts.append((now, False))
            continue
        verdicts.append(
            (now, window.quantile(spec.quantile) > spec.threshold_s)
        )
    return tuple(verdicts)


def _burn_alerts(
    spec: SloSpec,
    burn_at: "Any",
    ticks: "tuple[float, ...]",
) -> "tuple[tuple[BurnAlert, ...], float]":
    """Scan every tick against every policy; ``burn_at(start, end)``
    answers the bad fraction over a window.  Returns the first firing
    per policy plus the worst long-window burn seen."""
    alerts: "list[BurnAlert]" = []
    worst = 0.0
    budget = spec.budget
    for policy in spec.policies:
        fired = None
        for now in ticks:
            if now - ticks[0] + 1e-12 < policy.long_s:
                continue  # wait for a full long window
            long_burn = burn_at(now - policy.long_s, now) / budget
            worst = max(worst, long_burn)
            if long_burn < policy.threshold:
                continue
            short_burn = burn_at(now - policy.short_s, now) / budget
            if short_burn < policy.threshold:
                continue
            fired = BurnAlert(
                slo=spec.name,
                severity=policy.severity,
                fired_at_s=now,
                long_s=policy.long_s,
                short_s=policy.short_s,
                long_burn=long_burn,
                short_burn=short_burn,
                threshold=policy.threshold,
            )
            break
        if fired is not None:
            alerts.append(fired)
    return tuple(alerts), worst


def _evaluate_ratio(
    recorder: "FlightRecorder", spec: SloSpec
) -> SloResult:
    ticks = recorder.tick_times()
    if not ticks:
        return SloResult(spec=spec, total_events=0.0, bad_events=0.0)
    end = ticks[-1]
    start = ticks[0]
    total = (_sum_selectors_at(recorder, spec.total, end)
             - _sum_selectors_at(recorder, spec.total, start))
    bad = (_sum_selectors_at(recorder, spec.bad, end)
           - _sum_selectors_at(recorder, spec.bad, start))

    def burn_at(window_start: float, window_end: float) -> float:
        return _window_bad_fraction(recorder, spec, window_start, window_end)

    alerts, worst = _burn_alerts(spec, burn_at, ticks)
    return SloResult(
        spec=spec,
        total_events=total,
        bad_events=max(0.0, bad),
        alerts=alerts,
        worst_burn=worst,
    )


def _evaluate_quantile(
    recorder: "FlightRecorder", spec: SloSpec
) -> SloResult:
    verdicts = _quantile_interval_verdicts(recorder, spec)
    ticks = recorder.tick_times()
    if not verdicts:
        return SloResult(spec=spec, total_events=0.0, bad_events=0.0)

    def burn_at(window_start: float, window_end: float) -> float:
        in_window = [
            bad for now, bad in verdicts
            if window_start + 1e-12 < now <= window_end + 1e-12
        ]
        if not in_window:
            return 0.0
        return sum(in_window) / len(in_window)

    alerts, worst = _burn_alerts(spec, burn_at, ticks)
    return SloResult(
        spec=spec,
        total_events=float(len(verdicts)),
        bad_events=float(sum(bad for _, bad in verdicts)),
        alerts=alerts,
        worst_burn=worst,
    )


def _evaluate_zero(
    recorder: "FlightRecorder", spec: SloSpec
) -> SloResult:
    ticks = recorder.tick_times()
    if not ticks:
        return SloResult(spec=spec, total_events=0.0, bad_events=0.0)
    end = ticks[-1]
    acquired = _sum_selectors_at(recorder, spec.acquired, end)
    released = _sum_selectors_at(recorder, spec.released, end)
    leaked = acquired - released
    return SloResult(
        spec=spec,
        total_events=acquired,
        bad_events=abs(leaked),
    )


def evaluate_slos(
    recorder: "FlightRecorder",
    slos: "tuple[SloSpec, ...] | None" = None,
) -> SloReport:
    """Grade a recorded run against the SLO set (default: the shipped
    3-server deployment set)."""
    if slos is None:
        slos = default_slos()
    results = []
    for spec in slos:
        if spec.kind == "ratio":
            results.append(_evaluate_ratio(recorder, spec))
        elif spec.kind == "quantile":
            results.append(_evaluate_quantile(recorder, spec))
        else:
            results.append(_evaluate_zero(recorder, spec))
    return SloReport(results=tuple(results))


def default_slos() -> "tuple[SloSpec, ...]":
    """The shipped SLO set for the 3-server reference deployment.

    Objectives are calibrated against the seeded nominal load cell
    (multiplier 1.0 of ``LoadSpec`` defaults): it passes every SLO with
    budget to spare, while a mid-run ``server-brownout`` at the same
    arrival rate pages on the served-rate burn.
    """
    return (
        SloSpec(
            name="served-verdicts",
            description="terminal verdicts that are real answers, not "
                        "FAILEDTRYLATER deflections or gate sheds",
            objective=0.95,
            kind="ratio",
            bad=(
                EventSelector("negotiation.outcomes",
                              ("FAILEDTRYLATER",)),
                EventSelector("storm.gate.decisions", ("shed",)),
            ),
            total=(
                EventSelector("negotiation.outcomes"),
                EventSelector("storm.gate.decisions", ("shed",)),
            ),
        ),
        SloSpec(
            name="admission-health",
            description="reservation calls that are refused after "
                        "exhausting their retry budget",
            objective=0.90,
            kind="ratio",
            bad=(EventSelector("admission.refusals"),),
            total=(EventSelector("admission.attempts"),),
        ),
        SloSpec(
            name="verdict-latency-p99",
            description="p99 simulated wait from submission to terminal "
                        "verdict, per sampling interval",
            objective=0.90,
            kind="quantile",
            metric="service.verdict.wait_s",
            quantile=0.99,
            threshold_s=30.0,
        ),
        SloSpec(
            name="zero-leak",
            description="every reserved stream and network flow is "
                        "released by end of run",
            objective=0.999,
            kind="zero",
            acquired=(
                EventSelector("server.streams.reserved"),
                EventSelector("network.flows.reserved"),
            ),
            released=(
                EventSelector("server.streams.released"),
                EventSelector("network.flows.released"),
            ),
        ),
    )
