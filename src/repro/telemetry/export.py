"""Span exporters and the text renderer for span trees.

Two exporters: in-memory (inspection, the ``repro trace`` tree) and
JSONL (one canonical JSON object per line — the byte-reproducible
artifact the CI determinism check diffs).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

from ..util.errors import TelemetryError
from .spans import Span, SpanStatus

__all__ = [
    "InMemorySpanExporter",
    "JsonlSpanExporter",
    "read_spans_jsonl",
    "render_span_tree",
]


class InMemorySpanExporter:
    """Collects every finished span in export (i.e. end) order."""

    def __init__(self) -> None:
        self.spans: "list[Span]" = []

    def export(self, span: Span) -> None:
        self.spans.append(span)

    def by_trace(self) -> "dict[str, list[Span]]":
        """Spans grouped by trace, traces in first-finished order."""
        grouped: "dict[str, list[Span]]" = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def clear(self) -> None:
        self.spans.clear()


class JsonlSpanExporter:
    """Writes one canonical JSON line per finished span."""

    def __init__(self, path: "Union[str, Path]") -> None:
        self.path = Path(path)
        self._handle: "io.TextIOWrapper | None" = None
        self.exported = 0

    def export(self, span: Span) -> None:
        if self._handle is None:
            self._handle = self.path.open("w", encoding="utf-8", newline="\n")
        self._handle.write(span.to_json_line() + "\n")
        self._handle.flush()
        self.exported += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSpanExporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_spans_jsonl(path: "Union[str, Path]") -> "list[Span]":
    """Round-trip reader for the JSONL exporter's output."""
    spans = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            spans.append(Span.from_json_line(line))
    return spans


def _format_span(span: Span) -> str:
    parts = [span.name]
    if span.duration_s > 0:
        parts.append(f"({span.duration_s:g}s)")
    if span.status != SpanStatus.OK:
        parts.append(f"status={span.status}")
    for key in sorted(span.attributes):
        value = span.attributes[key]
        parts.append(f"{key}={value}")
    return " ".join(parts)


def render_span_tree(spans: "list[Span] | tuple[Span, ...]") -> str:
    """ASCII tree of one or more traces, children under parents in
    sequence order."""
    if not spans:
        return "(no spans)"
    by_id = {span.span_id: span for span in spans}
    children: "dict[str | None, list[Span]]" = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: s.sequence)
    roots = children.get(None, [])
    if not roots:
        raise TelemetryError("span set has no root (orphan parent ids)")

    lines: "list[str]" = []

    def walk(span: Span, prefix: str, is_last: bool, top: bool) -> None:
        if top:
            lines.append(_format_span(span))
            child_prefix = ""
        else:
            connector = "`-- " if is_last else "|-- "
            lines.append(prefix + connector + _format_span(span))
            child_prefix = prefix + ("    " if is_last else "|   ")
        kids = children.get(span.span_id, [])
        for index, kid in enumerate(kids):
            walk(kid, child_prefix, index == len(kids) - 1, False)

    for index, root in enumerate(roots):
        if index:
            lines.append("")
        lines.append(f"trace {root.trace_id} t={root.start_s:g}s")
        walk(root, "", True, True)
    return "\n".join(lines)
