"""The metrics registry: counters, gauges, fixed-bucket histograms.

Instruments live in the catalog (:mod:`repro.telemetry.catalog`); the
registry validates every emission against it, so an unregistered name
or a kind mismatch raises :class:`~repro.util.errors.TelemetryError`
instead of forking a silent time series.  Snapshots are plain dicts
with flat ``name{label=value}`` keys, rendered deterministically
(sorted) so two same-seed runs serialize byte-identically.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from ..util.errors import TelemetryError
from ..util.tables import render_table
from .catalog import CATALOG, MetricKind, MetricSpec

__all__ = [
    "HistogramState",
    "MetricsRegistry",
    "format_metric_key",
    "parse_metric_key",
]


def format_metric_key(name: str, label_value: "str | None") -> str:
    """Flat snapshot key: ``name`` or ``name{label=value}``."""
    if label_value is None:
        return name
    spec = CATALOG[name]
    return f"{name}{{{spec.label}={label_value}}}"


def parse_metric_key(key: str) -> "tuple[str, str | None]":
    """Invert :func:`format_metric_key`: ``(name, label_value)``.

    Catalog names never contain ``{``, so the first brace splits name
    from label unambiguously — a labelled key can never collide with an
    unlabelled key of another metric.  The label *value* may contain
    ``=``, ``{`` or ``}``; only the first ``=`` inside the braces and
    the final ``}`` are structural.
    """
    brace = key.find("{")
    if brace < 0:
        return key, None
    if not key.endswith("}"):
        raise TelemetryError(f"malformed metric key {key!r}")
    inner = key[brace + 1:-1]
    _label, sep, value = inner.partition("=")
    if not sep:
        raise TelemetryError(f"malformed metric key {key!r}")
    return key[:brace], value


class HistogramState:
    """Fixed-bucket histogram: counts per upper bound + overflow."""

    __slots__ = ("buckets", "counts", "overflow", "total", "sum")

    def __init__(self, buckets: "tuple[float, ...]") -> None:
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.overflow = 0
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.total += 1
        self.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.overflow += 1

    def quantile(self, q: float) -> float:
        """Deterministic quantile estimate from the fixed buckets.

        Linear interpolation within the bucket that holds the q-rank;
        an empty histogram answers ``0.0`` and any rank that lands in
        the overflow region clamps to the highest bound (the histogram
        cannot know more than its buckets).  Monotone in ``q`` and a
        pure function of the counts, so same-seed runs serialize the
        same estimates byte-for-byte.
        """
        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile must be in [0, 1], got {q!r}")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        cumulative = 0
        for index, bound in enumerate(self.buckets):
            count = self.counts[index]
            if count == 0:
                continue
            previous = cumulative
            cumulative += count
            if rank <= cumulative:
                lower = self.buckets[index - 1] if index > 0 else bound
                fraction = (rank - previous) / count
                # min() guards the last float rounding step: lower +
                # (bound - lower) can land one ulp above bound.
                return min(bound, lower + (bound - lower) * min(1.0, fraction))
        return self.buckets[-1] if self.buckets else 0.0

    def as_dict(self) -> "dict[str, Any]":
        data: "dict[str, Any]" = {
            "buckets": {
                f"{bound:g}": count
                for bound, count in zip(self.buckets, self.counts)
            },
            "overflow": self.overflow,
            "count": self.total,
            "sum": self.sum,
        }
        return data


class MetricsRegistry:
    """Catalog-validated counters, gauges and histograms.

    A disabled registry (``enabled=False``) accepts every emission as a
    no-op — the shared hub handed to uninstrumented deployments.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: "dict[str, float]" = {}
        self._gauges: "dict[str, float]" = {}
        self._histograms: "dict[str, HistogramState]" = {}

    # -- validation ----------------------------------------------------------------

    @staticmethod
    def _spec(name: str, kind: MetricKind) -> MetricSpec:
        spec = CATALOG.get(name)
        if spec is None:
            raise TelemetryError(
                f"metric {name!r} is not in the catalog; declare it in "
                "repro.telemetry.catalog first"
            )
        if spec.kind is not kind:
            raise TelemetryError(
                f"metric {name!r} is a {spec.kind.value}, not a {kind.value}"
            )
        return spec

    @staticmethod
    def _key(spec: MetricSpec, label: "str | None") -> str:
        if spec.label is None and label is not None:
            raise TelemetryError(
                f"metric {spec.name!r} takes no label, got {label!r}"
            )
        if spec.label is not None and label is None:
            raise TelemetryError(
                f"metric {spec.name!r} requires the {spec.label!r} label"
            )
        return format_metric_key(spec.name, label)

    # -- emission ------------------------------------------------------------------

    def count(
        self, name: str, amount: float = 1.0, **labels: str
    ) -> None:
        """Increment a counter (``labels`` is the single declared label,
        e.g. ``count("breaker.opens", server="server-a")``)."""
        if not self.enabled:
            return
        key = self._key(
            self._spec(name, MetricKind.COUNTER), self._label_of(labels)
        )
        self._counters[key] = self._counters.get(key, 0.0) + amount

    def gauge_set(self, name: str, value: float, **labels: str) -> None:
        if not self.enabled:
            return
        key = self._key(
            self._spec(name, MetricKind.GAUGE), self._label_of(labels)
        )
        self._gauges[key] = value

    def gauge_add(self, name: str, delta: float, **labels: str) -> None:
        if not self.enabled:
            return
        key = self._key(
            self._spec(name, MetricKind.GAUGE), self._label_of(labels)
        )
        self._gauges[key] = self._gauges.get(key, 0.0) + delta

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        spec = self._spec(name, MetricKind.HISTOGRAM)
        state = self._histograms.get(name)
        if state is None:
            state = self._histograms[name] = HistogramState(spec.buckets)
        state.observe(value)

    @staticmethod
    def _label_of(labels: "dict[str, str]") -> "str | None":
        if not labels:
            return None
        if len(labels) > 1:
            raise TelemetryError(
                f"at most one label per metric, got {sorted(labels)}"
            )
        return str(next(iter(labels.values())))

    # -- reading -------------------------------------------------------------------

    def counter_value(self, name: str, **labels: str) -> float:
        key = self._key(
            self._spec(name, MetricKind.COUNTER), self._label_of(labels)
        )
        return self._counters.get(key, 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter over all its label values."""
        self._spec(name, MetricKind.COUNTER)
        prefix = f"{name}{{"
        return sum(
            value for key, value in self._counters.items()
            if key == name or key.startswith(prefix)
        )

    def gauge_value(self, name: str, **labels: str) -> float:
        key = self._key(
            self._spec(name, MetricKind.GAUGE), self._label_of(labels)
        )
        return self._gauges.get(key, 0.0)

    def histogram(self, name: str) -> "HistogramState | None":
        self._spec(name, MetricKind.HISTOGRAM)
        return self._histograms.get(name)

    def snapshot(self) -> "dict[str, Any]":
        """Deterministic full dump (sorted flat keys)."""
        return {
            "counters": {
                key: self._counters[key] for key in sorted(self._counters)
            },
            "gauges": {
                key: self._gauges[key] for key in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }

    def to_json(self) -> str:
        return json.dumps(
            self.snapshot(), sort_keys=True, separators=(",", ":")
        )

    def render(self) -> str:
        """Human-readable snapshot with catalog units."""
        rows = list(self._rows())
        if not rows:
            return "metrics: (none recorded)"
        return render_table(
            ("metric", "value", "unit"), rows, title="metrics snapshot"
        )

    def _rows(self) -> "Iterator[tuple[str, str, str]]":
        for key in sorted(self._counters):
            name = key.split("{", 1)[0]
            value = self._counters[key]
            yield key, f"{value:g}", CATALOG[name].unit
        for key in sorted(self._gauges):
            name = key.split("{", 1)[0]
            yield key, f"{self._gauges[key]:g}", CATALOG[name].unit
        for name in sorted(self._histograms):
            state = self._histograms[name]
            mean = state.sum / state.total if state.total else 0.0
            yield (
                name,
                f"n={state.total} mean={mean:g}",
                CATALOG[name].unit,
            )

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
