"""Cost computation (paper §7).

"To compute the network cost, we assume the existence of a cost table
which stores the cost (per time unit) for each value of throughput.
Since it is not possible to consider all possible values of throughput
(infinite list), only a range of throughput classes are considered.
Similar tables are used to compute the cost to use the server
resources."  Eq. 1:

    CostDoc = CostCop + Σᵢ (CostNetᵢ + CostSerᵢ),
    CostNetᵢ = CostNet_{class(i)} × Dᵢ   (likewise CostSerᵢ)

where ``Dᵢ`` is the playout length of monomedia *i* and ``class(i)`` the
throughput class of its stream.  The guarantee type enters through the
billed rate: guaranteed service bills the peak rate, best-effort the
average (§7: "the type of guarantees, e.g. best-effort or guaranteed
service"), with a configurable tariff discount on top.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..documents.monomedia import Variant
from ..network.qosparams import FlowSpec
from ..network.transport import GuaranteeType
from ..util.errors import ValidationError
from ..util.units import Money, dollars, format_bitrate
from ..util.validation import check_fraction, check_positive

__all__ = [
    "ThroughputClass",
    "CostTable",
    "MonomediaCost",
    "CostBreakdown",
    "CostModel",
    "default_network_table",
    "default_server_table",
    "default_cost_model",
]


@dataclass(frozen=True, slots=True)
class ThroughputClass:
    """One row of a §7 cost table: all rates up to ``ceiling_bps`` are
    billed ``rate_per_second`` dollars per second."""

    ceiling_bps: float
    rate_per_second: float

    def __post_init__(self) -> None:
        check_positive(self.ceiling_bps, "ceiling_bps")
        if self.rate_per_second < 0:
            raise ValidationError(
                f"rate_per_second must be non-negative, got {self.rate_per_second}"
            )

    def __str__(self) -> str:
        return f"<= {format_bitrate(self.ceiling_bps)} @ ${self.rate_per_second}/s"


class CostTable:
    """An ordered list of throughput classes with O(log n) lookup."""

    def __init__(self, classes: Sequence[ThroughputClass]) -> None:
        if not classes:
            raise ValidationError("a cost table needs at least one class")
        ordered = sorted(classes, key=lambda c: c.ceiling_bps)
        ceilings = [c.ceiling_bps for c in ordered]
        if len(set(ceilings)) != len(ceilings):
            raise ValidationError("duplicate class ceilings in cost table")
        rates = [c.rate_per_second for c in ordered]
        if any(b < a for a, b in zip(rates, rates[1:])):
            raise ValidationError(
                "cost must be non-decreasing in throughput class"
            )
        self._classes = tuple(ordered)
        self._ceilings = ceilings

    @property
    def classes(self) -> tuple[ThroughputClass, ...]:
        return self._classes

    def classify(self, rate_bps: float) -> ThroughputClass:
        """The smallest class whose ceiling covers ``rate_bps``."""
        check_positive(rate_bps, "rate_bps")
        index = bisect.bisect_left(self._ceilings, rate_bps)
        if index >= len(self._classes):
            raise ValidationError(
                f"rate {format_bitrate(rate_bps)} exceeds the top throughput "
                f"class ({format_bitrate(self._ceilings[-1])})"
            )
        return self._classes[index]

    def cost_per_second(self, rate_bps: float) -> float:
        return self.classify(rate_bps).rate_per_second

    def __len__(self) -> int:
        return len(self._classes)


@dataclass(frozen=True, slots=True)
class MonomediaCost:
    """One Eq. 1 summand, kept decomposed for the cost window."""

    monomedia_id: str
    variant_id: str
    billed_rate_bps: float
    duration_s: float
    network_cost: Money
    server_cost: Money

    @property
    def total(self) -> Money:
        return self.network_cost + self.server_cost


@dataclass(frozen=True, slots=True)
class CostBreakdown:
    """The full Eq. 1 decomposition of one system offer's price."""

    items: tuple[MonomediaCost, ...]
    copyright_cost: Money

    @property
    def network_total(self) -> Money:
        total = Money.zero()
        for item in self.items:
            total = total + item.network_cost
        return total

    @property
    def server_total(self) -> Money:
        total = Money.zero()
        for item in self.items:
            total = total + item.server_cost
        return total

    @property
    def total(self) -> Money:
        """CostDoc = CostCop + Σ (CostNetᵢ + CostSerᵢ)."""
        return self.copyright_cost + self.network_total + self.server_total

    def rows(self) -> list[tuple]:
        """Table rows for rendering (monomedia, variant, rate, net, server)."""
        return [
            (
                item.monomedia_id,
                item.variant_id,
                format_bitrate(item.billed_rate_bps),
                str(item.network_cost),
                str(item.server_cost),
                str(item.total),
            )
            for item in self.items
        ]


@dataclass(frozen=True, slots=True)
class CostModel:
    """Network + server cost tables plus tariff policy."""

    network: CostTable
    server: CostTable
    best_effort_discount: float = 0.5  # fraction knocked off the tariff

    def __post_init__(self) -> None:
        check_fraction(self.best_effort_discount, "best_effort_discount")

    def monomedia_cost(
        self,
        variant: Variant,
        spec: FlowSpec,
        guarantee: GuaranteeType = GuaranteeType.GUARANTEED,
    ) -> MonomediaCost:
        """Cost of delivering one variant for its playout duration."""
        billed_rate = guarantee.billable_rate(spec)
        scale = (
            1.0
            if guarantee is GuaranteeType.GUARANTEED
            else 1.0 - self.best_effort_discount
        )
        duration = variant.duration_s
        network = dollars(
            self.network.cost_per_second(billed_rate) * duration * scale
        )
        server = dollars(
            self.server.cost_per_second(billed_rate) * duration * scale
        )
        return MonomediaCost(
            monomedia_id=variant.monomedia_id,
            variant_id=variant.variant_id,
            billed_rate_bps=billed_rate,
            duration_s=duration,
            network_cost=network,
            server_cost=server,
        )

    def document_cost(
        self,
        variants_and_specs: Iterable[tuple[Variant, FlowSpec]],
        copyright_cost: Money,
        guarantee: GuaranteeType = GuaranteeType.GUARANTEED,
    ) -> CostBreakdown:
        """Eq. 1 over a complete system offer."""
        items = tuple(
            self.monomedia_cost(variant, spec, guarantee)
            for variant, spec in variants_and_specs
        )
        return CostBreakdown(items=items, copyright_cost=copyright_cost)


def default_network_table() -> CostTable:
    """Mid-90s flavoured network tariff: ATM class ceilings from 64 kbps
    voice channels up to OC-3, superlinear in rate."""
    return CostTable(
        [
            ThroughputClass(64_000, 0.0002),
            ThroughputClass(256_000, 0.0006),
            ThroughputClass(1_000_000, 0.0015),
            ThroughputClass(2_000_000, 0.003),
            ThroughputClass(4_000_000, 0.006),
            ThroughputClass(8_000_000, 0.012),
            ThroughputClass(16_000_000, 0.024),
            ThroughputClass(34_000_000, 0.055),
            ThroughputClass(155_000_000, 0.25),
            ThroughputClass(622_000_000, 0.9),
        ]
    )


def default_server_table() -> CostTable:
    """Server resource tariff (disk + buffer occupancy scale with rate)."""
    return CostTable(
        [
            ThroughputClass(64_000, 0.0001),
            ThroughputClass(256_000, 0.0003),
            ThroughputClass(1_000_000, 0.0008),
            ThroughputClass(2_000_000, 0.0016),
            ThroughputClass(4_000_000, 0.0032),
            ThroughputClass(8_000_000, 0.0065),
            ThroughputClass(16_000_000, 0.013),
            ThroughputClass(34_000_000, 0.03),
            ThroughputClass(155_000_000, 0.13),
            ThroughputClass(622_000_000, 0.5),
        ]
    )


def default_cost_model() -> CostModel:
    return CostModel(
        network=default_network_table(),
        server=default_server_table(),
        best_effort_discount=0.5,
    )
