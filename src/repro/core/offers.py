"""System offers and user offers (paper §4, Definitions 1 and 2).

* **System offer** — "a set of variants (a variant for each monomedia
  component of the document) and the cost the user should pay."
* **User offer** — "the QoS the system is able to provide and the cost
  ... specified as a MM profile", derived from a system offer by mapping
  each variant to the QoS *presented at the client* (decoder scaling and
  display clamping applied).

Keeping the presented QoS on the system offer (rather than the stored
variant QoS) is what makes the classification honest: a super-colour
stream displayed on a grey screen competes as a grey offer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..documents.media import Language, Medium
from ..documents.monomedia import Variant
from ..documents.quality import (
    AudioQoS,
    GraphicQoS,
    ImageQoS,
    MediaQoS,
    TextQoS,
    VideoQoS,
)
from ..util.errors import OfferError
from ..util.units import Money
from .profiles import MMProfile, TimeProfile

__all__ = ["SystemOffer", "derive_user_offer"]


@dataclass(frozen=True, slots=True)
class SystemOffer:
    """One candidate configuration: a variant per monomedia + its cost.

    ``presented`` holds, per monomedia, the QoS the client machine will
    actually show for the chosen variant.  ``cost`` is the §7 document
    cost of this configuration.
    """

    offer_id: str
    variants: Mapping[str, Variant]
    presented: Mapping[str, MediaQoS]
    cost: Money

    def __post_init__(self) -> None:
        object.__setattr__(self, "variants", dict(self.variants))
        object.__setattr__(self, "presented", dict(self.presented))
        if not self.variants:
            raise OfferError("a system offer needs at least one variant")
        if set(self.variants) != set(self.presented):
            raise OfferError(
                "variants and presented QoS must cover the same monomedia"
            )
        for monomedia_id, variant in self.variants.items():
            if variant.monomedia_id != monomedia_id:
                raise OfferError(
                    f"variant {variant.variant_id!r} keyed under wrong "
                    f"monomedia {monomedia_id!r}"
                )

    # -- views -------------------------------------------------------------------

    @property
    def monomedia_ids(self) -> tuple[str, ...]:
        return tuple(self.variants)

    @property
    def variant_ids(self) -> tuple[str, ...]:
        return tuple(v.variant_id for v in self.variants.values())

    def qos_points(self) -> tuple[MediaQoS, ...]:
        """Presented QoS of every monomedia — the OIF summation input."""
        return tuple(self.presented.values())

    def servers_used(self) -> frozenset[str]:
        return frozenset(v.server_id for v in self.variants.values())

    def variant_for(self, monomedia_id: str) -> Variant:
        try:
            return self.variants[monomedia_id]
        except KeyError:
            raise OfferError(
                f"offer {self.offer_id} covers no monomedia {monomedia_id!r}"
            ) from None

    # -- §5 comparisons -------------------------------------------------------------

    def qos_satisfies(self, bound: MMProfile) -> bool:
        """Every monomedia's presented QoS meets the bound of its medium
        (media the bound does not constrain pass trivially)."""
        for monomedia_id, qos in self.presented.items():
            medium_bound = bound.qos_for(qos.medium)
            if medium_bound is not None and not qos.satisfies(medium_bound):
                return False
        return True

    def qos_violations(self, bound: MMProfile) -> dict[str, tuple[str, ...]]:
        """Violated parameter names per monomedia id."""
        violations: dict[str, tuple[str, ...]] = {}
        for monomedia_id, qos in self.presented.items():
            medium_bound = bound.qos_for(qos.medium)
            if medium_bound is None:
                continue
            bad = qos.violated_parameters(medium_bound)
            if bad:
                violations[monomedia_id] = bad
        return violations

    def cost_within(self, ceiling: Money) -> bool:
        return self.cost <= ceiling

    def __str__(self) -> str:
        quality = ", ".join(
            f"{mid.rsplit('.', 1)[-1]}={qos}" for mid, qos in self.presented.items()
        )
        return f"{self.offer_id}[{quality} @ {self.cost}]"


def _merge_worst(a: MediaQoS, b: MediaQoS) -> MediaQoS:
    """Component-wise worst of two same-medium QoS points (used when a
    document carries several monomedia of one medium and the user offer
    must summarise them in a single per-medium slot)."""
    if type(a) is not type(b):
        raise OfferError(
            f"cannot merge {type(a).__name__} with {type(b).__name__}"
        )
    if isinstance(a, VideoQoS):
        return VideoQoS(
            color=min(a.color, b.color),
            frame_rate=min(a.frame_rate, b.frame_rate),
            resolution=min(a.resolution, b.resolution),
        )
    if isinstance(a, AudioQoS):
        language = a.language if a.language == b.language else Language.NONE
        return AudioQoS(grade=min(a.grade, b.grade), language=language)
    if isinstance(a, (ImageQoS, GraphicQoS)):
        return type(a)(
            color=min(a.color, b.color), resolution=min(a.resolution, b.resolution)
        )
    if isinstance(a, TextQoS):
        language = a.language if a.language == b.language else Language.NONE
        return TextQoS(language=language)
    raise OfferError(f"unmergeable QoS type {type(a).__name__}")  # pragma: no cover


def derive_user_offer(
    offer: SystemOffer, time: TimeProfile | None = None
) -> MMProfile:
    """Map a system offer to the user offer shown in the information
    window (§4 Definition 2, §8 Figure 6)."""
    per_medium: dict[Medium, MediaQoS] = {}
    for qos in offer.presented.values():
        existing = per_medium.get(qos.medium)
        per_medium[qos.medium] = (
            qos if existing is None else _merge_worst(existing, qos)
        )
    return MMProfile(
        cost=offer.cost,
        time=time or TimeProfile(),
        **{medium.value: qos for medium, qos in per_medium.items()},
    )
