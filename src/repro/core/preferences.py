"""Extended user preferences: server choice and security (paper §8
conclusion).

"The user profiles may include further QoS and cost preferences of the
user, other information related to document search, e.g. the user
prefers certain servers over others, security, etc."

Two mechanisms realise that sentence:

* a **security floor** — every server advertises a
  :class:`SecurityLevel` in the :class:`ServerDirectory`; variants
  hosted below the user's ``min_security`` are filtered out during step
  2, exactly like an undecodable codec;
* **server preference weights** — an additive OIF bonus per variant
  hosted on a preferred server (negative values express distrust), so
  preference participates in the §5 classification without touching the
  QoS/cost semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..documents.monomedia import Variant
from ..util.errors import ProfileError
from .offers import SystemOffer

__all__ = [
    "SecurityLevel",
    "ServerAttributes",
    "ServerDirectory",
    "UserPreferences",
]


class SecurityLevel(enum.IntEnum):
    """How strongly a server's delivery path is protected."""

    PUBLIC = 0
    PROTECTED = 1
    CONFIDENTIAL = 2

    @classmethod
    def parse(cls, value: "str | int | SecurityLevel") -> "SecurityLevel":
        if isinstance(value, SecurityLevel):
            return value
        if isinstance(value, int):
            return cls(value)
        try:
            return cls[str(value).strip().upper()]
        except KeyError:
            raise ProfileError(f"unknown security level {value!r}") from None


@dataclass(frozen=True, slots=True)
class ServerAttributes:
    """Operator-published facts about one server."""

    security: SecurityLevel = SecurityLevel.PUBLIC
    region: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "security", SecurityLevel.parse(self.security))


class ServerDirectory:
    """Attributes per server id; unknown servers default to PUBLIC."""

    def __init__(
        self, attributes: "Mapping[str, ServerAttributes] | None" = None
    ) -> None:
        self._attributes: dict[str, ServerAttributes] = dict(attributes or {})

    def register(self, server_id: str, attributes: ServerAttributes) -> None:
        self._attributes[server_id] = attributes

    def attributes_of(self, server_id: str) -> ServerAttributes:
        return self._attributes.get(server_id, ServerAttributes())

    def security_of(self, server_id: str) -> SecurityLevel:
        return self.attributes_of(server_id).security

    def __contains__(self, server_id: str) -> bool:
        return server_id in self._attributes

    def __len__(self) -> int:
        return len(self._attributes)


@dataclass(frozen=True)
class UserPreferences:
    """The conclusion's 'further preferences' bundle."""

    server_preference: Mapping[str, float] = field(default_factory=dict)
    min_security: SecurityLevel = SecurityLevel.PUBLIC

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "server_preference",
            {str(k): float(v) for k, v in self.server_preference.items()},
        )
        object.__setattr__(
            self, "min_security", SecurityLevel.parse(self.min_security)
        )

    @property
    def is_trivial(self) -> bool:
        return (
            not self.server_preference
            and self.min_security is SecurityLevel.PUBLIC
        )

    # -- step-2 filtering ---------------------------------------------------------

    def variant_filter(
        self, directory: ServerDirectory
    ) -> Callable[[Variant], bool]:
        """Predicate admitting variants on sufficiently secure servers."""

        def admissible(variant: Variant) -> bool:
            return directory.security_of(variant.server_id) >= self.min_security

        return admissible

    # -- classification bonus ---------------------------------------------------------

    def variant_bonus(self, variant: Variant) -> float:
        return self.server_preference.get(variant.server_id, 0.0)

    def offer_bonus(self, offer: SystemOffer) -> float:
        """Additive OIF adjustment: the sum of per-variant preferences."""
        return sum(
            self.variant_bonus(variant) for variant in offer.variants.values()
        )
