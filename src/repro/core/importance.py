"""Importance factors and the overall importance factor (paper §5.2.2).

"The importance factors indicate the relative importance between QoS
characteristics and cost."  For each QoS parameter the user sets
importance values *at named anchor values only* (e.g. frozen / TV / HDTV
rate); values in between are interpolated linearly (§5.2.2(a): "the
importance increases (or decreases) linearly from frozen rate to TV
rate, and from TV rate to HDTV rate").  Exact per-value overrides are
also supported — the paper's own worked example assigns 15 frames/s an
importance of 5 directly, which no linear anchor interpolation yields.

The three computations of §5.2.2:

* (a) QoS importance of an offer = sum of the importance factors of its
  QoS parameter values (per medium, scaled by the §3 media weight);
* (b) cost importance = (importance of 1 $) × (cost of the offer);
* (c) overall importance factor ``OIF = QoS_importance − cost_importance``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

import numpy as np

from ..documents.media import (
    FROZEN_FRAME_RATE,
    HDTV_FRAME_RATE,
    HDTV_RESOLUTION,
    MIN_RESOLUTION,
    TV_FRAME_RATE,
    TV_RESOLUTION,
    AudioGrade,
    ColorMode,
    Language,
    Medium,
)
from ..documents.quality import (
    AudioQoS,
    GraphicQoS,
    ImageQoS,
    MediaQoS,
    TextQoS,
    VideoQoS,
)
from ..util.errors import ProfileError
from ..util.units import Money
from ..util.validation import check_non_negative

__all__ = [
    "ScaleImportance",
    "ImportanceProfile",
    "default_importance",
    "paper_example_importance",
]


@dataclass(frozen=True)
class ScaleImportance:
    """Importance over one numeric QoS scale.

    ``anchors`` maps named scale values to importance (e.g. frozen / TV
    / HDTV frame rates); lookups between anchors interpolate linearly,
    outside the anchor span they clamp.  ``overrides`` wins over
    interpolation for exact values.
    """

    anchors: Mapping[float, float]
    overrides: Mapping[float, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.anchors) < 1:
            raise ProfileError("a scale needs at least one anchor")
        xs = np.array(sorted(self.anchors), dtype=float)
        vs = np.array([self.anchors[x] for x in sorted(self.anchors)], dtype=float)
        object.__setattr__(self, "_xs", xs)
        object.__setattr__(self, "_vs", vs)
        object.__setattr__(self, "overrides", dict(self.overrides))

    def value(self, x: float) -> float:
        """Importance factor of scale value ``x``."""
        override = self.overrides.get(float(x))
        if override is None and isinstance(x, (int, np.integer)):
            override = self.overrides.get(int(x))
        if override is not None:
            return float(override)
        return float(np.interp(float(x), self._xs, self._vs))

    def values(self, xs: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`value` for the bulk classification path."""
        xs = np.asarray(xs, dtype=float)
        out = np.interp(xs, self._xs, self._vs)
        for x, v in self.overrides.items():
            # Tolerance-based match: scale values round-trip through
            # float parsing/serialisation, and an override must still
            # win when its key comes back one ulp off.
            out[np.isclose(xs, float(x))] = v
        return out

    def with_override(self, x: float, value: float) -> "ScaleImportance":
        overrides = dict(self.overrides)
        overrides[float(x)] = float(value)
        return replace(self, overrides=overrides)


def _level_map(mapping: Mapping, what: str) -> dict:
    result = {}
    for key, value in mapping.items():
        result[key] = float(value)
    if not result:
        raise ProfileError(f"{what} importance map must not be empty")
    return result


@dataclass(frozen=True)
class ImportanceProfile:
    """All importance factors of one user (§3 + §5.2.2).

    The per-medium weights realise §3's "the audio is more important
    than the video"; the per-parameter tables realise "video frame rate
    is more important than video resolution" and "french is more
    important than english".
    """

    color: Mapping[ColorMode, float]
    frame_rate: ScaleImportance
    resolution: ScaleImportance
    audio_grade: Mapping[AudioGrade, float]
    language: Mapping[Language, float]
    media_weight: Mapping[Medium, float]
    cost_per_dollar: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "color", _level_map(self.color, "color"))
        object.__setattr__(
            self, "audio_grade", _level_map(self.audio_grade, "audio grade")
        )
        object.__setattr__(self, "language", _level_map(self.language, "language"))
        weights = {Medium.parse(k): float(v) for k, v in self.media_weight.items()}
        for medium in Medium:
            weights.setdefault(medium, 1.0)
        object.__setattr__(self, "media_weight", weights)
        check_non_negative(self.cost_per_dollar, "cost_per_dollar")
        missing = [mode for mode in ColorMode if mode not in self.color]
        if missing:
            raise ProfileError(f"color importance missing levels: {missing}")

    # -- §5.2.2 (a): QoS importance ------------------------------------------------

    def qos_importance(self, qos: MediaQoS) -> float:
        """Importance of one monomedia's QoS point: the sum of its
        parameter-value importances, scaled by the medium weight."""
        weight = self.media_weight[qos.medium]
        if isinstance(qos, VideoQoS):
            raw = (
                self.color[qos.color]
                + self.frame_rate.value(qos.frame_rate)
                + self.resolution.value(qos.resolution)
            )
        elif isinstance(qos, AudioQoS):
            raw = self.audio_grade[qos.grade] + self.language.get(qos.language, 0.0)
        elif isinstance(qos, (ImageQoS, GraphicQoS)):
            raw = self.color[qos.color] + self.resolution.value(qos.resolution)
        elif isinstance(qos, TextQoS):
            raw = self.language.get(qos.language, 0.0)
        else:  # pragma: no cover - closed union
            raise ProfileError(f"no importance rule for {type(qos).__name__}")
        return weight * raw

    # -- §5.2.2 (b): cost importance -------------------------------------------------

    def cost_importance(self, cost: Money) -> float:
        """Product of the 1-$ importance factor and the offer's cost."""
        return self.cost_per_dollar * cost.amount

    # -- §5.2.2 (c): overall importance ------------------------------------------------

    def overall_importance(
        self, qos_points: "list[MediaQoS] | tuple[MediaQoS, ...]", cost: Money
    ) -> float:
        """``OIF = Σ QoS_importance − cost_importance``."""
        return (
            sum(self.qos_importance(qos) for qos in qos_points)
            - self.cost_importance(cost)
        )

    # -- editing (profile-manager facilities, §5.2.2: "at any time during
    #    the negotiation phase, the user may modify these values") ---------------

    def with_cost_per_dollar(self, value: float) -> "ImportanceProfile":
        return replace(self, cost_per_dollar=float(value))

    def with_color(self, mode: ColorMode, value: float) -> "ImportanceProfile":
        colors = dict(self.color)
        colors[ColorMode.parse(mode)] = float(value)
        return replace(self, color=colors)

    def with_media_weight(self, medium: "Medium | str", weight: float) -> "ImportanceProfile":
        weights = dict(self.media_weight)
        weights[Medium.parse(medium)] = float(weight)
        return replace(self, media_weight=weights)

    def with_frame_rate_override(self, rate: int, value: float) -> "ImportanceProfile":
        return replace(self, frame_rate=self.frame_rate.with_override(rate, value))

    def with_resolution_override(self, resolution: int, value: float) -> "ImportanceProfile":
        return replace(
            self, resolution=self.resolution.with_override(resolution, value)
        )

    def with_language(self, language: Language, value: float) -> "ImportanceProfile":
        languages = dict(self.language)
        languages[Language.parse(language)] = float(value)
        return replace(self, language=languages)


def default_importance() -> ImportanceProfile:
    """The default importance values the profile manager associates with
    each QoS parameter value (§5.2.2: "We associate a default importance
    value for each QoS parameter value"), with a mild cost sensitivity."""
    return ImportanceProfile(
        color={
            ColorMode.SUPER_COLOR: 10.0,
            ColorMode.COLOR: 8.0,
            ColorMode.GREY: 4.0,
            ColorMode.BLACK_AND_WHITE: 1.0,
        },
        frame_rate=ScaleImportance(
            anchors={
                float(FROZEN_FRAME_RATE): 1.0,
                float(TV_FRAME_RATE): 8.0,
                float(HDTV_FRAME_RATE): 10.0,
            }
        ),
        resolution=ScaleImportance(
            anchors={
                float(MIN_RESOLUTION): 1.0,
                float(TV_RESOLUTION): 8.0,
                float(HDTV_RESOLUTION): 10.0,
            }
        ),
        audio_grade={
            AudioGrade.CD: 8.0,
            AudioGrade.RADIO: 5.0,
            AudioGrade.TELEPHONE: 2.0,
        },
        language={
            Language.ENGLISH: 1.0,
            Language.FRENCH: 1.0,
            Language.GERMAN: 1.0,
            Language.SPANISH: 1.0,
            Language.NONE: 0.0,
        },
        media_weight={},
        cost_per_dollar=1.0,
    )


def paper_example_importance(cost_per_dollar: float = 4.0) -> ImportanceProfile:
    """The importance setting of the §5.2.2 worked example (setting 1):
    colour 9, grey 6, black&white 2, TV resolution 9, 25 frames/s 9,
    15 frames/s 5, cost importance 4.

    The frame-rate values 25→9 and 15→5 are installed as exact
    overrides, reproducing the paper's numbers verbatim; other scale
    values fall back to interpolation between the stated anchors.
    """
    base = default_importance()
    return ImportanceProfile(
        color={
            ColorMode.SUPER_COLOR: 10.0,  # not used by the example
            ColorMode.COLOR: 9.0,
            ColorMode.GREY: 6.0,
            ColorMode.BLACK_AND_WHITE: 2.0,
        },
        frame_rate=ScaleImportance(
            anchors={
                float(FROZEN_FRAME_RATE): 1.0,
                float(TV_FRAME_RATE): 9.0,
                float(HDTV_FRAME_RATE): 10.0,
            },
            overrides={25.0: 9.0, 15.0: 5.0},
        ),
        resolution=ScaleImportance(
            anchors={
                float(MIN_RESOLUTION): 1.0,
                float(TV_RESOLUTION): 9.0,
                float(HDTV_RESOLUTION): 10.0,
            }
        ),
        audio_grade=dict(base.audio_grade),
        language=dict(base.language),
        media_weight={},
        cost_per_dollar=cost_per_dollar,
    )
