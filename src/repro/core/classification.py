"""Classification of system offers (paper §5).

Each feasible offer gets two classification parameters (§4 step 3):

* its **static negotiation status** — DESIRABLE / ACCEPTABLE /
  CONSTRAINT, "a simple comparison between the QoS associated with the
  offer and the user profile" (§5.2.1);
* its **overall importance factor** — ``OIF = QoS_importance −
  cost_importance`` (§5.2.2).

§4 step 4 then sorts: "we use the static negotiation status as primary
classification parameter, and the OIF as the secondary classification
parameter" (§5.2.2(c)).  That is :data:`ClassificationPolicy.SNS_PRIMARY`,
the default.  Two additional policies are provided:

* ``PURE_OIF`` — order by OIF alone.  The paper's own example (3) in
  §5.2.2 prints this order (see DESIGN.md: with SNS primary, offer4 —
  the only ACCEPTABLE offer — would sort first, yet the paper lists it
  last); implementing both makes the discrepancy reproducible.
* ``COST_GATED`` — like SNS_PRIMARY, but an offer whose cost exceeds
  the user's maximum is demoted to CONSTRAINT, realising §5.2.2(c)'s
  "at first we consider only the offers which satisfy the cost and the
  QoS requested by the user" as a status rather than a scan order.

Two implementations are provided: a scalar one (reference semantics,
offer objects in hand) and a vectorized one over an
:class:`~repro.core.enumeration.OfferSpace` that classifies the whole
product space with numpy and only materialises the offers it returns.
They are property-tested to agree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..documents.quality import MediaQoS
from ..util.errors import OfferError, ValidationError
from ..util.units import Money
from .enumeration import OfferSpace
from .importance import ImportanceProfile
from .offers import SystemOffer
from .profiles import MMProfile, UserProfile
from .status import StaticNegotiationStatus

__all__ = [
    "ClassificationPolicy",
    "ClassificationArrays",
    "ClassifiedOffer",
    "compute_sns",
    "check_top_k",
    "classify_offer",
    "classify_offers",
    "classify_arrays",
    "classify_arrays_batch",
    "classify_space",
    "apply_offer_bonus",
    "MAX_VECTOR_OFFERS",
]

MAX_VECTOR_OFFERS = 4_000_000
"""Safety ceiling for the vectorized product-space classification."""


class ClassificationPolicy(enum.Enum):
    SNS_PRIMARY = "sns-primary"
    PURE_OIF = "pure-oif"
    COST_GATED = "cost-gated"


@dataclass(frozen=True, slots=True)
class ClassifiedOffer:
    """A system offer with its §4-step-3 classification parameters."""

    offer: SystemOffer
    sns: StaticNegotiationStatus
    oif: float
    affordable: bool

    @property
    def satisfies_user(self) -> bool:
        """Whether this offer meets both the QoS and the cost the user
        requested — the §4 step 5 acceptance test ("the best system
        offer that satisfies the QoS/cost requested by the user")."""
        return self.sns.satisfies_user and self.affordable

    def __str__(self) -> str:
        return (
            f"{self.offer.offer_id}: {self.sns} OIF={self.oif:g} "
            f"cost={self.offer.cost}"
        )


def compute_sns(offer: SystemOffer, profile: UserProfile) -> StaticNegotiationStatus:
    """§5.2.1: compare the offer against the user profile.

    DESIRABLE satisfies the *full* desired profile — QoS and cost: the
    paper's own example classifies offer4, whose QoS equals the desired
    QoS but whose 5 $ price exceeds the 4 $ maximum, as ACCEPTABLE, so
    the desired level must include the cost bound.  ACCEPTABLE is the
    pure QoS comparison against the worst-acceptable values (offer4
    stays ACCEPTABLE despite its price).
    """
    if offer.qos_satisfies(profile.desired) and offer.cost_within(profile.max_cost):
        return StaticNegotiationStatus.DESIRABLE
    if offer.qos_satisfies(profile.worst):
        return StaticNegotiationStatus.ACCEPTABLE
    return StaticNegotiationStatus.CONSTRAINT


def classify_offer(
    offer: SystemOffer,
    profile: UserProfile,
    importance: ImportanceProfile,
    *,
    policy: ClassificationPolicy = ClassificationPolicy.SNS_PRIMARY,
) -> ClassifiedOffer:
    """Classification parameters of a single offer."""
    sns = compute_sns(offer, profile)
    affordable = offer.cost_within(profile.max_cost)
    if policy is ClassificationPolicy.COST_GATED and not affordable:
        sns = StaticNegotiationStatus.CONSTRAINT
    oif = importance.overall_importance(list(offer.qos_points()), offer.cost)
    return ClassifiedOffer(offer=offer, sns=sns, oif=oif, affordable=affordable)


def check_top_k(top_k: "int | None", *, parameter: str = "top_k") -> "int | None":
    """Validate a best-first truncation bound.

    ``None`` means "no bound".  Anything below 1 is a caller error: a
    zero bound used to be clamped silently, which made
    ``negotiate(max_offers=0)`` report FAILEDTRYLATER with zero
    attempts instead of surfacing the bad argument.
    """
    if top_k is None:
        return None
    value = int(top_k)
    if value < 1:
        raise ValidationError(
            f"{parameter} must be at least 1 (got {top_k!r}); "
            f"pass None for an unbounded classification"
        )
    return value


def _sort_key(
    policy: ClassificationPolicy,
) -> "Callable[[ClassifiedOffer], tuple[float, ...]]":
    if policy is ClassificationPolicy.PURE_OIF:
        return lambda item: (-item.oif,)
    return lambda item: (int(item.sns), -item.oif)


def classify_offers(
    offers: Iterable[SystemOffer],
    profile: UserProfile,
    importance: ImportanceProfile,
    *,
    policy: ClassificationPolicy = ClassificationPolicy.SNS_PRIMARY,
) -> list[ClassifiedOffer]:
    """§4 step 4 (scalar reference): best offer first.

    The sort is stable, so equal-key offers keep enumeration order.
    """
    classified = [
        classify_offer(offer, profile, importance, policy=policy)
        for offer in offers
    ]
    classified.sort(key=_sort_key(policy))
    return classified


# ---------------------------------------------------------------------------
# vectorized product-space classification
# ---------------------------------------------------------------------------

def _axis_levels(
    presented: Sequence[MediaQoS], profile: UserProfile
) -> np.ndarray:
    """Per-variant SNS levels of one axis: 0 desirable / 1 acceptable /
    2 constraint relative to the profile bounds of its medium."""
    levels = np.empty(len(presented), dtype=np.int8)
    for i, qos in enumerate(presented):
        desired = profile.desired.qos_for(qos.medium)
        worst = profile.worst.qos_for(qos.medium)
        if desired is None or qos.satisfies(desired):
            levels[i] = 0
        elif worst is None or qos.satisfies(worst):
            levels[i] = 1
        else:
            levels[i] = 2
    return levels


@dataclass(frozen=True)
class ClassificationArrays:
    """The vectorized §4-step-3/4 products over a whole offer space.

    ``order`` lists flat product indices best-first; the other arrays
    are indexed by flat product index.  Splitting these out of
    :func:`classify_space` lets :mod:`repro.perf` cache the expensive
    part (the broadcast sums and the lexsort) and re-materialise
    offers cheaply per request.
    """

    order: np.ndarray
    sns_levels: np.ndarray
    oif: np.ndarray
    affordable: np.ndarray

    def materialize(
        self, space: OfferSpace, top_k: "int | None" = None
    ) -> list[ClassifiedOffer]:
        """Turn the best-first index order into classified offers,
        materialising only the first ``top_k`` (all when None)."""
        order = self.order
        if top_k is not None:
            order = order[: int(top_k)]
        results: list[ClassifiedOffer] = []
        for flat in order:
            offer = space.offer_at(int(flat))
            results.append(
                ClassifiedOffer(
                    offer=offer,
                    sns=StaticNegotiationStatus(int(self.sns_levels[flat])),
                    oif=float(self.oif[flat]),
                    affordable=bool(self.affordable[flat]),
                )
            )
        return results


def classify_arrays(
    space: OfferSpace,
    profile: UserProfile,
    importance: ImportanceProfile,
    *,
    policy: ClassificationPolicy = ClassificationPolicy.SNS_PRIMARY,
) -> ClassificationArrays:
    """Vectorized §4 steps 3–4 over the whole product space.

    Exploits the separability of both parameters across monomedia:
    the offer OIF is a sum of per-axis contributions minus the cost
    term, and the offer SNS is the max of per-axis levels.
    """
    if space.is_empty:
        raise OfferError("cannot classify an empty offer space")
    count = space.offer_count
    if count > MAX_VECTOR_OFFERS:
        raise OfferError(
            f"offer space has {count} offers, above the vectorization "
            f"ceiling of {MAX_VECTOR_OFFERS}; prune variants first"
        )

    axes = [space.axis(mid) for mid in space.monomedia_ids]
    sizes = [len(axis) for axis in axes]
    k = len(sizes)

    def _expand(per_axis: "list[np.ndarray]", dtype) -> np.ndarray:
        """Broadcast per-axis vectors over the product space and sum."""
        total = np.zeros(sizes, dtype=dtype)
        for dim, values in enumerate(per_axis):
            shape = [1] * k
            shape[dim] = sizes[dim]
            total = total + values.reshape(shape)
        return total.reshape(-1)

    importance_axes = [
        np.array(
            [importance.qos_importance(choice.presented) for choice in axis],
            dtype=np.float64,
        )
        for axis in axes
    ]
    cents_axes = [
        np.array([choice.cost_cents for choice in axis], dtype=np.int64)
        for axis in axes
    ]
    level_axes = [
        _axis_levels([choice.presented for choice in axis], profile)
        for axis in axes
    ]

    qos_importance = _expand(importance_axes, np.float64)
    cents = _expand(cents_axes, np.int64) + space.copyright_cents
    cost_dollars = cents.astype(np.float64) / 100.0
    oif = qos_importance - importance.cost_per_dollar * cost_dollars

    level_total = np.zeros(sizes, dtype=np.int8)
    for dim, levels in enumerate(level_axes):
        shape = [1] * k
        shape[dim] = sizes[dim]
        level_total = np.maximum(level_total, levels.reshape(shape))
    sns_levels = level_total.reshape(-1)

    affordable = cents <= profile.max_cost.cents
    # DESIRABLE additionally requires the cost bound (see compute_sns):
    # QoS-desirable but unaffordable offers demote to ACCEPTABLE.
    sns_levels = np.where(
        (sns_levels == 0) & ~affordable, np.int8(1), sns_levels
    )
    if policy is ClassificationPolicy.COST_GATED:
        sns_levels = np.where(affordable, sns_levels, np.int8(2))

    index = np.arange(count)
    if policy is ClassificationPolicy.PURE_OIF:
        order = np.lexsort((index, -oif))
    else:
        order = np.lexsort((index, -oif, sns_levels))

    return ClassificationArrays(
        order=order, sns_levels=sns_levels, oif=oif, affordable=affordable
    )


def classify_arrays_batch(
    space: OfferSpace,
    members: "Sequence[tuple[UserProfile, ImportanceProfile]]",
    *,
    policy: ClassificationPolicy = ClassificationPolicy.SNS_PRIMARY,
) -> "list[ClassificationArrays]":
    """Vectorized §4 steps 3–4 for P users sharing one offer space.

    Structure-of-arrays over the user dimension: the per-axis vectors
    gain a leading profile axis and every broadcast runs once for all
    P members, so the cost-side arrays (cents, dollars) — which do not
    depend on the user at all — are computed exactly once.

    **Bit-exactness contract**: row ``p`` of every array equals what
    ``classify_arrays(space, members[p][0], members[p][1])`` produces,
    float for float.  The per-element operation chains are kept
    identical — additions accumulate axis 0 first, the cost term is one
    multiply then one subtract — so adding the leading axis cannot
    change any IEEE result, and the per-row lexsort sees identical
    keys.  The equivalence-gate tests depend on this.
    """
    if space.is_empty:
        raise OfferError("cannot classify an empty offer space")
    if not members:
        return []
    count = space.offer_count
    if count > MAX_VECTOR_OFFERS:
        raise OfferError(
            f"offer space has {count} offers, above the vectorization "
            f"ceiling of {MAX_VECTOR_OFFERS}; prune variants first"
        )

    axes = [space.axis(mid) for mid in space.monomedia_ids]
    sizes = [len(axis) for axis in axes]
    k = len(sizes)
    p = len(members)

    def _expand_rows(per_axis: "list[np.ndarray]", dtype) -> np.ndarray:
        """Broadcast (P, axis) vectors over the product space, summing
        in the same dim order as the single-user ``_expand``."""
        total = np.zeros([p] + sizes, dtype=dtype)
        for dim, values in enumerate(per_axis):
            shape = [1] * (k + 1)
            shape[0] = p
            shape[dim + 1] = sizes[dim]
            total = total + values.reshape(shape)
        return total.reshape(p, -1)

    importance_axes = [
        np.array(
            [
                [imp.qos_importance(choice.presented) for choice in axis]
                for _, imp in members
            ],
            dtype=np.float64,
        )
        for axis in axes
    ]
    level_axes = [
        np.stack(
            [
                _axis_levels(
                    [choice.presented for choice in axis], profile
                )
                for profile, _ in members
            ]
        )
        for axis in axes
    ]
    # Cost is user-independent: one 1-D pass shared by every row.
    cents_axes = [
        np.array([choice.cost_cents for choice in axis], dtype=np.int64)
        for axis in axes
    ]

    def _expand_flat(per_axis: "list[np.ndarray]", dtype) -> np.ndarray:
        total = np.zeros(sizes, dtype=dtype)
        for dim, values in enumerate(per_axis):
            shape = [1] * k
            shape[dim] = sizes[dim]
            total = total + values.reshape(shape)
        return total.reshape(-1)

    qos_importance = _expand_rows(importance_axes, np.float64)
    cents = _expand_flat(cents_axes, np.int64) + space.copyright_cents
    cost_dollars = cents.astype(np.float64) / 100.0
    cost_per_dollar = np.array(
        [imp.cost_per_dollar for _, imp in members], dtype=np.float64
    )
    oif = qos_importance - cost_per_dollar[:, None] * cost_dollars[None, :]

    level_total = np.zeros([p] + sizes, dtype=np.int8)
    for dim, levels in enumerate(level_axes):
        shape = [1] * (k + 1)
        shape[0] = p
        shape[dim + 1] = sizes[dim]
        level_total = np.maximum(level_total, levels.reshape(shape))
    sns_levels = level_total.reshape(p, -1)

    max_cents = np.array(
        [profile.max_cost.cents for profile, _ in members], dtype=np.int64
    )
    affordable = cents[None, :] <= max_cents[:, None]
    sns_levels = np.where(
        (sns_levels == 0) & ~affordable, np.int8(1), sns_levels
    )
    if policy is ClassificationPolicy.COST_GATED:
        sns_levels = np.where(affordable, sns_levels, np.int8(2))

    index = np.arange(count)
    results: list[ClassificationArrays] = []
    for row in range(p):
        if policy is ClassificationPolicy.PURE_OIF:
            order = np.lexsort((index, -oif[row]))
        else:
            order = np.lexsort((index, -oif[row], sns_levels[row]))
        results.append(
            ClassificationArrays(
                order=order,
                sns_levels=sns_levels[row],
                oif=oif[row],
                affordable=affordable[row],
            )
        )
    return results


def classify_space(
    space: OfferSpace,
    profile: UserProfile,
    importance: ImportanceProfile,
    *,
    policy: ClassificationPolicy = ClassificationPolicy.SNS_PRIMARY,
    top_k: "int | None" = None,
) -> list[ClassifiedOffer]:
    """Classify the entire offer space vectorized; return the ordered
    (best-first) classified offers, materialising only ``top_k`` of
    them (all when ``top_k`` is None)."""
    top_k = check_top_k(top_k)
    if space.is_empty:
        return []
    arrays = classify_arrays(space, profile, importance, policy=policy)
    return arrays.materialize(space, top_k)


def apply_offer_bonus(
    classified: "list[ClassifiedOffer]",
    bonus: "Callable[[SystemOffer], float]",
    *,
    policy: ClassificationPolicy = ClassificationPolicy.SNS_PRIMARY,
) -> "list[ClassifiedOffer]":
    """Re-rank with an additive OIF adjustment per offer.

    ``bonus`` maps a :class:`SystemOffer` to a float (e.g. the server
    preference bonus of :mod:`repro.core.preferences`).  SNS and
    affordability are untouched — preference refines the ordering, it
    does not redefine satisfaction.  The sort is stable, so zero-bonus
    inputs come back unchanged.
    """
    adjusted = [
        ClassifiedOffer(
            offer=c.offer,
            sns=c.sns,
            oif=c.oif + float(bonus(c.offer)),
            affordable=c.affordable,
        )
        for c in classified
    ]
    adjusted.sort(key=_sort_key(policy))
    return adjusted
