"""Best-first streaming classification of the offer product space.

:func:`repro.core.classification.classify_space` sorts the *entire*
feasible product space before step 5 walks it, yet the commitment walk
typically touches only the first handful of offers.  Both
classification parameters are separable across monomedia axes — the
OIF is a sum of per-axis contributions minus the cost term, the SNS is
the max of per-axis levels — so the classified order can be produced
lazily with the classic k-largest-sums frontier search over per-axis
sorted contribution arrays, materialising only the offers actually
consumed.

**Exact order equivalence.**  The vectorized path orders by
``lexsort((index, -oif, sns))`` where ``oif`` is a float computed in a
fixed operation order.  To reproduce that order bit-for-bit the stream
*recomputes* each candidate's OIF with the exact same operation
sequence as the numpy broadcast (left-to-right sum of per-axis QoS
importances, then one cost subtraction on the exact integer cents
total) and uses ``(-oif, flat_index)`` as the heap key.  The per-axis
sorted contributions only steer *which* candidates enter the frontier;
the yield order is decided by the recomputed key.  A two-phase pop
(children are pushed before their parent is re-offered for yielding)
absorbs the one-ulp inversions that different float association orders
can introduce between a parent and its lattice children.

The SNS-primary policies are layered on top: the OIF-descending stream
is partitioned on the fly, DESIRABLE offers yielded immediately and
lower bands deferred (as cheap index tuples, not materialised offers)
until the stream drains — which is exactly the lexsort order.

Streaming requires separable scores; a non-trivial preference
``offer_bonus`` is per-offer and breaks separability, so callers fall
back to the vectorized path (see ``QoSManager._run_steps``).
"""

from __future__ import annotations

import heapq
from typing import Iterator, Sequence

from .classification import (
    ClassificationPolicy,
    ClassifiedOffer,
    _axis_levels,
)
from .enumeration import OfferSpace, VariantChoice
from .importance import ImportanceProfile
from .profiles import UserProfile
from .status import StaticNegotiationStatus

__all__ = ["stream_classified"]


def _suffix_radices(sizes: Sequence[int]) -> list[int]:
    """Mixed-radix place values matching ``OfferSpace.offer_at`` (last
    axis varies fastest)."""
    out = [1] * len(sizes)
    for i in range(len(sizes) - 2, -1, -1):
        out[i] = out[i + 1] * sizes[i + 1]
    return out


def _oif_descending(
    axes: Sequence[Sequence[VariantChoice]],
    importance: ImportanceProfile,
    copyright_cents: int,
) -> Iterator[tuple[int, tuple[int, ...], float, int]]:
    """Yield ``(flat_index, original_digits, oif, total_cents)`` over
    the whole product space in exact ``(-oif, flat_index)`` order.

    Frontier search over per-axis contribution-sorted variant orders:
    the successor lattice guarantees that whenever a candidate is
    yielded, every candidate with a larger real-valued OIF has already
    been yielded, and the recomputed float key settles rounding ties
    the same way the vectorized lexsort does.
    """
    k = len(axes)
    sizes = [len(axis) for axis in axes]
    radices = _suffix_radices(sizes)
    cpd = importance.cost_per_dollar
    qimp: list[list[float]] = [
        [importance.qos_importance(choice.presented) for choice in axis]
        for axis in axes
    ]
    cents: list[list[int]] = [
        [choice.cost_cents for choice in axis] for axis in axes
    ]
    # Per-axis variant order by descending contribution, original index
    # ascending on ties (mirrors the stability of the lexsort).
    orders: list[list[int]] = []
    for i in range(k):
        contrib = [
            qimp[i][j] - cpd * (cents[i][j] / 100.0) for j in range(sizes[i])
        ]
        orders.append(
            sorted(range(sizes[i]), key=lambda j: (-contrib[j], j))
        )

    def candidate(
        pos: tuple[int, ...],
    ) -> tuple[float, int, tuple[int, ...], int]:
        """(oif, flat, original digits, cents) of one frontier position.

        The OIF is computed with the numpy broadcast's operation order
        — left-to-right QoS sum, then a single cost subtraction on the
        exact cents total — so it is bit-identical to the vectorized
        value for the same offer.
        """
        qos = 0.0
        total_cents = copyright_cents
        flat = 0
        digits = [0] * k
        for i in range(k):
            j = orders[i][pos[i]]
            digits[i] = j
            qos = qos + qimp[i][j]
            total_cents += cents[i][j]
            flat += j * radices[i]
        oif = qos - cpd * (total_cents / 100.0)
        return oif, flat, tuple(digits), total_cents

    start = (0,) * k
    oif, flat, digits, total = candidate(start)
    # Heap entries: (-oif, flat, expanded, pos, digits, cents).  The
    # (−oif, flat) prefix is unique per candidate, so comparisons never
    # reach the remaining fields.
    heap: list[tuple[float, int, int, tuple[int, ...], tuple[int, ...], int]] = [
        (-oif, flat, 0, start, digits, total)
    ]
    seen: set[tuple[int, ...]] = {start}
    while heap:
        neg_oif, flat, expanded, pos, digits, total = heapq.heappop(heap)
        if expanded:
            yield flat, digits, -neg_oif, total
            continue
        # Two-phase pop: push the lattice children first, then re-offer
        # this node; it is only yielded once nothing in the frontier —
        # children included — beats its recomputed key.
        for i in range(k):
            if pos[i] + 1 < sizes[i]:
                child = pos[:i] + (pos[i] + 1,) + pos[i + 1 :]
                if child not in seen:
                    seen.add(child)
                    c_oif, c_flat, c_digits, c_total = candidate(child)
                    heapq.heappush(
                        heap, (-c_oif, c_flat, 0, child, c_digits, c_total)
                    )
        heapq.heappush(heap, (neg_oif, flat, 1, pos, digits, total))


def stream_classified(
    space: OfferSpace,
    profile: UserProfile,
    importance: ImportanceProfile,
    *,
    policy: ClassificationPolicy = ClassificationPolicy.SNS_PRIMARY,
) -> Iterator[ClassifiedOffer]:
    """Yield the offer space's classified offers lazily, best first, in
    exactly the order ``classify_space`` would return them.

    Offers are materialised one at a time as they are yielded; deferred
    lower-SNS candidates are buffered as index tuples only.
    """
    if space.is_empty:
        return
    axes = [space.axis(mid) for mid in space.monomedia_ids]
    level_axes = [
        _axis_levels([choice.presented for choice in axis], profile)
        for axis in axes
    ]
    max_cents = profile.max_cost.cents
    cost_gated = policy is ClassificationPolicy.COST_GATED
    pure_oif = policy is ClassificationPolicy.PURE_OIF

    def materialise(
        flat: int, level: int, oif: float, affordable: bool
    ) -> ClassifiedOffer:
        return ClassifiedOffer(
            offer=space.offer_at(flat),
            sns=StaticNegotiationStatus(level),
            oif=oif,
            affordable=affordable,
        )

    # SNS-primary delivery: DESIRABLE offers stream through unchanged;
    # ACCEPTABLE/CONSTRAINT arrive in (−oif, index) order and are held
    # back until the stream drains, reproducing the lexsort's SNS bands.
    deferred: tuple[
        list[tuple[int, int, float, bool]], list[tuple[int, int, float, bool]]
    ] = ([], [])
    for flat, digits, oif, total_cents in _oif_descending(
        axes, importance, space.copyright_cents
    ):
        level = max(int(level_axes[i][j]) for i, j in enumerate(digits))
        affordable = total_cents <= max_cents
        # DESIRABLE additionally requires the cost bound (classify_space
        # applies the same demotion before ordering).
        if level == 0 and not affordable:
            level = 1
        if cost_gated and not affordable:
            level = 2
        if pure_oif or level == 0:
            yield materialise(flat, level, oif, affordable)
        else:
            deferred[level - 1].append((flat, level, oif, affordable))
    for bucket in deferred:
        for flat, level, oif, affordable in bucket:
            yield materialise(flat, level, oif, affordable)
