"""The profile manager (paper §3, §8).

"The system component responsible for user profile management via the
QoS GUI is called the profile manager."  It stores named user profiles,
supports the GUI's *Save* / *Save as* / delete / default-selection
operations, and ships the stock profiles a fresh installation offers.

The stock profiles span the preference spectrum the §5.2.2 examples
explore: quality-first (cost importance 0), budget (QoS importance
low, cost dominant), and a balanced default.
"""

from __future__ import annotations

from typing import Iterator

from ..documents.media import (
    AudioGrade,
    ColorMode,
    Language,
    TV_FRAME_RATE,
    TV_RESOLUTION,
)
from ..documents.quality import AudioQoS, MediaQoS, TextQoS, VideoQoS
from ..util.errors import DuplicateKeyError, NotFoundError, ProfileError
from .importance import ImportanceProfile, default_importance
from .profiles import MMProfile, TimeProfile, UserProfile

__all__ = ["ProfileManager", "standard_profiles", "make_profile"]


def make_profile(
    name: str,
    *,
    desired_video: VideoQoS | None = None,
    worst_video: VideoQoS | None = None,
    desired_audio: AudioQoS | None = None,
    worst_audio: AudioQoS | None = None,
    max_cost: float = 10.0,
    importance: ImportanceProfile | None = None,
    time: TimeProfile | None = None,
    **extra_media: "MediaQoS | None",
) -> UserProfile:
    """Convenience constructor for the common video(+audio) profile.

    ``extra_media`` may pass ``desired_image``/``worst_image`` etc.;
    worst bounds default to the desired values (the §5.2.1 example's
    "the desired and the worst acceptable values are the same").
    """
    time = time or TimeProfile()

    def pick(kind: str, medium: str):
        desired = extra_media.get(f"desired_{medium}")
        worst = extra_media.get(f"worst_{medium}", desired)
        return desired if kind == "desired" else worst

    desired_kwargs = {}
    worst_kwargs = {}
    if desired_video is not None:
        desired_kwargs["video"] = desired_video
        worst_kwargs["video"] = worst_video or desired_video
    if desired_audio is not None:
        desired_kwargs["audio"] = desired_audio
        worst_kwargs["audio"] = worst_audio or desired_audio
    for medium in ("image", "text", "graphic"):
        desired = pick("desired", medium)
        worst = pick("worst", medium)
        if desired is not None:
            desired_kwargs[medium] = desired
            worst_kwargs[medium] = worst
    if not desired_kwargs:
        raise ProfileError(f"profile {name!r} constrains no media")
    return UserProfile(
        name=name,
        desired=MMProfile(cost=max_cost, time=time, **desired_kwargs),
        worst=MMProfile(cost=max_cost, time=time, **worst_kwargs),
        importance=importance or default_importance(),
    )


def standard_profiles() -> "list[UserProfile]":
    """The stock profiles a fresh profile manager offers."""
    premium = make_profile(
        "premium",
        desired_video=VideoQoS(
            color=ColorMode.COLOR, frame_rate=TV_FRAME_RATE,
            resolution=TV_RESOLUTION,
        ),
        worst_video=VideoQoS(
            color=ColorMode.COLOR, frame_rate=15, resolution=TV_RESOLUTION
        ),
        desired_audio=AudioQoS(grade=AudioGrade.CD, language=Language.ENGLISH),
        worst_audio=AudioQoS(grade=AudioGrade.RADIO, language=Language.ENGLISH),
        max_cost=12.0,
        importance=default_importance().with_cost_per_dollar(0.0),
    )
    balanced = make_profile(
        "balanced",
        desired_video=VideoQoS(
            color=ColorMode.COLOR, frame_rate=TV_FRAME_RATE,
            resolution=TV_RESOLUTION,
        ),
        worst_video=VideoQoS(
            color=ColorMode.GREY, frame_rate=10, resolution=360
        ),
        desired_audio=AudioQoS(grade=AudioGrade.CD, language=Language.ENGLISH),
        worst_audio=AudioQoS(
            grade=AudioGrade.TELEPHONE, language=Language.ENGLISH
        ),
        max_cost=6.0,
        importance=default_importance(),
    )
    economy = make_profile(
        "economy",
        desired_video=VideoQoS(
            color=ColorMode.GREY, frame_rate=15, resolution=360
        ),
        worst_video=VideoQoS(
            color=ColorMode.BLACK_AND_WHITE, frame_rate=5, resolution=180
        ),
        desired_audio=AudioQoS(
            grade=AudioGrade.TELEPHONE, language=Language.ENGLISH
        ),
        max_cost=2.5,
        importance=default_importance().with_cost_per_dollar(5.0),
    )
    audio_first = make_profile(
        "audio-first",
        desired_video=VideoQoS(
            color=ColorMode.GREY, frame_rate=10, resolution=360
        ),
        worst_video=VideoQoS(
            color=ColorMode.BLACK_AND_WHITE, frame_rate=1, resolution=180
        ),
        desired_audio=AudioQoS(grade=AudioGrade.CD, language=Language.FRENCH),
        worst_audio=AudioQoS(grade=AudioGrade.RADIO, language=Language.FRENCH),
        max_cost=5.0,
        importance=default_importance()
        .with_media_weight("audio", 3.0)
        .with_language(Language.FRENCH, 3.0),
    )
    return [premium, balanced, economy, audio_first]


class ProfileManager:
    """Named user-profile store behind the QoS GUI windows."""

    def __init__(self, profiles: "list[UserProfile] | None" = None) -> None:
        self._profiles: dict[str, UserProfile] = {}
        self._default: str | None = None
        for profile in profiles if profiles is not None else standard_profiles():
            self.save_as(profile)
        if self._profiles and self._default is None:
            self._default = next(iter(self._profiles))

    # -- GUI operations (§8 main window) ----------------------------------------

    def save_as(self, profile: UserProfile) -> None:
        """'Save as': create a new named profile."""
        if profile.name in self._profiles:
            raise DuplicateKeyError(f"profile {profile.name!r} exists")
        self._profiles[profile.name] = profile
        if self._default is None:
            self._default = profile.name

    def save(self, profile: UserProfile) -> None:
        """'Save': overwrite an existing profile."""
        if profile.name not in self._profiles:
            raise NotFoundError(f"no profile {profile.name!r}")
        self._profiles[profile.name] = profile

    def delete(self, name: str) -> None:
        if self._profiles.pop(name, None) is None:
            raise NotFoundError(f"no profile {name!r}")
        if self._default == name:
            self._default = next(iter(self._profiles), None)

    def get(self, name: str) -> UserProfile:
        try:
            return self._profiles[name]
        except KeyError:
            raise NotFoundError(f"no profile {name!r}") from None

    def set_default(self, name: str) -> None:
        if name not in self._profiles:
            raise NotFoundError(f"no profile {name!r}")
        self._default = name

    @property
    def default(self) -> UserProfile:
        if self._default is None:
            raise NotFoundError("profile manager is empty")
        return self._profiles[self._default]

    @property
    def default_name(self) -> "str | None":
        return self._default

    def names(self) -> tuple[str, ...]:
        return tuple(self._profiles)

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> Iterator[UserProfile]:
        return iter(self._profiles.values())

    def __contains__(self, name: str) -> bool:
        return name in self._profiles
