"""The QoS manager and the six-step negotiation procedure (paper §4).

Inputs: "the document to be played and the user profile selected by the
user"; output: "the negotiation status and possibly a user offer".  The
steps, in order:

1. **Static local negotiation** — client machine characteristics vs the
   requested QoS → FAILEDWITHLOCALOFFER (with the best locally
   presentable QoS as the returned offer).
2. **Static compatibility checking** — variant codecs vs client
   decoders → FAILEDWITHOUTOFFER when nothing decodable remains.
3. **Computation of classification parameters** — SNS + OIF per
   feasible offer.
4. **Classification of system offers** — best → worst (policy
   configurable, see :mod:`repro.core.classification`).
5. **Resource commitment** — walk the list (offers satisfying the
   requested QoS *and* cost first, then the remaining feasible offers,
   always in classified order), reserving server + network resources
   with rollback → SUCCEEDED / FAILEDWITHOFFER / FAILEDTRYLATER.
6. **User confirmation** — the returned :class:`Commitment` must be
   confirmed within ``choicePeriod`` or the reservation evaporates.

The full classified list is kept on the result: "during the active
phase, if QoS violations occur the adaptation procedure makes use of
the whole set of feasible system offers" (§4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping

from ..client.machine import ClientMachine
from ..cmfs.server import MediaServer
from ..documents.document import Document
from ..documents.media import Medium
from ..documents.quality import MediaQoS
from ..faults.health import CircuitBreaker
from ..faults.retry import RetryPolicy
from ..journal import ReservationJournal
from ..metadata.database import MetadataDatabase
from ..network.transport import GuaranteeType, TransportSystem
from ..telemetry import NegotiationReport, Telemetry
from ..util.clock import ManualClock
from ..util.errors import NegotiationError, ValidationError
from .classification import (
    ClassificationPolicy,
    ClassifiedOffer,
    apply_offer_bonus,
    check_top_k,
    classify_arrays,
    classify_space,
)
from .commitment import Commitment, ResourceCommitter
from .cost import CostModel, default_cost_model
from .enumeration import OfferSpace, build_offer_space
from .importance import ImportanceProfile, default_importance
from .mapping import QoSMapper
from .offers import derive_user_offer
from .profiles import MMProfile, UserProfile
from .status import NegotiationStatus
from .stream import stream_classified

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..perf.cache import NegotiationCache
    from .preferences import UserPreferences

__all__ = [
    "DEFAULT_RETRY_AFTER_S",
    "OFFER_MODES",
    "NegotiationPlan",
    "NegotiationResult",
    "QoSManager",
]

OFFER_MODES = ("full", "stream", "auto")
"""How steps 3–5 consume the offer space: ``full`` classifies and
sorts the whole product space (the original vectorized path);
``stream`` walks it lazily best-first; ``auto`` streams whenever the
scores are separable.  All three produce identical outcomes."""

DEFAULT_RETRY_AFTER_S = 30.0
"""Retry-after hint on FAILEDTRYLATER when no breaker knows better —
roughly the time scale on which playing sessions end and free capacity."""


@dataclass(slots=True)
class NegotiationResult:
    """Status + user offer + everything adaptation needs later.

    Under streaming, ``classified`` holds only the prefix the
    commitment walk actually consumed; ``_rest`` keeps the unconsumed
    continuation of the stream.  :meth:`ensure_classified` drains it on
    demand — adaptation still gets "the whole set of feasible system
    offers" (§4), it just pays for them only when a violation occurs.
    """

    status: NegotiationStatus
    user_offer: MMProfile | None = None
    chosen: ClassifiedOffer | None = None
    commitment: Commitment | None = None
    classified: list[ClassifiedOffer] = field(default_factory=list)
    offer_space: OfferSpace | None = None
    local_violations: dict[Medium, tuple[str, ...]] = field(default_factory=dict)
    attempts: int = 0
    retry_after_s: "float | None" = None  # hint accompanying FAILEDTRYLATER
    report: "NegotiationReport | None" = None  # trace-derived step account
    _rest: "Iterator[ClassifiedOffer] | None" = field(
        default=None, repr=False
    )

    @property
    def succeeded(self) -> bool:
        return self.status.is_success

    def ensure_classified(self) -> list[ClassifiedOffer]:
        """The complete classified list, draining any unconsumed
        stream remainder (classified order is preserved: the consumed
        prefix and the continuation come from the same best-first
        walk)."""
        if self._rest is not None:
            self.classified.extend(self._rest)
            self._rest = None
        return self.classified

    def summary(self) -> str:
        lines = [f"negotiation status: {self.status}"]
        if self.user_offer is not None:
            lines.append(f"user offer: {self.user_offer.describe()}")
        if self.chosen is not None:
            lines.append(f"chosen: {self.chosen}")
        lines.append(f"offers classified: {len(self.classified)}")
        lines.append(f"commitment attempts: {self.attempts}")
        if self.retry_after_s is not None:
            lines.append(f"retry after: {self.retry_after_s:g}s")
        return "\n".join(lines)


@dataclass(slots=True)
class NegotiationPlan:
    """The outcome of steps 1–4, ready for a step-5 commitment walk.

    Exactly one of three shapes: ``early`` set (the procedure already
    ended in step 1 or 2), ``stream`` set (lazy best-first
    classification; ``classified`` holds nothing yet), or ``classified``
    populated (the eager full sort).  The concurrent service plans
    synchronously — steps 1–4 touch no shared ledgers — and then walks
    step 5 cooperatively, yielding between reservations.
    """

    early: "NegotiationResult | None" = None
    space: "OfferSpace | None" = None
    classified: "list[ClassifiedOffer]" = field(default_factory=list)
    stream: "Iterator[ClassifiedOffer] | None" = None
    offers_in: int = 0


class QoSManager:
    """The component implementing QoS negotiation and adaptation (§4).

    One manager serves one deployment (metadata DB + transport + server
    fleet); :meth:`negotiate` runs the procedure for one user request.
    """

    def __init__(
        self,
        *,
        database: MetadataDatabase,
        transport: TransportSystem,
        servers: Mapping[str, MediaServer],
        cost_model: CostModel | None = None,
        mapper: QoSMapper | None = None,
        clock: ManualClock | None = None,
        policy: ClassificationPolicy = ClassificationPolicy.SNS_PRIMARY,
        guarantee: GuaranteeType = GuaranteeType.GUARANTEED,
        directory: "object | None" = None,
        retry_policy: "RetryPolicy | None" = None,
        health: "CircuitBreaker | None" = None,
        lease_ttl_s: "float | None" = None,
        retry_seed: int = 0,
        journal: "ReservationJournal | None" = None,
        telemetry: "Telemetry | None" = None,
        offer_mode: str = "full",
        cache: "NegotiationCache | None" = None,
    ) -> None:
        self.database = database
        self.cost_model = cost_model or default_cost_model()
        self.mapper = mapper or QoSMapper()
        self.clock = clock or ManualClock()
        self.policy = policy
        self.guarantee = guarantee
        self.directory = directory  # ServerDirectory, for preferences
        self.offer_mode = self._check_offer_mode(offer_mode)
        self.cache = cache
        self.telemetry = telemetry or Telemetry.disabled()
        self.committer = ResourceCommitter(
            transport,
            servers,
            clock=self.clock,
            retry_policy=retry_policy,
            health=health,
            lease_ttl_s=lease_ttl_s,
            retry_seed=retry_seed,
            journal=journal,
            telemetry=self.telemetry,
        )
        self._holders = itertools.count(1)

    def new_holder(self) -> str:
        """Allocate the next reservation-holder id.  Both the
        synchronous walk and the concurrent service draw from this one
        counter, so holders stay unique across interleaved
        negotiations (the journal's single-writer check depends on
        it)."""
        return f"session-{next(self._holders)}"

    @staticmethod
    def _check_offer_mode(offer_mode: str) -> str:
        if offer_mode not in OFFER_MODES:
            raise ValidationError(
                f"offer_mode must be one of {OFFER_MODES}, "
                f"got {offer_mode!r}"
            )
        return offer_mode

    # -- step 1 -----------------------------------------------------------------

    def _static_local_negotiation(
        self, document: Document, profile: UserProfile, client: ClientMachine
    ) -> "tuple[dict[Medium, tuple[str, ...]], MMProfile]":
        """Check client characteristics against the desired QoS; return
        (violations, best locally supportable MM profile)."""
        violations: dict[Medium, tuple[str, ...]] = {}
        local_best: dict[str, MediaQoS] = {}
        for medium, requirement in profile.desired.qos_points():
            result = client.check_local(requirement)
            if not result.supported:
                violations[medium] = result.violations
            local_best[medium.value] = result.local_best
        if document.sync.spatial is not None:
            width, height = document.sync.spatial.bounding_box()
            if not client.fits_layout(width, height):
                violations.setdefault(Medium.VIDEO, ("layout",))
        best_profile = MMProfile(
            cost=profile.desired.cost,
            time=profile.desired.time,
            **local_best,
        )
        return violations, best_profile

    # -- the procedure -----------------------------------------------------------------

    def negotiate(
        self,
        document: "Document | str",
        profile: UserProfile,
        client: ClientMachine,
        *,
        policy: ClassificationPolicy | None = None,
        guarantee: GuaranteeType | None = None,
        max_offers: "int | None" = None,
        offer_mode: "str | None" = None,
    ) -> NegotiationResult:
        """Run steps 1–5 and wrap the reservation for step 6."""
        max_offers = check_top_k(max_offers, parameter="max_offers")
        offer_mode = self._check_offer_mode(offer_mode or self.offer_mode)
        telemetry = self.telemetry
        started = self.clock.now()
        document_id = document if isinstance(document, str) else document.document_id
        with telemetry.span(
            "negotiation",
            document=document_id,
            profile=profile.name,
        ) as root:
            if isinstance(document, str):
                document = self.database.get_document(document)
            result = self._run_steps(
                document,
                profile,
                client,
                policy=policy or self.policy,
                guarantee=guarantee or self.guarantee,
                max_offers=max_offers,
                offer_mode=offer_mode,
            )
            root.set_attribute("status", str(result.status))
            root.set_attribute("attempts", result.attempts)
        telemetry.count("negotiation.outcomes", status=str(result.status))
        telemetry.observe(
            "negotiation.latency_s", self.clock.now() - started
        )
        telemetry.observe("negotiation.attempts", float(result.attempts))
        telemetry.observe(
            "negotiation.offers.classified", float(len(result.classified))
        )
        if telemetry.enabled:
            result.report = NegotiationReport.from_spans(
                telemetry.tracer.last_trace()
            )
        return result

    def _run_steps(
        self,
        document: Document,
        profile: UserProfile,
        client: ClientMachine,
        *,
        policy: ClassificationPolicy,
        guarantee: GuaranteeType,
        max_offers: "int | None",
        offer_mode: str = "full",
    ) -> NegotiationResult:
        plan = self._plan_steps(
            document, profile, client,
            policy=policy, guarantee=guarantee,
            max_offers=max_offers, offer_mode=offer_mode,
        )
        return self.complete(plan, profile, client, guarantee=guarantee)

    def plan(
        self,
        document: "Document | str",
        profile: UserProfile,
        client: ClientMachine,
        *,
        policy: ClassificationPolicy | None = None,
        guarantee: GuaranteeType | None = None,
        max_offers: "int | None" = None,
        offer_mode: "str | None" = None,
    ) -> NegotiationPlan:
        """Steps 1–4 only: classify without reserving anything.

        This is the concurrent service's entry point — planning reads
        the metadata database and the client's static characteristics
        but never touches the shared server/transport ledgers, so it
        needs no yield points.  The returned plan feeds a cooperative
        step-5 walk (:meth:`ResourceCommitter.iter_commit` per
        candidate).

        ``offer_mode`` defaults to ``"full"`` (eager): a lazy stream
        held across scheduler switches would interleave its
        classification work unpredictably with other negotiations'
        telemetry.  The batch engine passes ``"stream"`` explicitly for
        spaces above the vectorization ceiling and immediately wraps
        the stream in its own replayable buffer.
        """
        max_offers = check_top_k(max_offers, parameter="max_offers")
        if isinstance(document, str):
            document = self.database.get_document(document)
        return self._plan_steps(
            document, profile, client,
            policy=policy or self.policy,
            guarantee=guarantee or self.guarantee,
            max_offers=max_offers,
            offer_mode=self._check_offer_mode(offer_mode or "full"),
        )

    def complete(
        self,
        plan: NegotiationPlan,
        profile: UserProfile,
        client: ClientMachine,
        *,
        guarantee: GuaranteeType | None = None,
    ) -> NegotiationResult:
        """Step 5 from a prebuilt plan: the synchronous commitment walk.

        The counterpart of :meth:`plan` for callers that plan once and
        walk many times (the batch engine fans one class plan out to
        every member).  ``negotiate`` is exactly ``plan`` + ``complete``
        modulo telemetry wrapping, and the walk order here matches the
        sequential procedure offer for offer.
        """
        guarantee = guarantee or self.guarantee
        if plan.early is not None:
            return plan.early
        assert plan.space is not None
        if plan.stream is not None:
            return self._commit_stream(
                plan.stream, plan.space, profile, client, guarantee,
                offers_in=plan.offers_in,
            )
        return self._commit_best(
            plan.classified, plan.space, profile, client, guarantee
        )

    def _plan_steps(
        self,
        document: Document,
        profile: UserProfile,
        client: ClientMachine,
        *,
        policy: ClassificationPolicy,
        guarantee: GuaranteeType,
        max_offers: "int | None",
        offer_mode: str = "full",
    ) -> NegotiationPlan:
        importance = self._importance_of(profile)
        telemetry = self.telemetry

        # Step 1: static local negotiation.
        with telemetry.span("negotiation.step1.local") as sp1:
            violations, local_best = self._static_local_negotiation(
                document, profile, client
            )
            sp1.set_attribute("violations", len(violations))
            if violations:
                sp1.set_attribute(
                    "violated_media",
                    sorted(medium.value for medium in violations),
                )
        if violations:
            return NegotiationPlan(early=NegotiationResult(
                status=NegotiationStatus.FAILED_WITH_LOCAL_OFFER,
                user_offer=local_best,
                local_violations=violations,
            ))

        # Step 2: static compatibility checking (decoder support, plus
        # the security floor when the profile carries preferences).
        with telemetry.span("negotiation.step2.filter") as sp2:
            preferences = self._preferences_of(profile)
            variant_filter = None
            if preferences is not None and self.directory is not None:
                variant_filter = preferences.variant_filter(self.directory)

            def build() -> OfferSpace:
                return build_offer_space(
                    document,
                    client,
                    self.cost_model,
                    mapper=self.mapper,
                    guarantee=guarantee,
                    variant_filter=variant_filter,
                )

            # A variant filter makes the space caller-specific, so only
            # filter-free requests go through the cache.
            space_key = None
            if self.cache is not None and variant_filter is None:
                space_key = self.cache.space_key(
                    document_id=document.document_id,
                    version=self.database.version_of(document.document_id),
                    client=client,
                    guarantee=guarantee,
                    cost_model=self.cost_model,
                    mapper=self.mapper,
                )
                space = self.cache.offer_space(space_key, build)
                sp2.set_attribute("cached", True)
            else:
                space = build()
            kept = sum(space.axis_sizes().values())
            dropped = sum(len(v) for v in space.rejected.values())
            sp2.set_attribute("offers_in", kept + dropped)
            sp2.set_attribute("offers_out", kept)
            sp2.set_attribute("dropped", dropped)
            if dropped:
                sp2.set_attribute(
                    "drop_reasons",
                    {
                        monomedia: len(variants)
                        for monomedia, variants in sorted(
                            space.rejected.items()
                        )
                        if variants
                    },
                )
            sp2.set_attribute("offer_count", space.offer_count)
            telemetry.count(
                "negotiation.offers.enumerated", float(kept + dropped)
            )
            if dropped:
                telemetry.count(
                    "negotiation.offers.dropped", float(dropped), step="2"
                )
        if space.is_empty:
            return NegotiationPlan(early=NegotiationResult(
                status=NegotiationStatus.FAILED_WITHOUT_OFFER,
                offer_space=space,
            ), space=space)

        # A non-trivial preference offer_bonus is per-offer, which
        # breaks the separability the best-first stream relies on —
        # those requests fall back to the vectorized full sort.
        separable = preferences is None or preferences.is_trivial
        if offer_mode in ("stream", "auto") and separable:
            return self._plan_streaming_steps(
                space, profile, importance,
                policy=policy, max_offers=max_offers,
            )

        # Step 3: classification parameters (SNS + OIF per offer).
        with telemetry.span("negotiation.step3.parameters") as sp3:
            if self.cache is not None and space_key is not None:
                arrays = self.cache.classification(
                    space_key,
                    profile,
                    importance,
                    policy,
                    lambda: classify_arrays(
                        space, profile, importance, policy=policy
                    ),
                )
                classified = arrays.materialize(space, max_offers)
                sp3.set_attribute("cached", True)
            else:
                classified = classify_space(
                    space, profile, importance, policy=policy,
                    top_k=max_offers,
                )
            cut = space.offer_count - len(classified)
            sp3.set_attribute("offers_in", space.offer_count)
            sp3.set_attribute("offers_out", len(classified))
            sp3.set_attribute("dropped", cut)
            if cut:
                sp3.set_attribute("drop_reasons", {"top-k cut": cut})
                telemetry.count(
                    "negotiation.offers.dropped", float(cut), step="3"
                )

        # Step 4: classification of system offers (ordering policy).
        with telemetry.span(
            "negotiation.step4.classify", policy=policy.value
        ) as sp4:
            if preferences is not None and not preferences.is_trivial:
                classified = apply_offer_bonus(
                    classified, preferences.offer_bonus, policy=policy
                )
                sp4.set_attribute("offer_bonus", True)
            sp4.set_attribute("offers_in", len(classified))
            sp4.set_attribute("offers_out", len(classified))
            sp4.set_attribute(
                "satisfying",
                sum(1 for c in classified if c.satisfies_user),
            )

        return NegotiationPlan(
            space=space, classified=classified, offers_in=len(classified)
        )

    def _plan_streaming_steps(
        self,
        space: OfferSpace,
        profile: UserProfile,
        importance: ImportanceProfile,
        *,
        policy: ClassificationPolicy,
        max_offers: "int | None",
    ) -> NegotiationPlan:
        """Steps 3–4 over the lazy best-first stream: offers are
        classified (and materialised) only as the commitment walk
        consumes them, in exactly the full sort's order."""
        telemetry = self.telemetry
        total = space.offer_count
        out = total if max_offers is None else min(total, max_offers)
        with telemetry.span("negotiation.step3.parameters") as sp3:
            stream = stream_classified(
                space, profile, importance, policy=policy
            )
            if max_offers is not None:
                stream = itertools.islice(stream, max_offers)
            sp3.set_attribute("streaming", True)
            sp3.set_attribute("offers_in", total)
            sp3.set_attribute("offers_out", out)
            sp3.set_attribute("dropped", total - out)
            if total - out:
                sp3.set_attribute("drop_reasons", {"top-k cut": total - out})
                telemetry.count(
                    "negotiation.offers.dropped", float(total - out), step="3"
                )
        with telemetry.span(
            "negotiation.step4.classify", policy=policy.value
        ) as sp4:
            sp4.set_attribute("streaming", True)
            sp4.set_attribute("offers_in", out)
            sp4.set_attribute("offers_out", out)
        return NegotiationPlan(space=space, stream=stream, offers_in=out)

    def _commit_best(
        self,
        classified: "list[ClassifiedOffer]",
        space: OfferSpace,
        profile: UserProfile,
        client: ClientMachine,
        guarantee: GuaranteeType,
        *,
        exclude_offer_ids: frozenset[str] = frozenset(),
    ) -> NegotiationResult:
        """Walk the classified list in two passes (§5.2.2(c)):
        user-satisfying offers first, then the remaining feasible ones —
        each pass in classified order.

        When the committer tracks health, offers using a quarantined
        (circuit-open) server are skipped outright — the walk degrades
        gracefully to alternate-server variants instead of spending its
        retry budget against a machine known to be failing."""
        holder = self.new_holder()
        satisfying = [
            c for c in classified
            if c.satisfies_user and c.offer.offer_id not in exclude_offer_ids
        ]
        fallback = [
            c for c in classified
            if not c.satisfies_user and c.offer.offer_id not in exclude_offer_ids
        ]
        with self.telemetry.span(
            "negotiation.step5.commit",
            offers_in=len(satisfying) + len(fallback),
            holder=holder,
        ) as sp5:
            chosen, commitment, attempts, skips = self._attempt_walk(
                itertools.chain(satisfying, fallback),
                space, profile, client, guarantee, holder,
            )
            return self._step5_result(
                sp5, chosen, commitment, attempts, skips,
                classified=classified, space=space, profile=profile,
                rest=None,
            )

    def _commit_stream(
        self,
        stream: "Iterator[ClassifiedOffer]",
        space: OfferSpace,
        profile: UserProfile,
        client: ClientMachine,
        guarantee: GuaranteeType,
        *,
        offers_in: int,
    ) -> NegotiationResult:
        """Step 5 over the lazy stream, in the same two-pass order as
        the eager walk: user-satisfying offers are attempted as they
        arrive (the stream is best-first, so their relative order
        matches the eager satisfying pass), non-satisfying ones are
        buffered and attempted after the stream drains.  The attempt
        sequence — and hence the outcome — is identical to
        :meth:`_commit_best` over the fully sorted list."""
        holder = self.new_holder()
        consumed: list[ClassifiedOffer] = []
        deferred: list[ClassifiedOffer] = []

        def candidates() -> "Iterator[ClassifiedOffer]":
            for item in stream:
                consumed.append(item)
                if item.satisfies_user:
                    yield item
                else:
                    deferred.append(item)
            yield from deferred

        with self.telemetry.span(
            "negotiation.step5.commit",
            offers_in=offers_in,
            holder=holder,
        ) as sp5:
            chosen, commitment, attempts, skips = self._attempt_walk(
                candidates(), space, profile, client, guarantee, holder
            )
            return self._step5_result(
                sp5, chosen, commitment, attempts, skips,
                classified=consumed, space=space, profile=profile,
                rest=stream,
            )

    def _attempt_walk(
        self,
        candidates: "Iterable[ClassifiedOffer]",
        space: OfferSpace,
        profile: UserProfile,
        client: ClientMachine,
        guarantee: GuaranteeType,
        holder: str,
    ) -> "tuple[ClassifiedOffer | None, Commitment | None, int, int]":
        """Try to commit candidates in the order given; stop at the
        first success.  Returns (chosen, commitment, attempts, skips)
        with ``chosen=None`` when every candidate was exhausted."""
        health = self.committer.health
        telemetry = self.telemetry
        attempts = 0
        skips = 0
        for candidate in candidates:
            if health is not None:
                now = self.clock.now()
                if not all(
                    health.allow(server_id, now)
                    for server_id in candidate.offer.servers_used()
                ):
                    self.committer.stats.breaker_skips += 1
                    skips += 1
                    telemetry.count("breaker.skips")
                    telemetry.count(
                        "negotiation.offers.dropped", step="5"
                    )
                    with telemetry.span(
                        "negotiation.step5.attempt",
                        offer_id=candidate.offer.offer_id,
                        servers=sorted(candidate.offer.servers_used()),
                    ) as skip_span:
                        skip_span.set_attribute(
                            "outcome", "breaker-skip"
                        )
                    continue
            attempts += 1
            with telemetry.span(
                "negotiation.step5.attempt",
                offer_id=candidate.offer.offer_id,
                servers=sorted(candidate.offer.servers_used()),
            ) as attempt_span:
                bundle = self.committer.try_commit(
                    candidate.offer,
                    space,
                    client.access_point,
                    guarantee=guarantee,
                    holder=holder,
                )
                attempt_span.set_attribute(
                    "outcome",
                    "committed" if bundle is not None else "rolled-back",
                )
            if bundle is None:
                telemetry.count("negotiation.offers.dropped", step="5")
                continue
            commitment = Commitment(
                bundle,
                self.committer,
                reserved_at=self.clock.now(),
                choice_period_s=profile.choice_period_s,
                telemetry=telemetry,
                trace_context=telemetry.tracer.root_context(),
            )
            return candidate, commitment, attempts, skips
        return None, None, attempts, skips

    def _step5_result(
        self,
        sp5: Any,
        chosen: "ClassifiedOffer | None",
        commitment: "Commitment | None",
        attempts: int,
        skips: int,
        *,
        classified: "list[ClassifiedOffer]",
        space: OfferSpace,
        profile: UserProfile,
        rest: "Iterator[ClassifiedOffer] | None",
    ) -> NegotiationResult:
        sp5.set_attribute("attempts", attempts)
        sp5.set_attribute("breaker_skips", skips)
        if chosen is not None:
            status = (
                NegotiationStatus.SUCCEEDED
                if chosen.satisfies_user
                else NegotiationStatus.FAILED_WITH_OFFER
            )
            sp5.set_attribute("outcome", str(status))
            sp5.set_attribute("chosen", chosen.offer.offer_id)
            return NegotiationResult(
                status=status,
                user_offer=derive_user_offer(
                    chosen.offer, profile.desired.time
                ),
                chosen=chosen,
                commitment=commitment,
                classified=classified,
                offer_space=space,
                attempts=attempts,
                _rest=rest,
            )
        # "If the whole set of the feasible system offers are
        # considered and no resources are available" (§4 step 5):
        sp5.set_attribute(
            "outcome", str(NegotiationStatus.FAILED_TRY_LATER)
        )
        return NegotiationResult(
            status=NegotiationStatus.FAILED_TRY_LATER,
            classified=classified,
            offer_space=space,
            attempts=attempts,
            retry_after_s=self.retry_after_hint(),
            _rest=rest,
        )

    def retry_after_hint(self) -> float:
        """When is retrying the whole negotiation first worthwhile?  The
        earliest quarantine expiry if a breaker is open, else a default
        heuristic."""
        health = self.committer.health
        if health is not None:
            reopen = health.earliest_reopen(self.clock.now())
            if reopen is not None:
                return max(reopen - self.clock.now(), 0.0)
        return DEFAULT_RETRY_AFTER_S

    # -- renegotiation (§8) ------------------------------------------------------------

    def renegotiate(
        self,
        previous: NegotiationResult,
        document: "Document | str",
        profile: UserProfile,
        client: ClientMachine,
        **kwargs: Any,
    ) -> NegotiationResult:
        """The GUI's renegotiation path: "modify the offer and then push
        OK to initiate a renegotiation" (§8).

        Any resources still held by ``previous`` are released first
        (rejecting the pending offer), then the procedure runs afresh
        with the edited profile.

        ``reject`` already treats the expired/rejected/released states
        as a no-op, so nothing is caught here: a journal-append fault
        or a reject on a confirmed commitment is a real error and must
        propagate instead of masquerading as "already expired".
        """
        if previous.commitment is not None:
            previous.commitment.reject(self.clock.now())
        return self.negotiate(document, profile, client, **kwargs)

    # -- helpers ------------------------------------------------------------------------

    @staticmethod
    def _preferences_of(profile: UserProfile) -> "UserPreferences | None":
        preferences = profile.preferences
        if preferences is None:
            return None
        from .preferences import UserPreferences

        if not isinstance(preferences, UserPreferences):
            raise NegotiationError(
                f"profile {profile.name!r} carries invalid preferences "
                f"({type(preferences).__name__})"
            )
        return preferences

    @staticmethod
    def _importance_of(profile: UserProfile) -> ImportanceProfile:
        importance = profile.importance
        if importance is None:
            return default_importance()
        if not isinstance(importance, ImportanceProfile):
            raise NegotiationError(
                f"profile {profile.name!r} carries an invalid importance "
                f"profile ({type(importance).__name__})"
            )
        return importance
