"""The QoS manager and the six-step negotiation procedure (paper §4).

Inputs: "the document to be played and the user profile selected by the
user"; output: "the negotiation status and possibly a user offer".  The
steps, in order:

1. **Static local negotiation** — client machine characteristics vs the
   requested QoS → FAILEDWITHLOCALOFFER (with the best locally
   presentable QoS as the returned offer).
2. **Static compatibility checking** — variant codecs vs client
   decoders → FAILEDWITHOUTOFFER when nothing decodable remains.
3. **Computation of classification parameters** — SNS + OIF per
   feasible offer.
4. **Classification of system offers** — best → worst (policy
   configurable, see :mod:`repro.core.classification`).
5. **Resource commitment** — walk the list (offers satisfying the
   requested QoS *and* cost first, then the remaining feasible offers,
   always in classified order), reserving server + network resources
   with rollback → SUCCEEDED / FAILEDWITHOFFER / FAILEDTRYLATER.
6. **User confirmation** — the returned :class:`Commitment` must be
   confirmed within ``choicePeriod`` or the reservation evaporates.

The full classified list is kept on the result: "during the active
phase, if QoS violations occur the adaptation procedure makes use of
the whole set of feasible system offers" (§4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from ..client.machine import ClientMachine
from ..cmfs.server import MediaServer
from ..documents.document import Document
from ..documents.media import Medium
from ..documents.quality import MediaQoS
from ..faults.health import CircuitBreaker
from ..faults.retry import RetryPolicy
from ..journal import ReservationJournal
from ..metadata.database import MetadataDatabase
from ..network.transport import GuaranteeType, TransportSystem
from ..telemetry import NegotiationReport, Telemetry
from ..util.clock import ManualClock
from ..util.errors import NegotiationError
from .classification import (
    ClassificationPolicy,
    ClassifiedOffer,
    apply_offer_bonus,
    classify_space,
)
from .commitment import Commitment, ResourceCommitter
from .cost import CostModel, default_cost_model
from .enumeration import OfferSpace, build_offer_space
from .importance import ImportanceProfile, default_importance
from .mapping import QoSMapper
from .offers import derive_user_offer
from .profiles import MMProfile, UserProfile
from .status import NegotiationStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .preferences import UserPreferences

__all__ = ["DEFAULT_RETRY_AFTER_S", "NegotiationResult", "QoSManager"]

DEFAULT_RETRY_AFTER_S = 30.0
"""Retry-after hint on FAILEDTRYLATER when no breaker knows better —
roughly the time scale on which playing sessions end and free capacity."""


@dataclass(slots=True)
class NegotiationResult:
    """Status + user offer + everything adaptation needs later."""

    status: NegotiationStatus
    user_offer: MMProfile | None = None
    chosen: ClassifiedOffer | None = None
    commitment: Commitment | None = None
    classified: list[ClassifiedOffer] = field(default_factory=list)
    offer_space: OfferSpace | None = None
    local_violations: dict[Medium, tuple[str, ...]] = field(default_factory=dict)
    attempts: int = 0
    retry_after_s: "float | None" = None  # hint accompanying FAILEDTRYLATER
    report: "NegotiationReport | None" = None  # trace-derived step account

    @property
    def succeeded(self) -> bool:
        return self.status.is_success

    def summary(self) -> str:
        lines = [f"negotiation status: {self.status}"]
        if self.user_offer is not None:
            lines.append(f"user offer: {self.user_offer.describe()}")
        if self.chosen is not None:
            lines.append(f"chosen: {self.chosen}")
        lines.append(f"offers classified: {len(self.classified)}")
        lines.append(f"commitment attempts: {self.attempts}")
        if self.retry_after_s is not None:
            lines.append(f"retry after: {self.retry_after_s:g}s")
        return "\n".join(lines)


class QoSManager:
    """The component implementing QoS negotiation and adaptation (§4).

    One manager serves one deployment (metadata DB + transport + server
    fleet); :meth:`negotiate` runs the procedure for one user request.
    """

    def __init__(
        self,
        *,
        database: MetadataDatabase,
        transport: TransportSystem,
        servers: Mapping[str, MediaServer],
        cost_model: CostModel | None = None,
        mapper: QoSMapper | None = None,
        clock: ManualClock | None = None,
        policy: ClassificationPolicy = ClassificationPolicy.SNS_PRIMARY,
        guarantee: GuaranteeType = GuaranteeType.GUARANTEED,
        directory: "object | None" = None,
        retry_policy: "RetryPolicy | None" = None,
        health: "CircuitBreaker | None" = None,
        lease_ttl_s: "float | None" = None,
        retry_seed: int = 0,
        journal: "ReservationJournal | None" = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.database = database
        self.cost_model = cost_model or default_cost_model()
        self.mapper = mapper or QoSMapper()
        self.clock = clock or ManualClock()
        self.policy = policy
        self.guarantee = guarantee
        self.directory = directory  # ServerDirectory, for preferences
        self.telemetry = telemetry or Telemetry.disabled()
        self.committer = ResourceCommitter(
            transport,
            servers,
            clock=self.clock,
            retry_policy=retry_policy,
            health=health,
            lease_ttl_s=lease_ttl_s,
            retry_seed=retry_seed,
            journal=journal,
            telemetry=self.telemetry,
        )
        self._holders = itertools.count(1)

    # -- step 1 -----------------------------------------------------------------

    def _static_local_negotiation(
        self, document: Document, profile: UserProfile, client: ClientMachine
    ) -> "tuple[dict[Medium, tuple[str, ...]], MMProfile]":
        """Check client characteristics against the desired QoS; return
        (violations, best locally supportable MM profile)."""
        violations: dict[Medium, tuple[str, ...]] = {}
        local_best: dict[str, MediaQoS] = {}
        for medium, requirement in profile.desired.qos_points():
            result = client.check_local(requirement)
            if not result.supported:
                violations[medium] = result.violations
            local_best[medium.value] = result.local_best
        if document.sync.spatial is not None:
            width, height = document.sync.spatial.bounding_box()
            if not client.fits_layout(width, height):
                violations.setdefault(Medium.VIDEO, ("layout",))
        best_profile = MMProfile(
            cost=profile.desired.cost,
            time=profile.desired.time,
            **local_best,
        )
        return violations, best_profile

    # -- the procedure -----------------------------------------------------------------

    def negotiate(
        self,
        document: "Document | str",
        profile: UserProfile,
        client: ClientMachine,
        *,
        policy: ClassificationPolicy | None = None,
        guarantee: GuaranteeType | None = None,
        max_offers: "int | None" = None,
    ) -> NegotiationResult:
        """Run steps 1–5 and wrap the reservation for step 6."""
        telemetry = self.telemetry
        started = self.clock.now()
        document_id = document if isinstance(document, str) else document.document_id
        with telemetry.span(
            "negotiation",
            document=document_id,
            profile=profile.name,
        ) as root:
            if isinstance(document, str):
                document = self.database.get_document(document)
            result = self._run_steps(
                document,
                profile,
                client,
                policy=policy or self.policy,
                guarantee=guarantee or self.guarantee,
                max_offers=max_offers,
            )
            root.set_attribute("status", str(result.status))
            root.set_attribute("attempts", result.attempts)
        telemetry.count("negotiation.outcomes", status=str(result.status))
        telemetry.observe(
            "negotiation.latency_s", self.clock.now() - started
        )
        telemetry.observe("negotiation.attempts", float(result.attempts))
        telemetry.observe(
            "negotiation.offers.classified", float(len(result.classified))
        )
        if telemetry.enabled:
            result.report = NegotiationReport.from_spans(
                telemetry.tracer.last_trace()
            )
        return result

    def _run_steps(
        self,
        document: Document,
        profile: UserProfile,
        client: ClientMachine,
        *,
        policy: ClassificationPolicy,
        guarantee: GuaranteeType,
        max_offers: "int | None",
    ) -> NegotiationResult:
        importance = self._importance_of(profile)
        telemetry = self.telemetry

        # Step 1: static local negotiation.
        with telemetry.span("negotiation.step1.local") as sp1:
            violations, local_best = self._static_local_negotiation(
                document, profile, client
            )
            sp1.set_attribute("violations", len(violations))
            if violations:
                sp1.set_attribute(
                    "violated_media",
                    sorted(medium.value for medium in violations),
                )
        if violations:
            return NegotiationResult(
                status=NegotiationStatus.FAILED_WITH_LOCAL_OFFER,
                user_offer=local_best,
                local_violations=violations,
            )

        # Step 2: static compatibility checking (decoder support, plus
        # the security floor when the profile carries preferences).
        with telemetry.span("negotiation.step2.filter") as sp2:
            preferences = self._preferences_of(profile)
            variant_filter = None
            if preferences is not None and self.directory is not None:
                variant_filter = preferences.variant_filter(self.directory)
            space = build_offer_space(
                document,
                client,
                self.cost_model,
                mapper=self.mapper,
                guarantee=guarantee,
                variant_filter=variant_filter,
            )
            kept = sum(space.axis_sizes().values())
            dropped = sum(len(v) for v in space.rejected.values())
            sp2.set_attribute("offers_in", kept + dropped)
            sp2.set_attribute("offers_out", kept)
            sp2.set_attribute("dropped", dropped)
            if dropped:
                sp2.set_attribute(
                    "drop_reasons",
                    {
                        monomedia: len(variants)
                        for monomedia, variants in sorted(
                            space.rejected.items()
                        )
                        if variants
                    },
                )
            sp2.set_attribute("offer_count", space.offer_count)
            telemetry.count(
                "negotiation.offers.enumerated", float(kept + dropped)
            )
            if dropped:
                telemetry.count(
                    "negotiation.offers.dropped", float(dropped), step="2"
                )
        if space.is_empty:
            return NegotiationResult(
                status=NegotiationStatus.FAILED_WITHOUT_OFFER,
                offer_space=space,
            )

        # Step 3: classification parameters (SNS + OIF per offer).
        with telemetry.span("negotiation.step3.parameters") as sp3:
            classified = classify_space(
                space, profile, importance, policy=policy, top_k=max_offers
            )
            cut = space.offer_count - len(classified)
            sp3.set_attribute("offers_in", space.offer_count)
            sp3.set_attribute("offers_out", len(classified))
            sp3.set_attribute("dropped", cut)
            if cut:
                sp3.set_attribute("drop_reasons", {"top-k cut": cut})
                telemetry.count(
                    "negotiation.offers.dropped", float(cut), step="3"
                )

        # Step 4: classification of system offers (ordering policy).
        with telemetry.span(
            "negotiation.step4.classify", policy=policy.value
        ) as sp4:
            if preferences is not None and not preferences.is_trivial:
                classified = apply_offer_bonus(
                    classified, preferences.offer_bonus, policy=policy
                )
                sp4.set_attribute("offer_bonus", True)
            sp4.set_attribute("offers_in", len(classified))
            sp4.set_attribute("offers_out", len(classified))
            sp4.set_attribute(
                "satisfying",
                sum(1 for c in classified if c.satisfies_user),
            )

        # Step 5: resource commitment.
        return self._commit_best(
            classified, space, profile, client, guarantee
        )

    def _commit_best(
        self,
        classified: "list[ClassifiedOffer]",
        space: OfferSpace,
        profile: UserProfile,
        client: ClientMachine,
        guarantee: GuaranteeType,
        *,
        exclude_offer_ids: frozenset[str] = frozenset(),
    ) -> NegotiationResult:
        """Walk the classified list in two passes (§5.2.2(c)):
        user-satisfying offers first, then the remaining feasible ones —
        each pass in classified order.

        When the committer tracks health, offers using a quarantined
        (circuit-open) server are skipped outright — the walk degrades
        gracefully to alternate-server variants instead of spending its
        retry budget against a machine known to be failing."""
        holder = f"session-{next(self._holders)}"
        health = self.committer.health
        telemetry = self.telemetry
        attempts = 0
        skips = 0
        satisfying = [
            c for c in classified
            if c.satisfies_user and c.offer.offer_id not in exclude_offer_ids
        ]
        fallback = [
            c for c in classified
            if not c.satisfies_user and c.offer.offer_id not in exclude_offer_ids
        ]
        with telemetry.span(
            "negotiation.step5.commit",
            offers_in=len(satisfying) + len(fallback),
            holder=holder,
        ) as sp5:
            for candidate in itertools.chain(satisfying, fallback):
                if health is not None:
                    now = self.clock.now()
                    if not all(
                        health.allow(server_id, now)
                        for server_id in candidate.offer.servers_used()
                    ):
                        self.committer.stats.breaker_skips += 1
                        skips += 1
                        telemetry.count("breaker.skips")
                        telemetry.count(
                            "negotiation.offers.dropped", step="5"
                        )
                        with telemetry.span(
                            "negotiation.step5.attempt",
                            offer_id=candidate.offer.offer_id,
                            servers=sorted(candidate.offer.servers_used()),
                        ) as skip_span:
                            skip_span.set_attribute(
                                "outcome", "breaker-skip"
                            )
                        continue
                attempts += 1
                with telemetry.span(
                    "negotiation.step5.attempt",
                    offer_id=candidate.offer.offer_id,
                    servers=sorted(candidate.offer.servers_used()),
                ) as attempt_span:
                    bundle = self.committer.try_commit(
                        candidate.offer,
                        space,
                        client.access_point,
                        guarantee=guarantee,
                        holder=holder,
                    )
                    attempt_span.set_attribute(
                        "outcome",
                        "committed" if bundle is not None else "rolled-back",
                    )
                if bundle is None:
                    telemetry.count("negotiation.offers.dropped", step="5")
                    continue
                commitment = Commitment(
                    bundle,
                    self.committer,
                    reserved_at=self.clock.now(),
                    choice_period_s=profile.choice_period_s,
                    telemetry=telemetry,
                    trace_context=telemetry.tracer.root_context(),
                )
                status = (
                    NegotiationStatus.SUCCEEDED
                    if candidate.satisfies_user
                    else NegotiationStatus.FAILED_WITH_OFFER
                )
                sp5.set_attribute("attempts", attempts)
                sp5.set_attribute("breaker_skips", skips)
                sp5.set_attribute("outcome", str(status))
                sp5.set_attribute("chosen", candidate.offer.offer_id)
                return NegotiationResult(
                    status=status,
                    user_offer=derive_user_offer(
                        candidate.offer, profile.desired.time
                    ),
                    chosen=candidate,
                    commitment=commitment,
                    classified=classified,
                    offer_space=space,
                    attempts=attempts,
                )
            # "If the whole set of the feasible system offers are
            # considered and no resources are available" (§4 step 5):
            sp5.set_attribute("attempts", attempts)
            sp5.set_attribute("breaker_skips", skips)
            sp5.set_attribute(
                "outcome", str(NegotiationStatus.FAILED_TRY_LATER)
            )
            return NegotiationResult(
                status=NegotiationStatus.FAILED_TRY_LATER,
                classified=classified,
                offer_space=space,
                attempts=attempts,
                retry_after_s=self._retry_after_hint(),
            )

    def _retry_after_hint(self) -> float:
        """When is retrying the whole negotiation first worthwhile?  The
        earliest quarantine expiry if a breaker is open, else a default
        heuristic."""
        health = self.committer.health
        if health is not None:
            reopen = health.earliest_reopen(self.clock.now())
            if reopen is not None:
                return max(reopen - self.clock.now(), 0.0)
        return DEFAULT_RETRY_AFTER_S

    # -- renegotiation (§8) ------------------------------------------------------------

    def renegotiate(
        self,
        previous: NegotiationResult,
        document: "Document | str",
        profile: UserProfile,
        client: ClientMachine,
        **kwargs: Any,
    ) -> NegotiationResult:
        """The GUI's renegotiation path: "modify the offer and then push
        OK to initiate a renegotiation" (§8).

        Any resources still held by ``previous`` are released first
        (rejecting the pending offer), then the procedure runs afresh
        with the edited profile.
        """
        if previous.commitment is not None:
            try:
                previous.commitment.reject(self.clock.now())
            except NegotiationError:
                pass  # already expired: nothing held
        return self.negotiate(document, profile, client, **kwargs)

    # -- helpers ------------------------------------------------------------------------

    @staticmethod
    def _preferences_of(profile: UserProfile) -> "UserPreferences | None":
        preferences = profile.preferences
        if preferences is None:
            return None
        from .preferences import UserPreferences

        if not isinstance(preferences, UserPreferences):
            raise NegotiationError(
                f"profile {profile.name!r} carries invalid preferences "
                f"({type(preferences).__name__})"
            )
        return preferences

    @staticmethod
    def _importance_of(profile: UserProfile) -> ImportanceProfile:
        importance = profile.importance
        if importance is None:
            return default_importance()
        if not isinstance(importance, ImportanceProfile):
            raise NegotiationError(
                f"profile {profile.name!r} carries an invalid importance "
                f"profile ({type(importance).__name__})"
            )
        return importance
