"""The paper's contribution: the QoS negotiation procedure.

Profiles (§3), offers and their mapping (§4), classification (§5),
QoS mapping (§6), cost computation (§7), the six-step negotiation and
the adaptation procedure (§4), and the profile manager (§3/§8).
"""

from .adaptation import AdaptationManager, AdaptationOutcome, AdaptationStrategy
from .classification import (
    MAX_VECTOR_OFFERS,
    ClassificationPolicy,
    ClassifiedOffer,
    apply_offer_bonus,
    classify_offer,
    classify_offers,
    classify_space,
    compute_sns,
)
from .preferences import (
    SecurityLevel,
    ServerAttributes,
    ServerDirectory,
    UserPreferences,
)
from .commitment import (
    Commitment,
    CommitmentState,
    ReservationBundle,
    ResourceCommitter,
)
from .cost import (
    CostBreakdown,
    CostModel,
    CostTable,
    MonomediaCost,
    ThroughputClass,
    default_cost_model,
    default_network_table,
    default_server_table,
)
from .enumeration import OfferSpace, VariantChoice, build_offer_space
from .importance import (
    ImportanceProfile,
    ScaleImportance,
    default_importance,
    paper_example_importance,
)
from .mapping import QoSMapper, flow_spec_for_variant
from .negotiation import NegotiationPlan, NegotiationResult, QoSManager
from .offers import SystemOffer, derive_user_offer
from .profile_io import (
    dump_profiles,
    load_profiles,
    profile_from_record,
    profile_to_record,
    read_profiles,
    save_profiles,
)
from .profile_manager import ProfileManager, make_profile, standard_profiles
from .profiles import MMProfile, TimeProfile, UserProfile
from .status import NegotiationStatus, StaticNegotiationStatus

__all__ = [name for name in dir() if not name.startswith("_")]
