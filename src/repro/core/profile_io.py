"""Persistence for user profiles (the GUI's *Save* across sessions).

The §8 profile manager persists user profiles between sessions; this
module serializes the full :class:`UserProfile` — the two MM profiles,
the importance profile (anchors, overrides, per-level tables, media
weights, cost weight) and the extension preferences — to versioned JSON,
reusing the metadata layer's QoS record format.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Union

from ..documents.media import AudioGrade, ColorMode, Language, Medium
from ..metadata.schema import qos_from_record, qos_to_record
from ..util.errors import PersistenceError
from ..util.units import Money
from .importance import ImportanceProfile, ScaleImportance
from .preferences import SecurityLevel, UserPreferences
from .profile_manager import ProfileManager
from .profiles import MMProfile, TimeProfile, UserProfile

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "profile_to_record",
    "profile_from_record",
    "dump_profiles",
    "load_profiles",
    "save_profiles",
    "read_profiles",
]

PROFILE_SCHEMA_VERSION = 1


# -- MM profile ----------------------------------------------------------------

def _mm_to_record(mm: MMProfile) -> dict:
    record: dict = {
        "cost_cents": mm.cost.cents,
        "time": {
            "delivery_deadline_s": mm.time.delivery_deadline_s,
            "choice_period_s": mm.time.choice_period_s,
        },
        "media": {},
    }
    for medium, qos in mm.qos_points():
        record["media"][medium.value] = qos_to_record(qos)
    return record


def _mm_from_record(record: dict) -> MMProfile:
    media = {
        Medium.parse(name).value: qos_from_record(blob)
        for name, blob in record.get("media", {}).items()
    }
    time_blob = record.get("time", {})
    return MMProfile(
        cost=Money(int(record.get("cost_cents", 0))),
        time=TimeProfile(
            delivery_deadline_s=float(
                time_blob.get("delivery_deadline_s", 30.0)
            ),
            choice_period_s=float(time_blob.get("choice_period_s", 60.0)),
        ),
        **media,
    )


# -- importance profile ----------------------------------------------------------

def _scale_to_record(scale: ScaleImportance) -> dict:
    return {
        "anchors": {str(k): v for k, v in scale.anchors.items()},
        "overrides": {str(k): v for k, v in scale.overrides.items()},
    }


def _scale_from_record(record: dict) -> ScaleImportance:
    return ScaleImportance(
        anchors={float(k): float(v) for k, v in record["anchors"].items()},
        overrides={
            float(k): float(v)
            for k, v in record.get("overrides", {}).items()
        },
    )


def _importance_to_record(importance: ImportanceProfile) -> dict:
    return {
        "color": {mode.name.lower(): v for mode, v in importance.color.items()},
        "frame_rate": _scale_to_record(importance.frame_rate),
        "resolution": _scale_to_record(importance.resolution),
        "audio_grade": {
            grade.name.lower(): v
            for grade, v in importance.audio_grade.items()
        },
        "language": {
            language.value: v for language, v in importance.language.items()
        },
        "media_weight": {
            medium.value: weight
            for medium, weight in importance.media_weight.items()
            if not math.isclose(weight, 1.0)
        },
        "cost_per_dollar": importance.cost_per_dollar,
    }


def _importance_from_record(record: dict) -> ImportanceProfile:
    return ImportanceProfile(
        color={
            ColorMode.parse(name): float(v)
            for name, v in record["color"].items()
        },
        frame_rate=_scale_from_record(record["frame_rate"]),
        resolution=_scale_from_record(record["resolution"]),
        audio_grade={
            AudioGrade.parse(name): float(v)
            for name, v in record["audio_grade"].items()
        },
        language={
            Language.parse(code): float(v)
            for code, v in record["language"].items()
        },
        media_weight={
            Medium.parse(name): float(weight)
            for name, weight in record.get("media_weight", {}).items()
        },
        cost_per_dollar=float(record.get("cost_per_dollar", 0.0)),
    )


# -- preferences --------------------------------------------------------------------

def _preferences_to_record(preferences: UserPreferences) -> dict:
    return {
        "server_preference": dict(preferences.server_preference),
        "min_security": preferences.min_security.name.lower(),
    }


def _preferences_from_record(record: dict) -> UserPreferences:
    return UserPreferences(
        server_preference=record.get("server_preference", {}),
        min_security=SecurityLevel.parse(
            record.get("min_security", "public")
        ),
    )


# -- user profile -----------------------------------------------------------------------

def profile_to_record(profile: UserProfile) -> dict:
    record: dict = {
        "name": profile.name,
        "desired": _mm_to_record(profile.desired),
        "worst": _mm_to_record(profile.worst),
    }
    if isinstance(profile.importance, ImportanceProfile):
        record["importance"] = _importance_to_record(profile.importance)
    if isinstance(profile.preferences, UserPreferences):
        record["preferences"] = _preferences_to_record(profile.preferences)
    return record


def profile_from_record(record: dict) -> UserProfile:
    try:
        importance = (
            _importance_from_record(record["importance"])
            if "importance" in record
            else None
        )
        preferences = (
            _preferences_from_record(record["preferences"])
            if "preferences" in record
            else None
        )
        return UserProfile(
            name=record["name"],
            desired=_mm_from_record(record["desired"]),
            worst=_mm_from_record(record["worst"]),
            importance=importance,
            preferences=preferences,
        )
    except KeyError as exc:
        raise PersistenceError(f"profile record missing field: {exc}") from None


# -- whole profile manager -----------------------------------------------------------------

def dump_profiles(manager: ProfileManager, *, indent: "int | None" = 2) -> str:
    envelope = {
        "schema_version": PROFILE_SCHEMA_VERSION,
        "default": manager.default_name,
        "profiles": [profile_to_record(p) for p in manager],
    }
    return json.dumps(envelope, indent=indent, sort_keys=True)


def load_profiles(text: str) -> ProfileManager:
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"invalid JSON: {exc}") from None
    version = envelope.get("schema_version")
    if version != PROFILE_SCHEMA_VERSION:
        raise PersistenceError(
            f"unsupported profile schema version {version!r}"
        )
    manager = ProfileManager(profiles=[])
    for record in envelope.get("profiles", ()):
        manager.save_as(profile_from_record(record))
    default = envelope.get("default")
    if default and default in manager:
        manager.set_default(default)
    return manager


def save_profiles(manager: ProfileManager, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(dump_profiles(manager), encoding="utf-8")
    return path


def read_profiles(path: Union[str, Path]) -> ProfileManager:
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"no profile store at {path}")
    return load_profiles(path.read_text(encoding="utf-8"))
