"""User profiles (paper §3, Figure 2).

"A user profile consists of (1) a MM profile which indicates the desired
values, (2) a MM profile which indicates the worst acceptable values,
and (3) the importance profile...  A MM profile consists of video,
audio, text, and image profiles, cost profile and time profile."

An :class:`MMProfile` is one bundle of per-medium QoS points plus cost
and time bounds.  The same type represents *user offers* (§4 Definition
2: "a user offer is specified as a MM profile"), so comparing an offer
against the profile is symmetric by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping

from ..documents.media import Medium
from ..documents.quality import (
    AudioQoS,
    GraphicQoS,
    ImageQoS,
    MediaQoS,
    TextQoS,
    VideoQoS,
    qos_class_for,
)
from ..util.errors import ProfileError
from ..util.units import Money, dollars
from ..util.validation import check_name, check_positive

__all__ = ["TimeProfile", "MMProfile", "UserProfile"]


@dataclass(frozen=True, slots=True)
class TimeProfile:
    """Time constraints of §3: how soon delivery must start and how long
    the user will keep resources waiting for confirmation (§8's
    ``choicePeriod`` default lives here)."""

    delivery_deadline_s: float = 30.0
    choice_period_s: float = 60.0

    def __post_init__(self) -> None:
        check_positive(self.delivery_deadline_s, "delivery_deadline_s")
        check_positive(self.choice_period_s, "choice_period_s")


@dataclass(frozen=True, slots=True)
class MMProfile:
    """One MM profile: per-medium QoS points + cost + time bounds.

    Media the user does not care about are simply absent (``None``) —
    the §5 comparison then skips them.
    """

    video: VideoQoS | None = None
    audio: AudioQoS | None = None
    image: ImageQoS | None = None
    text: TextQoS | None = None
    graphic: GraphicQoS | None = None
    cost: Money = field(default_factory=Money.zero)
    time: TimeProfile = field(default_factory=TimeProfile)

    def __post_init__(self) -> None:
        object.__setattr__(self, "cost", dollars(self.cost))
        for medium in Medium:
            value = getattr(self, medium.value)
            if value is not None and not isinstance(
                value, qos_class_for(medium)
            ):
                raise ProfileError(
                    f"{medium.value} entry must be "
                    f"{qos_class_for(medium).__name__}, got {type(value).__name__}"
                )
        if self.cost.cents < 0:
            raise ProfileError(f"cost must be non-negative, got {self.cost}")

    # -- access ------------------------------------------------------------------

    def qos_for(self, medium: "Medium | str") -> MediaQoS | None:
        return getattr(self, Medium.parse(medium).value)

    def media_present(self) -> tuple[Medium, ...]:
        return tuple(
            medium for medium in Medium if getattr(self, medium.value) is not None
        )

    def qos_points(self) -> Iterator[tuple[Medium, MediaQoS]]:
        for medium in self.media_present():
            yield medium, getattr(self, medium.value)

    def with_qos(self, qos: MediaQoS) -> "MMProfile":
        """Copy with one medium's QoS replaced."""
        return replace(self, **{qos.medium.value: qos})

    def with_cost(self, cost: "Money | float") -> "MMProfile":
        return replace(self, cost=dollars(cost))

    # -- comparison (the §5 building block) -----------------------------------------

    def qos_satisfied_by(self, offered: "MMProfile") -> bool:
        """True iff ``offered`` meets or exceeds this profile's QoS for
        every medium this profile constrains.  Cost is deliberately not
        part of this test — §5.2.1 computes SNS from QoS alone."""
        for medium, bound in self.qos_points():
            offer_qos = offered.qos_for(medium)
            if offer_qos is None or not offer_qos.satisfies(bound):
                return False
        return True

    def qos_violations(self, offered: "MMProfile") -> dict[Medium, tuple[str, ...]]:
        """Per-medium violated parameter names (the red constraint
        buttons of the §8 profile-component window)."""
        violations: dict[Medium, tuple[str, ...]] = {}
        for medium, bound in self.qos_points():
            offer_qos = offered.qos_for(medium)
            if offer_qos is None:
                violations[medium] = ("missing",)
            else:
                bad = offer_qos.violated_parameters(bound)
                if bad:
                    violations[medium] = bad
        return violations

    def cost_satisfied_by(self, offered: "MMProfile") -> bool:
        """Whether the offer's price is within this profile's budget."""
        return offered.cost <= self.cost

    def describe(self) -> str:
        parts = [f"{medium.value}={qos}" for medium, qos in self.qos_points()]
        parts.append(f"cost={self.cost}")
        return "MMProfile(" + ", ".join(parts) + ")"


@dataclass(frozen=True, slots=True)
class UserProfile:
    """Desired + worst-acceptable MM profiles + the importance profile.

    The importance profile is typed loosely here (any object exposing
    the :class:`~repro.core.importance.ImportanceProfile` interface) to
    keep this module import-light; the negotiation layer always passes
    the real class.
    """

    name: str
    desired: MMProfile
    worst: MMProfile
    importance: object = None
    preferences: object = None
    """Optional :class:`repro.core.preferences.UserPreferences` — the
    conclusion's 'further preferences' (server choice, security)."""

    def __post_init__(self) -> None:
        check_name(self.name, "profile name")
        # The worst-acceptable profile must constrain the same media as
        # the desired profile, and must not demand *more* than desired.
        desired_media = set(self.desired.media_present())
        worst_media = set(self.worst.media_present())
        if desired_media != worst_media:
            raise ProfileError(
                f"desired and worst profiles constrain different media: "
                f"{sorted(m.value for m in desired_media)} vs "
                f"{sorted(m.value for m in worst_media)}"
            )
        if not self.worst.qos_satisfied_by(self.desired):
            # desired must dominate worst: asking for worse than the
            # minimum one accepts is contradictory.
            raise ProfileError(
                "desired QoS must satisfy the worst-acceptable bounds"
            )

    @property
    def max_cost(self) -> Money:
        """The overall cost ceiling: the larger of the two profile costs
        (the §5 examples use a single maximum-cost figure; building both
        profiles with the same cost reproduces that)."""
        return max(self.desired.cost, self.worst.cost)

    def media(self) -> tuple[Medium, ...]:
        return self.desired.media_present()

    @property
    def choice_period_s(self) -> float:
        return self.desired.time.choice_period_s

    def __str__(self) -> str:
        return f"UserProfile({self.name!r}, max_cost={self.max_cost})"
