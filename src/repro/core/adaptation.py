"""Automatic adaptation to QoS degradations (paper §4, last part).

"During the playout of the document, if the network or/and the server
machine become congested ... the QoS manager considers the ordered set
of system offers, except the current one (which is in difficulty), and
executes Step 5.  If an alternate system offer is selected and the
required resources are reserved, the QoS manager automatically performs
a transition from the current system offer to the new one."

The transition procedure implemented here is the paper's own: "the QoS
Manager stops the presentation of the document after having obtained
the current position of the document, and restarts the presentation
(using the alternate components) from the position parameter determined
earlier.  This transition procedure is a simple one" — its cost is the
configurable ``transition_overhead_s`` the E9 experiment measures.

Adaptation is automatic: the new commitment is confirmed immediately,
"without intervention by the user/application" (§1 point 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..client.machine import ClientMachine
from ..journal import JournalRecordType
from ..util.errors import AdaptationError
from ..util.validation import check_non_negative
from .classification import ClassifiedOffer
from .negotiation import NegotiationResult, QoSManager
from .profiles import UserProfile
from .status import NegotiationStatus

__all__ = ["AdaptationStrategy", "AdaptationOutcome", "AdaptationManager"]


class AdaptationStrategy(enum.Enum):
    """How the transition orders teardown and reservation.

    ``BREAK_BEFORE_MAKE`` is the paper's own procedure ("stops the
    presentation ... and restarts the presentation from the position
    determined earlier"): the troubled offer's resources are released
    before the alternate is reserved, so the alternate can reuse
    whatever healthy share of the same components remains.  If nothing
    can be reserved — not even the original offer again — the session
    is left without guarantees (``resources_lost``).

    ``MAKE_BEFORE_BREAK`` is the conservative variant: the alternate is
    reserved while the old offer still holds its resources; failure
    leaves the old reservation untouched, but alternates sharing a
    congested component with the old offer cannot fit next to it.
    """

    BREAK_BEFORE_MAKE = "break-before-make"
    MAKE_BEFORE_BREAK = "make-before-break"


@dataclass(frozen=True, slots=True)
class AdaptationOutcome:
    """Result of one adaptation attempt."""

    switched: bool
    old_offer_id: str
    new_result: NegotiationResult | None
    resume_position_s: float
    interruption_s: float
    reverted: bool = False
    resources_lost: bool = False

    @property
    def new_offer(self) -> "ClassifiedOffer | None":
        return self.new_result.chosen if self.new_result else None


class AdaptationManager:
    """Drives offer switching for sessions in difficulty."""

    def __init__(
        self,
        manager: QoSManager,
        *,
        transition_overhead_s: float = 2.0,
        strategy: AdaptationStrategy = AdaptationStrategy.BREAK_BEFORE_MAKE,
    ) -> None:
        self.manager = manager
        self.strategy = strategy
        self.transition_overhead_s = check_non_negative(
            transition_overhead_s, "transition_overhead_s"
        )

    def _journal_switch(
        self,
        old_holder: str,
        old_offer_id: str,
        new_result: NegotiationResult,
        position_s: float,
    ) -> None:
        """Record the §4 adaptation transition under the *new* holder —
        recovery then classifies the new holder as active-and-playing
        while the old holder's RELEASED record closes it out."""
        assert new_result.commitment is not None
        assert new_result.chosen is not None
        self.manager.committer.journal_event(
            JournalRecordType.ADAPT_SWITCH,
            new_result.commitment.bundle.holder,
            {
                "from_holder": old_holder,
                "old_offer_id": old_offer_id,
                "new_offer_id": new_result.chosen.offer.offer_id,
                "position_s": position_s,
            },
        )

    @staticmethod
    def _outcome_label(outcome: AdaptationOutcome) -> str:
        if outcome.switched:
            return "switched"
        if outcome.reverted:
            return "reverted"
        if outcome.resources_lost:
            return "resources-lost"
        return "blocked"

    def adapt(
        self,
        result: NegotiationResult,
        profile: UserProfile,
        client: ClientMachine,
        *,
        position_s: float,
        exclude_offer_ids: frozenset[str] = frozenset(),
        candidates: "list[ClassifiedOffer] | None" = None,
    ) -> AdaptationOutcome:
        """Attempt a transition away from the current offer.

        ``result`` must be a negotiation result that holds a commitment
        (the active session's).  ``exclude_offer_ids`` accumulates
        offers that already failed for this session so repeated
        adaptations do not retry them.  ``candidates`` restricts the
        walk to an explicit classified subset — the storm controller's
        downgrade-in-place fast path, which hands every member of a
        capability-class batch the same short list instead of the whole
        set; include the current offer in it so break-before-make can
        still revert.

        On success the old reservation is released *after* the new one
        is held (make-before-break) and the new commitment is confirmed
        automatically.  On failure the old reservation is left in place
        — a degraded session is still a session.
        """
        telemetry = self.manager.telemetry
        with telemetry.span(
            "adaptation.switch",
            strategy=self.strategy.value,
            position_s=position_s,
        ):
            outcome = self._adapt(
                result,
                profile,
                client,
                position_s=position_s,
                exclude_offer_ids=exclude_offer_ids,
                candidates=candidates,
            )
            label = self._outcome_label(outcome)
            telemetry.annotate(
                outcome=label, old_offer=outcome.old_offer_id
            )
        telemetry.count("adaptation.switches", outcome=label)
        return outcome

    def _adapt(
        self,
        result: NegotiationResult,
        profile: UserProfile,
        client: ClientMachine,
        *,
        position_s: float,
        exclude_offer_ids: frozenset[str] = frozenset(),
        candidates: "list[ClassifiedOffer] | None" = None,
    ) -> AdaptationOutcome:
        if result.commitment is None or result.chosen is None:
            raise AdaptationError(
                "adaptation needs an active commitment to move away from"
            )
        check_non_negative(position_s, "position_s")
        current_id = result.chosen.offer.offer_id
        current_holder = result.commitment.bundle.holder
        excluded = frozenset(exclude_offer_ids) | {current_id}

        if result.offer_space is None:
            raise AdaptationError("negotiation result carries no offer space")

        # Streaming negotiations keep only the consumed prefix on the
        # result; adaptation is the §4 consumer of "the whole set of
        # feasible system offers", so drain the remainder now — unless
        # the caller restricted the walk to an explicit subset.
        classified = (
            candidates
            if candidates is not None
            else result.ensure_classified()
        )

        def commit(exclude: frozenset) -> NegotiationResult:
            return self.manager._commit_best(
                classified,
                result.offer_space,
                profile,
                client,
                self.manager.guarantee,
                exclude_offer_ids=exclude,
            )

        if self.strategy is AdaptationStrategy.BREAK_BEFORE_MAKE:
            # The paper's transition: stop (release) first, then reserve
            # the alternate and restart from the obtained position.
            result.commitment.release()
            new_result = commit(excluded)
            if new_result.status is not NegotiationStatus.FAILED_TRY_LATER:
                assert new_result.commitment is not None
                new_result.commitment.confirm(self.manager.clock.now())
                self._journal_switch(
                    current_holder, current_id, new_result, position_s
                )
                return AdaptationOutcome(
                    switched=True,
                    old_offer_id=current_id,
                    new_result=new_result,
                    resume_position_s=position_s,
                    interruption_s=self.transition_overhead_s,
                )
            # No alternate: try to take the original offer back.
            only_current = frozenset(
                c.offer.offer_id
                for c in classified
                if c.offer.offer_id != current_id
            )
            revert = commit(only_current)
            if revert.status is not NegotiationStatus.FAILED_TRY_LATER:
                assert revert.commitment is not None
                revert.commitment.confirm(self.manager.clock.now())
                self._journal_switch(
                    current_holder, current_id, revert, position_s
                )
                return AdaptationOutcome(
                    switched=False,
                    old_offer_id=current_id,
                    new_result=revert,
                    resume_position_s=position_s,
                    interruption_s=0.0,
                    reverted=True,
                )
            # Nothing reservable at all: guarantees are gone.
            return AdaptationOutcome(
                switched=False,
                old_offer_id=current_id,
                new_result=None,
                resume_position_s=position_s,
                interruption_s=0.0,
                resources_lost=True,
            )

        # MAKE_BEFORE_BREAK: reserve the alternate while the old offer
        # still holds its resources; only then stop the old presentation.
        new_result = commit(excluded)
        if new_result.status is NegotiationStatus.FAILED_TRY_LATER:
            return AdaptationOutcome(
                switched=False,
                old_offer_id=current_id,
                new_result=None,
                resume_position_s=position_s,
                interruption_s=0.0,
            )
        result.commitment.release()
        assert new_result.commitment is not None
        new_result.commitment.confirm(self.manager.clock.now())
        self._journal_switch(
            current_holder, current_id, new_result, position_s
        )
        return AdaptationOutcome(
            switched=True,
            old_offer_id=current_id,
            new_result=new_result,
            resume_position_s=position_s,
            interruption_s=self.transition_overhead_s,
        )
