"""QoS mapping: user-level parameters → system-level parameters (§6).

"From the QoS parameters values specified by the user, the QoS manager
computes the parameters maxBitRate and avgBitRate required to deliver
the document. ... If the data is sent to the user without
transformation, as is the case for our prototype, the throughput is
computed as follows.  For video: maxBitRate = (maximum frame length) ×
(frame rate), avgBitRate = (average frame length) × (frame rate)."

The block-length statistics come from the variant's metadata; the frame
(block) rate is the variant's stored rate.  Jitter and loss bounds are
the fixed per-medium presets after [Ste 90] (video: jitter 10 ms, loss
0.003) — see :data:`repro.network.qosparams.STEINMETZ_PRESETS`.

Discrete media (image, text, graphic) are not streamed; they are bulk
transfers that must complete within the medium's preset delay window,
so their equivalent bit rate is ``size / window``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..documents.media import Medium
from ..documents.monomedia import BlockStats, Variant
from ..network.qosparams import FlowSpec, preset_for
from ..util.errors import ValidationError
from ..util.validation import check_positive

__all__ = ["QoSMapper", "flow_spec_for_variant"]


@dataclass(frozen=True, slots=True)
class QoSMapper:
    """The §6 mapping function, configurable for what-if experiments.

    ``discrete_window_s`` is the transfer window granted to non-stream
    media; ``rate_scale`` uniformly scales computed rates (used by the
    ablation that studies mapping error).
    """

    discrete_window_s: float = 2.0
    rate_scale: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.discrete_window_s, "discrete_window_s")
        check_positive(self.rate_scale, "rate_scale")

    def fingerprint_state(self) -> object:
        """Every value that can change a computed flow spec.

        Negotiation cache keys hash this; a subclass that adds mapping
        state must override it (extending the parent tuple) or its
        cached spaces would collide with entries computed by other
        mappers of the same class tree.  ``mapper_fingerprint`` guards
        against forgotten overrides with a repr fallback, but an
        explicit override keeps keys stable across cosmetic repr
        changes.
        """
        return (self.discrete_window_s, self.rate_scale)

    # -- the §6 formulas -----------------------------------------------------------

    def continuous_rates(self, stats: BlockStats) -> tuple[float, float]:
        """(maxBitRate, avgBitRate) of a continuous stream."""
        if stats.blocks_per_second <= 0:
            raise ValidationError(
                "continuous mapping needs a positive block rate"
            )
        max_rate = stats.max_block_bits * stats.blocks_per_second
        avg_rate = stats.avg_block_bits * stats.blocks_per_second
        return max_rate * self.rate_scale, avg_rate * self.rate_scale

    def discrete_rates(self, size_bits: float) -> tuple[float, float]:
        """(maxBitRate, avgBitRate) of a bulk transfer."""
        check_positive(size_bits, "size_bits")
        rate = size_bits / self.discrete_window_s * self.rate_scale
        return rate, rate

    def flow_spec(self, variant: Variant) -> FlowSpec:
        """The complete per-stream demand of one variant."""
        medium = variant.medium
        preset = preset_for(medium)
        if medium.is_continuous:
            max_rate, avg_rate = self.continuous_rates(variant.block_stats)
        else:
            max_rate, avg_rate = self.discrete_rates(variant.size_bits)
        return FlowSpec(
            max_bit_rate=max_rate,
            avg_bit_rate=avg_rate,
            max_delay_s=preset.delay_s,
            max_jitter_s=preset.jitter_s,
            max_loss_rate=preset.loss_rate,
        )


_DEFAULT_MAPPER = QoSMapper()


def flow_spec_for_variant(variant: Variant) -> FlowSpec:
    """Module-level convenience using the default mapper."""
    return _DEFAULT_MAPPER.flow_spec(variant)
