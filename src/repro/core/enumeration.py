"""Feasible system-offer enumeration (paper §4 steps 2–3).

Step 2 filters each monomedia's variants against the client machine
(decoder compatibility); the *feasible system offers* are then the
cartesian product of the surviving per-monomedia variant lists, each
offer priced by the §7 cost model and annotated with its presented QoS.

The product space can be large (variants^monomedia); :class:`OfferSpace`
therefore precomputes everything *per variant* (presented QoS, flow
spec, cost share, importance share — all separable across monomedia)
and only materialises offers on demand.  The vectorized classification
path in :mod:`repro.core.classification` consumes the per-axis arrays
directly and never materialises anything.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from ..client.machine import ClientMachine
from ..documents.document import Document
from ..documents.monomedia import Variant
from ..documents.quality import MediaQoS
from ..network.qosparams import FlowSpec
from ..network.transport import GuaranteeType
from ..util.errors import OfferError
from ..util.units import Money
from .cost import CostModel
from .mapping import QoSMapper
from .offers import SystemOffer

__all__ = ["VariantChoice", "OfferSpace", "build_offer_space"]


@dataclass(frozen=True, slots=True)
class VariantChoice:
    """One feasible variant with everything negotiation needs about it."""

    variant: Variant
    presented: MediaQoS
    spec: FlowSpec
    network_cents: int
    server_cents: int

    @property
    def cost_cents(self) -> int:
        return self.network_cents + self.server_cents


class OfferSpace:
    """The feasible offer product space of one (document, client) pair."""

    def __init__(
        self,
        document: Document,
        choices: Mapping[str, Sequence[VariantChoice]],
        copyright_cents: int,
        rejected: Mapping[str, Sequence[Variant]],
    ) -> None:
        self.document = document
        self._axes: dict[str, tuple[VariantChoice, ...]] = {
            monomedia_id: tuple(options)
            for monomedia_id, options in choices.items()
        }
        self.copyright_cents = int(copyright_cents)
        self.rejected: dict[str, tuple[Variant, ...]] = {
            monomedia_id: tuple(variants)
            for monomedia_id, variants in rejected.items()
        }
        # O(1) spec lookups keyed by (monomedia_id, variant_id): variant
        # ids are only unique *within* a monomedia, so a flat variant-id
        # scan would return the wrong FlowSpec when two monomedia share
        # an id (see spec_for).
        self._spec_index: dict[tuple[str, str], FlowSpec] = {
            (choice.variant.monomedia_id, choice.variant.variant_id): choice.spec
            for options in self._axes.values()
            for choice in options
        }

    # -- shape -------------------------------------------------------------------

    @property
    def monomedia_ids(self) -> tuple[str, ...]:
        return tuple(self._axes)

    @property
    def empty_axes(self) -> tuple[str, ...]:
        """Monomedia left with zero feasible variants — non-empty means
        FAILEDWITHOUTOFFER (§4 step 2)."""
        return tuple(mid for mid, options in self._axes.items() if not options)

    @property
    def is_empty(self) -> bool:
        return bool(self.empty_axes) or not self._axes

    def axis(self, monomedia_id: str) -> tuple[VariantChoice, ...]:
        try:
            return self._axes[monomedia_id]
        except KeyError:
            raise OfferError(f"no axis for monomedia {monomedia_id!r}") from None

    def axis_sizes(self) -> dict[str, int]:
        return {mid: len(options) for mid, options in self._axes.items()}

    @property
    def offer_count(self) -> int:
        if self.is_empty:
            return 0
        count = 1
        for options in self._axes.values():
            count *= len(options)
        return count

    # -- materialisation ------------------------------------------------------------

    def _offer_from_choices(
        self, index: int, picked: tuple[VariantChoice, ...]
    ) -> SystemOffer:
        cents = self.copyright_cents + sum(c.cost_cents for c in picked)
        return SystemOffer(
            offer_id=f"offer-{index}",
            variants={
                c.variant.monomedia_id: c.variant for c in picked
            },
            presented={
                c.variant.monomedia_id: c.presented for c in picked
            },
            cost=Money(cents),
        )

    def iter_offers(self) -> Iterator[SystemOffer]:
        """Deterministic enumeration (last monomedia axis varies
        fastest); ids are the enumeration index."""
        if self.is_empty:
            return
        axes = list(self._axes.values())
        for index, picked in enumerate(itertools.product(*axes), start=1):
            yield self._offer_from_choices(index, picked)

    def offer_at(self, flat_index: int) -> SystemOffer:
        """Materialise the offer at one flat product index (0-based,
        same order as :meth:`iter_offers`) — the vectorized classifier
        hands back indices, this turns them into offers."""
        if self.is_empty:
            raise OfferError("offer space is empty")
        sizes = [len(options) for options in self._axes.values()]
        if not (0 <= flat_index < self.offer_count):
            raise OfferError(
                f"flat index {flat_index} outside [0, {self.offer_count})"
            )
        picked: list[VariantChoice] = []
        remainder = flat_index
        for options, radix in zip(
            self._axes.values(),
            _suffix_products(sizes),
        ):
            digit, remainder = divmod(remainder, radix)
            picked.append(options[digit])
        return self._offer_from_choices(flat_index + 1, tuple(picked))

    def materialize(self, max_offers: "int | None" = None) -> list[SystemOffer]:
        offers = []
        for offer in self.iter_offers():
            offers.append(offer)
            if max_offers is not None and len(offers) >= max_offers:
                break
        return offers

    # -- vectorized views --------------------------------------------------------------

    def cost_cents_axes(self) -> list[np.ndarray]:
        """Per-axis arrays of variant cost shares (cents)."""
        return [
            np.array([c.cost_cents for c in options], dtype=np.int64)
            for options in self._axes.values()
        ]

    def spec_for(self, variant: Variant) -> FlowSpec:
        """The precomputed flow spec of one feasible variant.

        Keyed by ``(monomedia_id, variant_id)``: two monomedia may
        legally carry variants with the same variant id, and matching on
        the id alone would silently hand back the other axis's spec.
        """
        try:
            return self._spec_index[(variant.monomedia_id, variant.variant_id)]
        except KeyError:
            raise OfferError(
                f"variant {variant.variant_id!r} of monomedia "
                f"{variant.monomedia_id!r} not in offer space"
            ) from None


def _suffix_products(sizes: "list[int]") -> "list[int]":
    """For mixed-radix decoding: products of the sizes *after* each
    axis (last axis varies fastest in ``itertools.product``)."""
    out = [1] * len(sizes)
    for i in range(len(sizes) - 2, -1, -1):
        out[i] = out[i + 1] * sizes[i + 1]
    return out


def build_offer_space(
    document: Document,
    client: ClientMachine,
    cost_model: CostModel,
    *,
    mapper: QoSMapper | None = None,
    guarantee: GuaranteeType = GuaranteeType.GUARANTEED,
    variant_filter: "Callable[[Variant], bool] | None" = None,
) -> OfferSpace:
    """Run §4 step 2 (compatibility filtering) and precompute the §4
    step 3 classification inputs for every surviving variant.

    ``variant_filter`` adds caller-defined feasibility rules on top of
    decoder compatibility (e.g. the security floor of
    :mod:`repro.core.preferences`); filtered variants join the rejected
    set like any undecodable one.
    """
    mapper = mapper or QoSMapper()
    choices: dict[str, list[VariantChoice]] = {}
    rejected: dict[str, list[Variant]] = {}
    for component in document.components:
        axis: list[VariantChoice] = []
        dropped: list[Variant] = []
        for variant in component.variants:
            if not client.can_decode(variant) or (
                variant_filter is not None and not variant_filter(variant)
            ):
                dropped.append(variant)
                continue
            presented = client.presented_qos(variant)
            spec = mapper.flow_spec(variant)
            item_cost = cost_model.monomedia_cost(variant, spec, guarantee)
            axis.append(
                VariantChoice(
                    variant=variant,
                    presented=presented,
                    spec=spec,
                    network_cents=item_cost.network_cost.cents,
                    server_cents=item_cost.server_cost.cents,
                )
            )
        choices[component.monomedia_id] = axis
        rejected[component.monomedia_id] = dropped
    return OfferSpace(
        document=document,
        choices=choices,
        copyright_cents=document.copyright_cost.cents,
        rejected=rejected,
    )
