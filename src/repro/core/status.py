"""Negotiation status values (paper §4) and static negotiation status
(paper §5.2.1).

The negotiation status is what the profile manager shows the user; the
static negotiation status (SNS) is the per-offer primary classification
key.  Both are closed enumerations taken verbatim from the paper.
"""

from __future__ import annotations

import enum

__all__ = ["NegotiationStatus", "StaticNegotiationStatus"]


class NegotiationStatus(enum.Enum):
    """Outcome of one run of the negotiation procedure (§4)."""

    SUCCEEDED = "SUCCEEDED"
    """QoS and maximum cost are satisfied; a user offer (not violating
    the worst-acceptable values) is returned, resources reserved."""

    FAILED_WITH_OFFER = "FAILEDWITHOFFER"
    """Negotiation failed, but an offer the system *can* support (while
    not satisfying the user requirements) is returned, resources
    reserved."""

    FAILED_TRY_LATER = "FAILEDTRYLATER"
    """Failed because of resource shortage; the same request may succeed
    later."""

    FAILED_WITHOUT_OFFER = "FAILEDWITHOUTOFFER"
    """No possible instantiation of the functional configuration exists,
    e.g. the client machine has no suitable decoder (§4 step 2)."""

    FAILED_WITH_LOCAL_OFFER = "FAILEDWITHLOCALOFFER"
    """The client machine itself cannot present the requested QoS, e.g.
    colour video requested on a black&white screen (§4 step 1)."""

    @property
    def is_success(self) -> bool:
        return self is NegotiationStatus.SUCCEEDED

    @property
    def has_offer(self) -> bool:
        """Whether a user offer accompanies this status."""
        return self in (
            NegotiationStatus.SUCCEEDED,
            NegotiationStatus.FAILED_WITH_OFFER,
            NegotiationStatus.FAILED_WITH_LOCAL_OFFER,
        )

    @property
    def reserves_resources(self) -> bool:
        """Whether resources are held pending user confirmation."""
        return self in (
            NegotiationStatus.SUCCEEDED,
            NegotiationStatus.FAILED_WITH_OFFER,
        )

    def __str__(self) -> str:
        return self.value


class StaticNegotiationStatus(enum.IntEnum):
    """Degree of satisfaction of the user profile by an offer (§5.2.1).

    Ordered best → worst so it can serve directly as the primary sort
    key of the classification (§5.2.2(c)): DESIRABLE < ACCEPTABLE <
    CONSTRAINT in sort order.
    """

    DESIRABLE = 0
    """The offer's QoS satisfies the QoS *desired* by the user."""

    ACCEPTABLE = 1
    """The offer's QoS is at least as good as the *worst acceptable*
    values (but short of the desired ones)."""

    CONSTRAINT = 2
    """The offer violates the worst-acceptable QoS for at least one
    monomedia and some of its characteristics."""

    @property
    def satisfies_user(self) -> bool:
        """DESIRABLE and ACCEPTABLE offers satisfy the user's QoS
        requirements; CONSTRAINT offers do not."""
        return self is not StaticNegotiationStatus.CONSTRAINT

    def __str__(self) -> str:
        return self.name
