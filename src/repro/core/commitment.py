"""Resource commitment (paper §4 steps 5–6).

Step 5 asks "the transport system and the media file servers to reserve
resources to support the QoS associated with the system offer" — for
every monomedia of the offer: a server stream admission plus an
end-to-end network flow from the hosting server's attachment point to
the client's.  Commitment is all-or-nothing with rollback, so a
half-reserved offer never lingers.

Step 6 wraps the held resources in a :class:`Commitment` with a
confirmation deadline (``choicePeriod``, §8): the user must confirm
within the period or the reservation is released and the session
aborted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from ..cmfs.server import MediaServer, StreamReservation
from ..network.transport import (
    FlowReservation,
    GuaranteeType,
    TransportSystem,
)
from ..util.errors import (
    AdmissionError,
    CapacityError,
    ConfirmationTimeout,
    ReservationError,
)
from .enumeration import OfferSpace
from .offers import SystemOffer

__all__ = [
    "ReservationBundle",
    "ResourceCommitter",
    "CommitmentState",
    "Commitment",
]


@dataclass(frozen=True, slots=True)
class ReservationBundle:
    """Everything held for one committed system offer."""

    offer: SystemOffer
    streams: tuple[StreamReservation, ...]
    flows: tuple[FlowReservation, ...]
    holder: str


class ResourceCommitter:
    """Step-5 executor against the transport system and server fleet."""

    def __init__(
        self,
        transport: TransportSystem,
        servers: Mapping[str, MediaServer],
    ) -> None:
        self._transport = transport
        self._servers = dict(servers)

    @property
    def servers(self) -> Mapping[str, MediaServer]:
        return dict(self._servers)

    @property
    def transport(self) -> TransportSystem:
        return self._transport

    def server(self, server_id: str) -> MediaServer:
        try:
            return self._servers[server_id]
        except KeyError:
            raise ReservationError(f"unknown server {server_id!r}") from None

    def try_commit(
        self,
        offer: SystemOffer,
        space: OfferSpace,
        client_access_point: str,
        *,
        guarantee: GuaranteeType = GuaranteeType.GUARANTEED,
        holder: str = "session",
    ) -> "ReservationBundle | None":
        """Attempt to reserve every resource the offer needs.

        Returns the bundle on success; on any admission or capacity
        failure everything already taken is rolled back and ``None`` is
        returned (step 5 then moves to the next offer).
        """
        streams: list[StreamReservation] = []
        flows: list[FlowReservation] = []
        try:
            for monomedia_id, variant in offer.variants.items():
                spec = space.spec_for(variant)
                server = self.server(variant.server_id)
                rate = guarantee.billable_rate(spec)
                streams.append(
                    server.admit(variant.variant_id, rate, holder=holder)
                )
                flows.append(
                    self._transport.reserve(
                        server.access_point,
                        client_access_point,
                        spec,
                        guarantee=guarantee,
                        holder=holder,
                    )
                )
        except (AdmissionError, CapacityError, ReservationError):
            self._rollback(streams, flows)
            return None
        return ReservationBundle(
            offer=offer,
            streams=tuple(streams),
            flows=tuple(flows),
            holder=holder,
        )

    def release(self, bundle: ReservationBundle) -> None:
        self._rollback(list(bundle.streams), list(bundle.flows))

    def _rollback(
        self,
        streams: "list[StreamReservation]",
        flows: "list[FlowReservation]",
    ) -> None:
        for flow in flows:
            try:
                self._transport.release(flow)
            except ReservationError:
                pass  # already gone (e.g. double release during teardown)
        for stream in streams:
            try:
                self._servers[stream.server_id].release(stream)
            except ReservationError:
                pass


class CommitmentState(enum.Enum):
    PENDING = "pending"      # waiting for user confirmation
    CONFIRMED = "confirmed"  # playout may start
    REJECTED = "rejected"    # user declined; resources released
    EXPIRED = "expired"      # choicePeriod ran out; resources released
    RELEASED = "released"    # torn down after playout / adaptation


class Commitment:
    """Step 6: reserved resources awaiting user confirmation.

    "The user must confirm the user offer (rejection or acceptance)
    within a limited amount of time since the resources are reserved."
    """

    def __init__(
        self,
        bundle: ReservationBundle,
        committer: ResourceCommitter,
        *,
        reserved_at: float,
        choice_period_s: float,
    ) -> None:
        self.bundle = bundle
        self._committer = committer
        self.reserved_at = float(reserved_at)
        self.choice_period_s = float(choice_period_s)
        self.state = CommitmentState.PENDING

    @property
    def offer(self) -> SystemOffer:
        return self.bundle.offer

    @property
    def deadline(self) -> float:
        return self.reserved_at + self.choice_period_s

    def _expire_if_due(self, now: float) -> None:
        if self.state is CommitmentState.PENDING and now > self.deadline:
            self.state = CommitmentState.EXPIRED
            self._committer.release(self.bundle)

    def confirm(self, now: float) -> None:
        """User pressed OK.  Raises :class:`ConfirmationTimeout` if the
        choice period already elapsed (the §8 timer fired: "the session
        is simply aborted and a new negotiation is required")."""
        self._expire_if_due(now)
        if self.state is CommitmentState.EXPIRED:
            raise ConfirmationTimeout(
                f"confirmation at t={now:g}s after deadline "
                f"t={self.deadline:g}s; reservation released"
            )
        if self.state is not CommitmentState.PENDING:
            raise ReservationError(
                f"cannot confirm a commitment in state {self.state.value}"
            )
        self.state = CommitmentState.CONFIRMED

    def reject(self, now: float) -> None:
        """User pressed CANCEL; resources are de-allocated (§4 step 6)."""
        self._expire_if_due(now)
        if self.state in (CommitmentState.EXPIRED, CommitmentState.REJECTED):
            return
        if self.state is not CommitmentState.PENDING:
            raise ReservationError(
                f"cannot reject a commitment in state {self.state.value}"
            )
        self.state = CommitmentState.REJECTED
        self._committer.release(self.bundle)

    def expire_check(self, now: float) -> bool:
        """Poll-style timeout check; True if the commitment expired."""
        self._expire_if_due(now)
        return self.state is CommitmentState.EXPIRED

    def release(self) -> None:
        """Tear down after playout completion or adaptation switch."""
        if self.state in (
            CommitmentState.RELEASED,
            CommitmentState.REJECTED,
            CommitmentState.EXPIRED,
        ):
            return
        self.state = CommitmentState.RELEASED
        self._committer.release(self.bundle)
