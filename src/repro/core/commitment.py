"""Resource commitment (paper §4 steps 5–6).

Step 5 asks "the transport system and the media file servers to reserve
resources to support the QoS associated with the system offer" — for
every monomedia of the offer: a server stream admission plus an
end-to-end network flow from the hosting server's attachment point to
the client's.  Commitment is all-or-nothing with rollback, so a
half-reserved offer never lingers.

Step 6 wraps the held resources in a :class:`Commitment` with a
confirmation deadline (``choicePeriod``, §8): the user must confirm
within the period or the reservation is released and the session
aborted.

The committer is failure-aware (see :mod:`repro.faults`): transient
admission faults are retried under a :class:`~repro.faults.RetryPolicy`,
attempt outcomes feed a per-server :class:`~repro.faults.CircuitBreaker`
so the commitment walk can quarantine flapping machines, and committed
bundles carry leases so a lost release can never leak capacity forever.
All three mechanisms are optional and off by default — the seed
behaviour is unchanged until a deployment opts in.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Mapping, TypeVar

from ..cmfs.server import MediaServer, StreamReservation
from ..faults.health import CircuitBreaker
from ..faults.lease import LeaseManager
from ..faults.retry import RetryPolicy, execute_with_retry, is_retryable
from ..journal import JournalRecordType, ReservationJournal
from ..network.transport import (
    FlowReservation,
    GuaranteeType,
    TransportSystem,
)
from ..telemetry import Telemetry
from ..util.clock import ManualClock
from ..util.errors import (
    AdmissionError,
    CapacityError,
    ConfirmationTimeout,
    FaultTimeoutError,
    ManagerCrashError,
    ReproError,
    ReservationError,
    ServerCrashedError,
    TransientFaultError,
)
from ..util.rng import make_rng
from ..util.validation import check_non_negative, check_positive
from .enumeration import OfferSpace
from .offers import SystemOffer

T = TypeVar("T")

__all__ = [
    "ReservationBundle",
    "CommitStats",
    "ResourceCommitter",
    "CommitmentState",
    "Commitment",
]

# Everything that legitimately ends one offer's commitment attempt and
# moves the step-5 walk to the next offer.  Transient faults appear here
# because they surface only after the retry budget is exhausted.
COMMIT_FAILURES = (
    AdmissionError,
    ServerCrashedError,
    CapacityError,
    ReservationError,
    TransientFaultError,
    FaultTimeoutError,
)


@dataclass(frozen=True, slots=True)
class ReservationBundle:
    """Everything held for one committed system offer."""

    offer: SystemOffer
    streams: tuple[StreamReservation, ...]
    flows: tuple[FlowReservation, ...]
    holder: str


@dataclass(slots=True)
class CommitStats:
    """Counters over a committer's lifetime (chaos reporting)."""

    attempts: int = 0          # individual admit/reserve calls
    retries: int = 0           # backoff retries performed
    breaker_skips: int = 0     # offers skipped because a server was quarantined
    leases_reaped: int = 0     # expired/zombie leases collected


class ResourceCommitter:
    """Step-5 executor against the transport system and server fleet.

    ``retry_policy``, ``health`` and ``lease_ttl_s`` are optional
    resilience layers: with all three left at ``None`` the committer
    behaves exactly like the fault-oblivious original.
    """

    def __init__(
        self,
        transport: TransportSystem,
        servers: Mapping[str, MediaServer],
        *,
        clock: "ManualClock | None" = None,
        retry_policy: "RetryPolicy | None" = None,
        health: "CircuitBreaker | None" = None,
        lease_ttl_s: "float | None" = None,
        retry_seed: int = 0,
        journal: "ReservationJournal | None" = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self._transport = transport
        self._servers = dict(servers)
        self._clock = clock or ManualClock()
        self.retry_policy = retry_policy
        self.health = health
        self.leases = (
            LeaseManager(ttl_s=lease_ttl_s) if lease_ttl_s is not None else None
        )
        self.journal = journal
        self.telemetry = telemetry or Telemetry.disabled()
        self.stats = CommitStats()
        self._retry_rng = make_rng(retry_seed)

    @property
    def servers(self) -> Mapping[str, MediaServer]:
        return dict(self._servers)

    @property
    def transport(self) -> TransportSystem:
        return self._transport

    @property
    def clock(self) -> ManualClock:
        return self._clock

    def server(self, server_id: str) -> MediaServer:
        try:
            return self._servers[server_id]
        except KeyError:
            raise ReservationError(f"unknown server {server_id!r}") from None

    def journal_event(
        self,
        record_type: JournalRecordType,
        holder: str,
        payload: "Mapping[str, Any] | None" = None,
    ) -> None:
        """Append one write-ahead record (no-op without a journal).

        Append-before-apply: call this *before* the state change it
        describes, so a crash between the two leaves the journal ahead
        of the ledgers and recovery can redo the transition.
        """
        if self.journal is not None:
            self.journal.append(
                record_type, holder, payload, timestamp=self._clock.now()
            )

    # -- resilient call wrappers ---------------------------------------------------

    def _run_resilient(
        self, fn: "Callable[[], T]", *, server_id: "str | None" = None
    ) -> T:
        """Execute one reservation call under the retry policy, feeding
        attempt outcomes into the health tracker."""
        now = self._clock.now
        health = self.health
        telemetry = self.telemetry
        target = server_id if server_id is not None else "network"

        def on_retry(attempt: int, error: BaseException, delay: float) -> None:
            self.stats.retries += 1
            self.stats.attempts += 1
            telemetry.count("admission.retries", target=target)
            telemetry.count("admission.attempts", target=target)
            if health is not None and server_id is not None:
                health.record_failure(server_id, now())

        self.stats.attempts += 1
        telemetry.count("admission.attempts", target=target)
        try:
            if self.retry_policy is None:
                result = fn()
            else:
                result = execute_with_retry(
                    fn,
                    self.retry_policy,
                    rng=self._retry_rng,
                    on_retry=on_retry,
                )
        except ReproError as error:
            # Narrow by design (REP003): every fault the injector or the
            # substrate raises is a ReproError; anything else is a bug
            # that must surface unrecorded.
            telemetry.count("admission.refusals", target=target)
            if (
                health is not None
                and server_id is not None
                and is_retryable(error)
            ):
                health.record_failure(server_id, now())
            raise
        if health is not None and server_id is not None:
            health.record_success(server_id, now())
        return result

    # -- commitment ----------------------------------------------------------------

    def try_commit(
        self,
        offer: SystemOffer,
        space: OfferSpace,
        client_access_point: str,
        *,
        guarantee: GuaranteeType = GuaranteeType.GUARANTEED,
        holder: str = "session",
    ) -> "ReservationBundle | None":
        """Attempt to reserve every resource the offer needs.

        Returns the bundle on success; on any admission or capacity
        failure everything already taken is rolled back and ``None`` is
        returned (step 5 then moves to the next offer).  Transient
        faults are retried per the policy before counting as failure.
        """
        self.journal_event(
            JournalRecordType.INTENT,
            holder,
            {"offer_id": offer.offer_id, "client": client_access_point},
        )
        streams: list[StreamReservation] = []
        flows: list[FlowReservation] = []
        try:
            for monomedia_id, variant in offer.variants.items():
                spec = space.spec_for(variant)
                server = self.server(variant.server_id)
                rate = guarantee.billable_rate(spec)
                streams.append(
                    self._run_resilient(
                        lambda s=server, v=variant, r=rate: s.admit(
                            v.variant_id, r, holder=holder
                        ),
                        server_id=server.server_id,
                    )
                )
                flows.append(
                    self._run_resilient(
                        lambda s=server, sp=spec: self._transport.reserve(
                            s.access_point,
                            client_access_point,
                            sp,
                            guarantee=guarantee,
                            holder=holder,
                        )
                    )
                )
        except COMMIT_FAILURES as error:
            # The journal write itself is fallible (brownout faults can
            # fail JOURNAL_WRITE), so the rollback must not depend on it
            # completing: whatever happens in the bookkeeping, everything
            # already admitted is released before control leaves.
            try:
                self.telemetry.count("commitment.rollbacks")
                self.telemetry.annotate(refusal=type(error).__name__)
                self.journal_event(
                    JournalRecordType.RELEASED,
                    holder,
                    {"offer_id": offer.offer_id, "reason": "commit-failed"},
                )
            finally:
                self._rollback(streams, flows)
            return None
        bundle = ReservationBundle(
            offer=offer,
            streams=tuple(streams),
            flows=tuple(flows),
            holder=holder,
        )
        if self.leases is not None:
            self.leases.grant(holder, bundle, self._clock.now())
        return bundle

    def iter_commit(
        self,
        offer: SystemOffer,
        space: OfferSpace,
        client_access_point: str,
        *,
        guarantee: GuaranteeType = GuaranteeType.GUARANTEED,
        holder: str = "session",
    ) -> "Generator[None, None, ReservationBundle | None]":
        """Cooperative :meth:`try_commit`: the same all-or-nothing
        contract, exposed as a generator that yields control before
        every reservation call so thousands of step-5 walks can
        interleave on one scheduler.

        Two deltas against the synchronous path, both contention
        armour:

        * **ordered acquisition** — variants are reserved in sorted
          ``(server_id, monomedia_id)`` order, so two walks needing the
          same pair of servers always approach them in the same order
          and can never hold-and-wait against each other;
        * **abandonment** — closing the generator at a yield point (the
          service does this when a negotiation's deadline budget runs
          out) rolls back everything taken so far and journals the
          RELEASED record, exactly like a refusal.

        Between the final reservation and the generator's return there
        is no yield, so the caller can wrap the bundle in a
        :class:`Commitment` (journaling RESERVED) without another task
        observing the open INTENT window.
        """
        self.journal_event(
            JournalRecordType.INTENT,
            holder,
            {"offer_id": offer.offer_id, "client": client_access_point},
        )
        streams: list[StreamReservation] = []
        flows: list[FlowReservation] = []
        ordered = sorted(
            offer.variants.items(),
            key=lambda item: (item[1].server_id, item[0]),
        )
        try:
            for monomedia_id, variant in ordered:
                spec = space.spec_for(variant)
                server = self.server(variant.server_id)
                rate = guarantee.billable_rate(spec)
                yield
                streams.append(
                    self._run_resilient(
                        lambda s=server, v=variant, r=rate: s.admit(
                            v.variant_id, r, holder=holder
                        ),
                        server_id=server.server_id,
                    )
                )
                yield
                flows.append(
                    self._run_resilient(
                        lambda s=server, sp=spec: self._transport.reserve(
                            s.access_point,
                            client_access_point,
                            sp,
                            guarantee=guarantee,
                            holder=holder,
                        )
                    )
                )
        except COMMIT_FAILURES as error:
            try:
                self.telemetry.count("commitment.rollbacks")
                self.telemetry.annotate(refusal=type(error).__name__)
                self.journal_event(
                    JournalRecordType.RELEASED,
                    holder,
                    {"offer_id": offer.offer_id, "reason": "commit-failed"},
                )
            finally:
                self._rollback(streams, flows)
            return None
        except GeneratorExit:
            # Abandoned at a yield point (deadline budget exhausted):
            # the refusal's rollback discipline, then let close finish.
            try:
                self.telemetry.count("commitment.rollbacks")
                self.journal_event(
                    JournalRecordType.RELEASED,
                    holder,
                    {"offer_id": offer.offer_id, "reason": "abandoned"},
                )
            finally:
                self._rollback(streams, flows)
            raise
        bundle = ReservationBundle(
            offer=offer,
            streams=tuple(streams),
            flows=tuple(flows),
            holder=holder,
        )
        if self.leases is not None:
            self.leases.grant(holder, bundle, self._clock.now())
        return bundle

    def release(self, bundle: ReservationBundle) -> None:
        self._rollback(list(bundle.streams), list(bundle.flows))
        if self.leases is not None:
            if self._leftovers(bundle):
                # A release was swallowed (lost-release fault): keep the
                # lease as a zombie so the reaper retries later.
                self.leases.mark_zombie(bundle.holder)
            else:
                self.leases.drop(bundle.holder)

    def _rollback(
        self,
        streams: "list[StreamReservation]",
        flows: "list[FlowReservation]",
    ) -> None:
        """Best-effort release of everything listed.

        Never raises: double releases, unknown servers (a stream from a
        server since removed from the fleet) and crashed machines must
        not abort the loop and leak the remaining reservations.
        """
        for flow in flows:
            try:
                self._transport.release(flow)
            except ReservationError:
                pass  # already gone (e.g. double release during teardown)
        for stream in streams:
            server = self._servers.get(stream.server_id)
            if server is None:
                continue  # unknown server id: nothing to release here
            try:
                server.release(stream)
            except ReservationError:
                pass

    # -- leases --------------------------------------------------------------------

    def renew_lease(self, holder: str, now: "float | None" = None) -> bool:
        """Refresh a live session's lease; no-op without lease support."""
        if self.leases is None:
            return False
        return self.leases.renew_if_held(
            holder, self._clock.now() if now is None else now
        )

    def _leftovers(self, bundle: ReservationBundle) -> bool:
        """Does any of the bundle's resources still exist after release?"""
        return any(
            self._servers[s.server_id].has_stream(s.stream_id)
            for s in bundle.streams
            if s.server_id in self._servers
        ) or any(self._transport.has_flow(f.flow_id) for f in bundle.flows)

    def reap_expired(self, now: "float | None" = None) -> int:
        """Release the bundles of expired or zombie leases.

        This is the backstop that makes a lost release survivable: the
        leaked reservation is recovered as soon as its lease runs out
        (or, for zombies, on the next sweep after the fault clears).
        Returns the number of leases collected.
        """
        if self.leases is None:
            return 0
        now = self._clock.now() if now is None else now
        reaped = 0
        started = now
        for lease in self.leases.due(now):
            self.journal_event(
                JournalRecordType.RELEASED,
                lease.bundle.holder,
                {"offer_id": lease.bundle.offer.offer_id,
                 "reason": "lease-reaped"},
            )
            self._rollback(list(lease.bundle.streams), list(lease.bundle.flows))
            if not self._leftovers(lease.bundle):
                self.leases.collect(lease)
                reaped += 1
        self.stats.leases_reaped += reaped
        if reaped:
            self.telemetry.count("leases.reaped", float(reaped))
            self.telemetry.tracer.emit(
                "lease.reap",
                start_s=started,
                end_s=self._clock.now(),
                attributes={"reaped": reaped},
            )
        return reaped


class CommitmentState(enum.Enum):
    PENDING = "pending"      # waiting for user confirmation
    CONFIRMED = "confirmed"  # playout may start
    REJECTED = "rejected"    # user declined; resources released
    EXPIRED = "expired"      # choicePeriod ran out; resources released
    RELEASED = "released"    # torn down after playout / adaptation


class Commitment:
    """Step 6: reserved resources awaiting user confirmation.

    "The user must confirm the user offer (rejection or acceptance)
    within a limited amount of time since the resources are reserved."

    Teardown is idempotent: the ``choicePeriod`` timer firing
    concurrently with an explicit user release or rejection must never
    raise nor double-release — the bundle is returned exactly once, and
    every later teardown call is a no-op.
    """

    def __init__(
        self,
        bundle: ReservationBundle,
        committer: ResourceCommitter,
        *,
        reserved_at: float,
        choice_period_s: float,
        telemetry: "Telemetry | None" = None,
        trace_context: "tuple[str, str] | None" = None,
    ) -> None:
        self.bundle = bundle
        self._committer = committer
        self._telemetry = telemetry or Telemetry.disabled()
        self._trace_context = trace_context
        # A zero/negative/NaN choicePeriod would expire every commitment
        # the instant it is created — reject it loudly instead.
        self.reserved_at = check_non_negative(
            float(reserved_at), "reserved_at"
        )
        self.choice_period_s = check_positive(
            float(choice_period_s), "choice_period_s"
        )
        self._journal_transition(
            JournalRecordType.RESERVED,
            {
                "offer_id": bundle.offer.offer_id,
                "reserved_at": self.reserved_at,
                "choice_period_s": self.choice_period_s,
                "streams": [
                    {
                        "server_id": s.server_id,
                        "stream_id": s.stream_id,
                        "rate_bps": s.rate_bps,
                    }
                    for s in bundle.streams
                ],
                "flows": [
                    {"flow_id": f.flow_id, "reserved_bps": f.reserved_bps}
                    for f in bundle.flows
                ],
            },
        )
        self.state = CommitmentState.PENDING
        self._bundle_released = False

    @property
    def offer(self) -> SystemOffer:
        return self.bundle.offer

    @property
    def deadline(self) -> float:
        return self.reserved_at + self.choice_period_s

    def _journal_transition(
        self,
        record_type: JournalRecordType,
        payload: "Mapping[str, Any] | None" = None,
    ) -> None:
        """Write-ahead record for one lifecycle transition.  Callers
        guard with the state machine, so each transition is journaled
        exactly once no matter how teardown paths interleave."""
        self._committer.journal_event(
            record_type, self.bundle.holder, payload
        )

    def _journal_and_flip(
        self,
        record_type: JournalRecordType,
        payload: "Mapping[str, Any] | None",
        new_state: "CommitmentState",
    ) -> None:
        """Journal + apply one lifecycle transition as a unit.

        An injected manager crash fires *after* the record is durable
        (the journal's crash hook runs post-append), so on
        :class:`ManagerCrashError` the transition exists on disk but not
        yet in memory.  Flip the state before re-raising — and for
        terminal states hand the bundle over to recovery — otherwise a
        post-recovery teardown (or the re-armed choicePeriod timer
        racing a renegotiation) would journal the same terminal
        transition a second time and double-release the reservation.
        Any *other* append failure means the record is not durable; the
        state is left untouched so the caller may legitimately retry.
        """
        terminal = new_state in (
            CommitmentState.REJECTED,
            CommitmentState.EXPIRED,
            CommitmentState.RELEASED,
        )
        try:
            self._journal_transition(record_type, payload)
        except ManagerCrashError:
            self.state = new_state
            if terminal:
                # The durable record makes journal replay redo the
                # release against the ledgers: the bundle is recovery's.
                self._bundle_released = True
            raise
        self.state = new_state

    def _release_bundle(self) -> None:
        """Return the held resources exactly once."""
        if self._bundle_released:
            return
        self._bundle_released = True
        self._committer.release(self.bundle)

    def _emit_step6(self, outcome: str, now: float) -> None:
        """Record the confirmation-wait outcome: one counter plus a
        ``negotiation.step6.confirm`` span covering reserved->decision,
        parented at the originating negotiation's root when known."""
        telemetry = self._telemetry
        telemetry.count("commitment.outcomes", state=outcome)
        if not telemetry.enabled:
            return
        telemetry.tracer.emit(
            "negotiation.step6.confirm",
            start_s=self.reserved_at,
            end_s=now,
            parent=self._trace_context,
            attributes={
                "outcome": outcome,
                "wait_s": now - self.reserved_at,
                "holder": self.bundle.holder,
            },
        )

    def _expire_if_due(self, now: float) -> None:
        if self.state is CommitmentState.PENDING and now > self.deadline:
            self._journal_and_flip(
                JournalRecordType.EXPIRED,
                {"offer_id": self.bundle.offer.offer_id},
                CommitmentState.EXPIRED,
            )
            self._emit_step6("expired", now)
            self._release_bundle()

    def confirm(self, now: float) -> None:
        """User pressed OK.  Raises :class:`ConfirmationTimeout` if the
        choice period already elapsed (the §8 timer fired: "the session
        is simply aborted and a new negotiation is required")."""
        self._expire_if_due(now)
        if self.state is CommitmentState.EXPIRED:
            raise ConfirmationTimeout(
                f"confirmation at t={now:g}s after deadline "
                f"t={self.deadline:g}s; reservation released"
            )
        if self.state is not CommitmentState.PENDING:
            raise ReservationError(
                f"cannot confirm a commitment in state {self.state.value}"
            )
        self._journal_and_flip(
            JournalRecordType.CONFIRMED,
            {"offer_id": self.bundle.offer.offer_id},
            CommitmentState.CONFIRMED,
        )
        self._emit_step6("confirmed", now)

    def reject(self, now: float) -> None:
        """User pressed CANCEL; resources are de-allocated (§4 step 6).
        A no-op when the commitment already reached a terminal state."""
        self._expire_if_due(now)
        if self.state in (
            CommitmentState.EXPIRED,
            CommitmentState.REJECTED,
            CommitmentState.RELEASED,
        ):
            return
        if self.state is not CommitmentState.PENDING:
            raise ReservationError(
                f"cannot reject a commitment in state {self.state.value}"
            )
        self._journal_and_flip(
            JournalRecordType.RELEASED,
            {"offer_id": self.bundle.offer.offer_id, "reason": "rejected"},
            CommitmentState.REJECTED,
        )
        self._emit_step6("rejected", now)
        self._release_bundle()

    def expire_check(self, now: float) -> bool:
        """Poll-style timeout check; True if the commitment expired."""
        self._expire_if_due(now)
        return self.state is CommitmentState.EXPIRED

    def release(self) -> None:
        """Tear down after playout completion or adaptation switch.
        Idempotent, and safe against a concurrent ``choicePeriod``
        expiry having already returned the bundle."""
        if self.state in (
            CommitmentState.RELEASED,
            CommitmentState.REJECTED,
            CommitmentState.EXPIRED,
        ):
            return
        self._journal_and_flip(
            JournalRecordType.RELEASED,
            {"offer_id": self.bundle.offer.offer_id, "reason": "teardown"},
            CommitmentState.RELEASED,
        )
        self._telemetry.count("commitment.outcomes", state="released")
        self._release_bundle()
