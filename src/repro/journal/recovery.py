"""Crash recovery: replay the reservation journal against live ledgers.

After a QoS-manager crash the in-memory negotiation state is gone but
two things survive: the resource ledgers on the media servers and the
transport system (the *remote* side of steps 5–6), and the write-ahead
journal (the *durable* side).  :class:`RecoveryManager` reconciles the
two.  Each holder's record timeline classifies it:

* **orphaned** — an ``INTENT`` with no ``RESERVED``: the crash hit
  mid-commit.  Whatever partial resources the holder's walk acquired
  are found by ledger scan and released (compensation).
* **awaiting confirmation** — ``RESERVED`` without a terminal record:
  step 6 was in flight.  If the ``choicePeriod`` deadline already
  passed during the outage the resources are released and ``EXPIRED``
  is journaled; otherwise the remaining period is re-armed on the
  shared clock as a :class:`RecoveredCommitment`.
* **confirmed and playing** — last record ``CONFIRMED`` or
  ``ADAPT_SWITCH``: the session's resources are preserved and the
  holder is handed to the session supervisor for heartbeat watch.
* **terminal** — ``RELEASED``/``EXPIRED``: the transition was journaled
  but the crash may have struck before the ledgers were updated
  (append-before-apply), so any leftovers are redone now.

The replay is idempotent: every action it takes is itself journaled, so
running recovery twice — or after a lease reaper already collected a
holder — releases nothing twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from ..util.clock import ManualClock
from ..util.errors import RecoveryError, ReservationError
from ..util.tables import render_table
from .records import ACTIVE_TYPES, JournalRecord, JournalRecordType
from .store import ReservationJournal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cmfs.server import MediaServer
    from ..network.transport import TransportSystem
    from ..session.engine import EventLoop
    from ..session.supervisor import SessionSupervisor
    from ..telemetry import Telemetry

__all__ = [
    "HolderOutcome",
    "RecoveredCommitment",
    "RecoveryReport",
    "RecoveryManager",
]


class HolderOutcome:
    """String constants naming what recovery did with one holder."""

    ORPHAN_RELEASED = "orphan-released"
    EXPIRED_RELEASED = "expired-released"
    REARMED = "rearmed"
    ACTIVE = "active"
    REDO_RELEASED = "redo-released"
    CLEAN = "clean"


@dataclass(slots=True)
class RecoveredCommitment:
    """A step-6 commitment rebuilt from its ``RESERVED`` record.

    The original :class:`~repro.core.commitment.Commitment` object died
    with the manager; this carries exactly what step 6 needs — the
    deadline and the resource ids — re-armed on the shared clock."""

    holder: str
    offer_id: str
    reserved_at: float
    choice_period_s: float
    streams: "tuple[tuple[str, str], ...]"  # (server_id, stream_id)
    flows: "tuple[str, ...]"
    _manager: "RecoveryManager"
    confirmed: bool = False
    expired: bool = False

    @property
    def deadline(self) -> float:
        return self.reserved_at + self.choice_period_s

    def remaining(self, now: float) -> float:
        return max(self.deadline - now, 0.0)

    def confirm(self, now: float) -> None:
        """The user (re)confirmed within the surviving choice period."""
        if self.expired:
            raise RecoveryError(
                f"recovered commitment {self.holder} already expired"
            )
        if self.confirmed:
            return
        self._manager.journal_event(
            JournalRecordType.CONFIRMED,
            self.holder,
            {"offer_id": self.offer_id, "recovered": True},
            timestamp=now,
        )
        self.confirmed = True

    def expire_check(self, now: float) -> bool:
        """Release the reservation iff the re-armed deadline passed."""
        if self.confirmed or self.expired:
            return self.expired
        if now <= self.deadline:
            return False
        self._manager.expire_recovered(self, now)
        return True


@dataclass(slots=True)
class RecoveryReport:
    """Reconciliation summary of one journal replay."""

    holders: int = 0
    orphans_released: int = 0
    expired_released: int = 0
    rearmed: int = 0
    active_sessions: int = 0
    redo_released: int = 0
    clean: int = 0
    streams_released: int = 0
    flows_released: int = 0
    torn_records_dropped: int = 0
    leaked_streams: int = 0
    leaked_flows: int = 0
    leaked_bps: float = 0.0
    outcomes: "dict[str, str]" = field(default_factory=dict)
    pending: "dict[str, RecoveredCommitment]" = field(default_factory=dict)

    @property
    def leak_free(self) -> bool:
        """No reservation survives without a live (confirmed or
        re-armed) holder — the zero-leak reconciliation property."""
        return self.leaked_streams == 0 and self.leaked_flows == 0

    def rows(self) -> "list[tuple[str, str]]":
        rows = [
            ("holders reconciled", str(self.holders)),
            ("  orphans compensated", str(self.orphans_released)),
            ("  expired during outage", str(self.expired_released)),
            ("  choicePeriod re-armed", str(self.rearmed)),
            ("  confirmed sessions preserved", str(self.active_sessions)),
            ("  terminal redo releases", str(self.redo_released)),
            ("  already clean", str(self.clean)),
            ("streams released", str(self.streams_released)),
            ("flows released", str(self.flows_released)),
            ("torn records dropped", str(self.torn_records_dropped)),
            (
                "leaks after reconciliation",
                "none"
                if self.leak_free
                else f"{self.leaked_streams} streams, {self.leaked_flows} "
                     f"flows, {self.leaked_bps / 1e6:.1f} Mbps",
            ),
        ]
        return rows

    def render(self) -> str:
        return render_table(
            ("metric", "value"), self.rows(), title="crash-recovery report"
        )


class RecoveryManager:
    """Replays the reservation journal after a manager crash."""

    def __init__(
        self,
        journal: ReservationJournal,
        servers: "Mapping[str, MediaServer]",
        transport: "TransportSystem",
        *,
        clock: "ManualClock | None" = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.journal = journal
        self._servers = dict(servers)
        self._transport = transport
        self._clock = clock or ManualClock()
        if telemetry is None:
            from ..telemetry import Telemetry as _Telemetry

            telemetry = _Telemetry.disabled()
        self.telemetry = telemetry

    # -- journal + ledger primitives -----------------------------------------------

    def journal_event(
        self,
        record_type: JournalRecordType,
        holder: str,
        payload: "Mapping[str, Any] | None" = None,
        *,
        timestamp: "float | None" = None,
    ) -> JournalRecord:
        return self.journal.append(
            record_type,
            holder,
            payload,
            timestamp=self._clock.now() if timestamp is None else timestamp,
        )

    def expire_recovered(
        self, commitment: RecoveredCommitment, now: float
    ) -> "tuple[int, int]":
        """Journal ``EXPIRED`` (append-before-apply) then release the
        commitment's resources; idempotent via the ``expired`` flag."""
        if commitment.expired:
            return 0, 0
        self.journal_event(
            JournalRecordType.EXPIRED,
            commitment.holder,
            {"offer_id": commitment.offer_id, "recovered": True},
            timestamp=now,
        )
        commitment.expired = True
        return self.release_resources(commitment.streams, commitment.flows)

    def release_resources(
        self,
        streams: "tuple[tuple[str, str], ...]",
        flows: "tuple[str, ...]",
    ) -> "tuple[int, int]":
        """Best-effort release by resource id; returns (streams, flows)
        actually freed.  Already-gone resources are not an error — the
        whole point of the replay is that it may repeat work."""
        freed_streams = 0
        freed_flows = 0
        for flow_id in flows:
            if not self._transport.has_flow(flow_id):
                continue
            try:
                self._transport.release(flow_id)
                freed_flows += 1
            except ReservationError:
                pass  # released concurrently; nothing leaked
        for server_id, stream_id in streams:
            server = self._servers.get(server_id)
            if server is None or not server.has_stream(stream_id):
                continue
            try:
                server.release(stream_id)
                freed_streams += 1
            except ReservationError:
                pass
        return freed_streams, freed_flows

    def _scan_holder(
        self, holder: str
    ) -> "tuple[tuple[tuple[str, str], ...], tuple[str, ...]]":
        """Ledger scan: every stream/flow currently held by ``holder``
        (the compensation path for crashes mid-commit, where only the
        INTENT record exists)."""
        streams = tuple(
            (server_id, stream.stream_id)
            for server_id, server in self._servers.items()
            for stream in server.streams_for_holder(holder)
        )
        flows = tuple(
            flow.flow_id for flow in self._transport.flows_for_holder(holder)
        )
        return streams, flows

    @staticmethod
    def _reserved_resources(
        record: JournalRecord,
    ) -> "tuple[tuple[tuple[str, str], ...], tuple[str, ...]]":
        streams = tuple(
            (str(entry["server_id"]), str(entry["stream_id"]))
            for entry in record.payload.get("streams", ())
        )
        flows = tuple(
            str(entry["flow_id"]) for entry in record.payload.get("flows", ())
        )
        return streams, flows

    # -- the replay ----------------------------------------------------------------

    def replay(
        self,
        *,
        loop: "EventLoop | None" = None,
        supervisor: "SessionSupervisor | None" = None,
    ) -> RecoveryReport:
        """Classify every holder, redo/compensate releases, re-arm
        pending deadlines, hand confirmed sessions to ``supervisor``,
        and audit the ledgers for leaks."""
        now = self._clock.now()
        report = RecoveryReport(
            torn_records_dropped=self.journal.torn_records_dropped
        )
        # Snapshot: recovery appends its own records while iterating.
        grouped = self.journal.by_holder()
        with self.telemetry.span(
            "journal.replay", records=len(self.journal), holders=len(grouped)
        ):
            for holder, timeline in grouped.items():
                report.holders += 1
                outcome = self._reconcile_holder(
                    holder, timeline, now, report,
                    loop=loop, supervisor=supervisor,
                )
                report.outcomes[holder] = outcome
            self._audit(report)
            self.telemetry.annotate(
                leak_free=report.leak_free,
                streams_released=report.streams_released,
                flows_released=report.flows_released,
            )
        self.telemetry.count("recovery.replays")
        for outcome in report.outcomes.values():
            self.telemetry.count("recovery.holders", outcome=outcome)
        return report

    def _reconcile_holder(
        self,
        holder: str,
        timeline: "list[JournalRecord]",
        now: float,
        report: RecoveryReport,
        *,
        loop: "EventLoop | None",
        supervisor: "SessionSupervisor | None",
    ) -> str:
        last = timeline[-1]
        reserved = next(
            (
                r
                for r in reversed(timeline)
                if r.record_type is JournalRecordType.RESERVED
            ),
            None,
        )
        if last.is_terminal:
            return self._redo_terminal(holder, reserved, report)
        if last.record_type in ACTIVE_TYPES:
            return self._hand_to_supervisor(
                holder, reserved, now, report, supervisor=supervisor
            )
        if last.record_type is JournalRecordType.RESERVED:
            return self._rearm_or_expire(
                holder, last, now, report, loop=loop
            )
        # INTENT only: the crash hit inside the step-5 walk.  Journal
        # the compensation first (append-before-apply), then sweep the
        # ledgers for whatever the walk had already taken.
        self.journal_event(
            JournalRecordType.RELEASED,
            holder,
            {"reason": "recovery-orphan"},
            timestamp=now,
        )
        streams, flows = self._scan_holder(holder)
        freed_streams, freed_flows = self.release_resources(streams, flows)
        report.orphans_released += 1
        report.streams_released += freed_streams
        report.flows_released += freed_flows
        return HolderOutcome.ORPHAN_RELEASED

    def _redo_terminal(
        self,
        holder: str,
        reserved: "JournalRecord | None",
        report: RecoveryReport,
    ) -> str:
        streams: "tuple[tuple[str, str], ...]" = ()
        flows: "tuple[str, ...]" = ()
        if reserved is not None:
            streams, flows = self._reserved_resources(reserved)
        scan_streams, scan_flows = self._scan_holder(holder)
        freed_streams, freed_flows = self.release_resources(
            streams + scan_streams, flows + scan_flows
        )
        if freed_streams or freed_flows:
            report.redo_released += 1
            report.streams_released += freed_streams
            report.flows_released += freed_flows
            return HolderOutcome.REDO_RELEASED
        report.clean += 1
        return HolderOutcome.CLEAN

    def _rearm_or_expire(
        self,
        holder: str,
        reserved: JournalRecord,
        now: float,
        report: RecoveryReport,
        *,
        loop: "EventLoop | None",
    ) -> str:
        streams, flows = self._reserved_resources(reserved)
        commitment = RecoveredCommitment(
            holder=holder,
            offer_id=str(reserved.payload.get("offer_id", "")),
            reserved_at=float(reserved.payload.get("reserved_at", reserved.timestamp)),
            choice_period_s=float(reserved.payload.get("choice_period_s", 0.0)),
            streams=streams,
            flows=flows,
            _manager=self,
        )
        if now > commitment.deadline:
            freed_streams, freed_flows = self.expire_recovered(commitment, now)
            report.expired_released += 1
            report.streams_released += freed_streams
            report.flows_released += freed_flows
            return HolderOutcome.EXPIRED_RELEASED
        report.rearmed += 1
        report.pending[holder] = commitment

        def timer_fired(c: RecoveredCommitment = commitment) -> None:
            # The §8 choicePeriod timer itself: firing *at* the deadline
            # is expiry (expire_check's strict > is for polling paths).
            if not c.confirmed and not c.expired:
                self.expire_recovered(c, self._clock.now())

        if loop is not None:
            loop.at(
                commitment.deadline,
                timer_fired,
                label=f"recovery-choice-period:{holder}",
            )
        return HolderOutcome.REARMED

    def _hand_to_supervisor(
        self,
        holder: str,
        reserved: "JournalRecord | None",
        now: float,
        report: RecoveryReport,
        *,
        supervisor: "SessionSupervisor | None",
    ) -> str:
        report.active_sessions += 1
        if supervisor is not None:
            streams: "tuple[tuple[str, str], ...]" = ()
            flows: "tuple[str, ...]" = ()
            if reserved is not None:
                streams, flows = self._reserved_resources(reserved)

            def release(when: float, s: "tuple[tuple[str, str], ...]" = streams,
                        f: "tuple[str, ...]" = flows, h: str = holder) -> None:
                self.journal_event(
                    JournalRecordType.RELEASED,
                    h,
                    {"reason": "supervisor-timeout"},
                    timestamp=when,
                )
                self.release_resources(s, f)

            supervisor.adopt(holder, release, now=now)
        return HolderOutcome.ACTIVE

    # -- audit ---------------------------------------------------------------------

    def _audit(self, report: RecoveryReport) -> None:
        """Every remaining reservation must belong to a holder recovery
        classified as live (confirmed/adopted or re-armed)."""
        live = {
            holder
            for holder, outcome in report.outcomes.items()
            if outcome in (HolderOutcome.ACTIVE, HolderOutcome.REARMED)
        }
        for server in self._servers.values():
            for stream in server.reservations():
                if stream.holder not in live:
                    report.leaked_streams += 1
                    report.leaked_bps += stream.rate_bps
        for flow in self._transport.flows():
            if flow.holder not in live:
                report.leaked_flows += 1
                report.leaked_bps += flow.reserved_bps
