"""The write-ahead reservation journal.

Append-only JSONL with the append-before-apply discipline: a transition
is journaled *first*, then applied to the live ledgers, so after a
manager crash the journal is always at least as advanced as the
resource state and :class:`~repro.journal.recovery.RecoveryManager` can
redo or compensate every in-flight negotiation.

Two backends behind one class:

* **in-memory** (``path=None``) — the default for simulations: records
  are kept on a list, nothing touches the filesystem, and a "restart"
  hands the same journal object to the recovery manager;
* **file-backed** — one JSON line per record, flushed on every append,
  ``fsync``-optional.  :meth:`ReservationJournal.open` reads an
  existing file back tolerantly: a torn final record (the crash hit
  mid-write) is dropped and the file truncated to the intact prefix;
  corruption *before* the tail is real damage and raises
  :class:`~repro.util.errors.JournalError`.

The ``crash_hook`` attribute is the fault-injection seam: the chaos
injector installs itself there and may raise
:class:`~repro.util.errors.ManagerCrashError` after a record is made
durable — exactly the window a real crash occupies.
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Union

from ..util.errors import JournalError
from .records import JournalRecord, JournalRecordType

__all__ = ["ReservationJournal", "read_journal_bytes"]


def read_journal_bytes(
    data: bytes, *, source: str = "<bytes>"
) -> "tuple[list[JournalRecord], int, int]":
    """Parse journal bytes tolerating a torn tail.

    Returns ``(records, clean_length, torn_dropped)`` where
    ``clean_length`` is the byte length of the intact prefix (so a
    file-backed journal can truncate away the torn bytes before
    appending again).  A malformed line that is *not* the last
    non-empty line — or a sequence number that does not increase —
    raises :class:`JournalError`: that is corruption, not a torn tail.
    """
    records: list[JournalRecord] = []
    clean_length = 0
    torn = 0
    offset = 0
    chunks = data.split(b"\n")
    # Everything after the final newline (possibly b"") is the tail
    # fragment; complete lines are all chunks but the last.
    for index, chunk in enumerate(chunks):
        is_last = index == len(chunks) - 1
        line_length = len(chunk) + (0 if is_last else 1)
        text = chunk.decode("utf-8", errors="replace").strip()
        if not text:
            offset += line_length
            clean_length = offset
            continue
        try:
            record = JournalRecord.from_line(text)
        except JournalError:
            remainder = b"\n".join(chunks[index + 1 :]).strip()
            if remainder:
                raise  # damage before the tail: not a torn write
            torn += 1
            break
        if records and record.sequence <= records[-1].sequence:
            # The line parsed and its checksum held, so this is not a
            # torn write — it is real corruption, wherever it sits.
            raise JournalError(
                f"{source}: sequence went from {records[-1].sequence} "
                f"to {record.sequence}"
            )
        records.append(record)
        offset += line_length
        clean_length = offset
    return records, clean_length, torn


class ReservationJournal:
    """Append-only write-ahead journal of reservation transitions."""

    def __init__(
        self,
        path: "Union[str, Path, None]" = None,
        *,
        fsync: bool = False,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.fsync = fsync
        self.torn_records_dropped = 0
        self.crash_hook: "Callable[[JournalRecord], None] | None" = None
        # Observability seam: assign a repro.telemetry.Telemetry hub and
        # every append is counted and traced.  Plain attribute (not a
        # constructor arg) so reopening a file journal after a crash can
        # re-attach the same hub.
        self.telemetry: Any = None
        self._records: "list[JournalRecord]" = []
        self._next_sequence = 1
        self._handle: "io.BufferedWriter | None" = None
        self._closed = False
        # Single-writer discipline: holders whose latest record is an
        # INTENT (a commitment attempt in flight).  A second INTENT for
        # the same holder before the first resolves would interleave two
        # attempts' records and tear the per-holder semantics recovery
        # replays — the cooperative scheduler makes that an easy bug to
        # write, so the journal refuses it loudly.
        self._open_intents: "set[str]" = set()

    # -- opening / closing ---------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: "Union[str, Path]",
        *,
        fsync: bool = False,
    ) -> "ReservationJournal":
        """Open (or create) a file-backed journal, recovering from a
        torn final record by truncating to the intact prefix."""
        journal = cls(path, fsync=fsync)
        file_path = journal.path
        assert file_path is not None
        if file_path.exists():
            data = file_path.read_bytes()
            records, clean_length, torn = read_journal_bytes(
                data, source=str(file_path)
            )
            journal._records = records
            journal._next_sequence = (
                records[-1].sequence + 1 if records else 1
            )
            journal.torn_records_dropped = torn
            # Rebuild the in-flight-INTENT set tolerantly: a crash may
            # legitimately leave an INTENT open at the tail (recovery
            # closes it with a compensating RELEASED), so replay only
            # tracks — it never raises.
            for record in records:
                if record.record_type is JournalRecordType.INTENT:
                    journal._open_intents.add(record.holder)
                else:
                    journal._open_intents.discard(record.holder)
            if clean_length < len(data):
                with file_path.open("r+b") as handle:
                    handle.truncate(clean_length)
        return journal

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._closed = True

    def __enter__(self) -> "ReservationJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- appending -----------------------------------------------------------------

    def append(
        self,
        record_type: JournalRecordType,
        holder: str,
        payload: "Mapping[str, Any] | None" = None,
        *,
        timestamp: float,
    ) -> JournalRecord:
        """Journal one transition (append-before-apply: call this
        *before* touching the live ledgers).

        The record is made durable first; only then does the
        ``crash_hook`` get a chance to kill the manager, so the journal
        never lags the resource state.
        """
        if self._closed:
            raise JournalError("journal is closed")
        if (
            record_type is JournalRecordType.INTENT
            and holder in self._open_intents
        ):
            raise JournalError(
                f"interleaved INTENT for holder {holder!r}: the previous "
                "commitment attempt has not resolved (RESERVED/RELEASED) "
                "— one holder must finish each step-5 attempt before "
                "starting the next"
            )
        record = JournalRecord(
            sequence=self._next_sequence,
            record_type=record_type,
            holder=holder,
            timestamp=float(timestamp),
            payload=dict(payload or {}),
        )
        self._write(record)
        self._records.append(record)
        self._next_sequence += 1
        if record_type is JournalRecordType.INTENT:
            self._open_intents.add(holder)
        else:
            self._open_intents.discard(holder)
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.count(
                "journal.records", type=record.record_type.value
            )
            telemetry.tracer.emit(
                "journal.append",
                start_s=record.timestamp,
                end_s=record.timestamp,
                parent=telemetry.tracer.current_context(),
                attributes={
                    "type": record.record_type.value,
                    "holder": record.holder,
                    "sequence": record.sequence,
                },
            )
        if self.crash_hook is not None:
            self.crash_hook(record)
        return record

    def _write(self, record: JournalRecord) -> None:
        if self.path is None:
            return
        if self._handle is None:
            self._handle = self.path.open("ab")
        self._handle.write(record.to_line().encode("utf-8") + b"\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    # -- reading -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> "Iterator[JournalRecord]":
        return iter(self._records)

    def records(self) -> "tuple[JournalRecord, ...]":
        return tuple(self._records)

    def records_for(self, holder: str) -> "tuple[JournalRecord, ...]":
        return tuple(r for r in self._records if r.holder == holder)

    def by_holder(self) -> "dict[str, list[JournalRecord]]":
        """Records grouped per holder, in first-seen order (the order
        the recovery manager classifies in — deterministic)."""
        grouped: dict[str, list[JournalRecord]] = {}
        for record in self._records:
            grouped.setdefault(record.holder, []).append(record)
        return grouped

    def last_for(self, holder: str) -> "JournalRecord | None":
        for record in reversed(self._records):
            if record.holder == holder:
                return record
        return None

    def describe(self) -> str:
        where = str(self.path) if self.path is not None else "(in-memory)"
        lines = [f"reservation journal {where}: {len(self._records)} records"]
        lines.extend(f"  {record.describe()}" for record in self._records)
        if self.torn_records_dropped:
            lines.append(
                f"  [{self.torn_records_dropped} torn record(s) dropped "
                "at the tail]"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        where = str(self.path) if self.path is not None else "memory"
        return (
            f"ReservationJournal({where}, {len(self._records)} records, "
            f"next seq {self._next_sequence})"
        )
