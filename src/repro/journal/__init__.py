"""Write-ahead reservation journal + crash recovery.

The paper's steps 5–6 assume the QoS manager survives its own
negotiation; this package removes that assumption.  Every reservation
transition is journaled *before* it is applied
(:class:`ReservationJournal`, :mod:`~repro.journal.records`), so after
a manager crash :class:`RecoveryManager` can replay the journal against
the live server/transport ledgers: compensate orphaned reservations,
re-arm surviving ``choicePeriod`` deadlines, hand confirmed sessions to
the session supervisor, and prove zero leaked capacity
(:class:`RecoveryReport`).
"""

from .records import (
    ACTIVE_TYPES,
    TERMINAL_TYPES,
    JournalRecord,
    JournalRecordType,
)
from .recovery import (
    HolderOutcome,
    RecoveredCommitment,
    RecoveryManager,
    RecoveryReport,
)
from .store import ReservationJournal, read_journal_bytes

__all__ = [
    "JournalRecordType",
    "JournalRecord",
    "TERMINAL_TYPES",
    "ACTIVE_TYPES",
    "ReservationJournal",
    "read_journal_bytes",
    "RecoveryManager",
    "RecoveredCommitment",
    "RecoveryReport",
    "HolderOutcome",
]
