"""Write-ahead journal records for the reservation lifecycle.

Every resource transition of paper steps 5–6 is journaled *before* it
is applied (write-ahead discipline): the record names the reservation
holder, the transition, and enough payload to redo or undo the
transition after a manager crash.  Records serialize to one JSON line
each with a CRC32 checksum, so the reader can detect a torn tail (a
record cut short by the crash itself) and recover from the intact
prefix.

The six record types map onto the paper's negotiation procedure:

=============  =============================================================
INTENT         step 5 begins for one offer: the commitment walk is about
               to reserve server + network resources for ``holder``
RESERVED       step 5 succeeded and the step-6 ``choicePeriod`` clock is
               running; payload carries every stream/flow id + deadline
CONFIRMED      step 6: the user confirmed within ``choicePeriod``
RELEASED       the resources were returned (rejection, teardown, lease
               reap, failed commit rollback, supervisor/recovery action)
EXPIRED        the ``choicePeriod`` ran out; resources were released
ADAPT_SWITCH   the §4 adaptation procedure moved the session to an
               alternate offer (payload links old and new holders)
=============  =============================================================
"""

from __future__ import annotations

import enum
import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..util.errors import JournalError

__all__ = [
    "JournalRecordType",
    "JournalRecord",
    "TERMINAL_TYPES",
    "ACTIVE_TYPES",
]


class JournalRecordType(enum.Enum):
    """The reservation-lifecycle transitions the journal records."""

    INTENT = "intent"
    RESERVED = "reserved"
    CONFIRMED = "confirmed"
    RELEASED = "released"
    EXPIRED = "expired"
    ADAPT_SWITCH = "adapt-switch"


TERMINAL_TYPES = frozenset(
    {JournalRecordType.RELEASED, JournalRecordType.EXPIRED}
)
"""Record types after which the holder owns no resources."""

ACTIVE_TYPES = frozenset(
    {JournalRecordType.CONFIRMED, JournalRecordType.ADAPT_SWITCH}
)
"""Record types that mean the holder's session is confirmed and playing."""


def _canonical_body(
    sequence: int,
    record_type: str,
    holder: str,
    timestamp: float,
    payload: Mapping[str, Any],
) -> str:
    """The checksummed byte-stable form of a record (everything but crc)."""
    return json.dumps(
        {
            "seq": sequence,
            "type": record_type,
            "holder": holder,
            "t": timestamp,
            "payload": dict(payload),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


@dataclass(frozen=True, slots=True)
class JournalRecord:
    """One journaled transition."""

    sequence: int
    record_type: JournalRecordType
    holder: str
    timestamp: float
    payload: "dict[str, Any]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.sequence < 1:
            raise JournalError(
                f"record sequence must be >= 1, got {self.sequence}"
            )
        if not self.holder:
            raise JournalError("record holder must be non-empty")

    @property
    def is_terminal(self) -> bool:
        return self.record_type in TERMINAL_TYPES

    def checksum(self) -> int:
        body = _canonical_body(
            self.sequence,
            self.record_type.value,
            self.holder,
            self.timestamp,
            self.payload,
        )
        return zlib.crc32(body.encode("utf-8"))

    def to_line(self) -> str:
        """One JSON line, checksum included (no trailing newline)."""
        body = _canonical_body(
            self.sequence,
            self.record_type.value,
            self.holder,
            self.timestamp,
            self.payload,
        )
        crc = zlib.crc32(body.encode("utf-8"))
        return json.dumps(
            {
                "seq": self.sequence,
                "type": self.record_type.value,
                "holder": self.holder,
                "t": self.timestamp,
                "payload": dict(self.payload),
                "crc": crc,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_line(cls, line: str) -> "JournalRecord":
        """Parse + verify one journal line; :class:`JournalError` on any
        malformation (the store's reader decides whether a bad *final*
        line is a tolerable torn tail)."""
        try:
            blob = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JournalError(f"unparseable journal line: {exc}") from None
        if not isinstance(blob, dict):
            raise JournalError("journal line is not a JSON object")
        try:
            record = cls(
                sequence=int(blob["seq"]),
                record_type=JournalRecordType(blob["type"]),
                holder=str(blob["holder"]),
                timestamp=float(blob["t"]),
                payload=dict(blob["payload"]),
            )
            crc = int(blob["crc"])
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(f"malformed journal record: {exc}") from None
        if record.checksum() != crc:
            raise JournalError(
                f"checksum mismatch on record {record.sequence} "
                f"(stored {crc:#010x}, computed {record.checksum():#010x})"
            )
        return record

    def describe(self) -> str:
        extra = ""
        reason = self.payload.get("reason")
        if reason:
            extra = f" ({reason})"
        return (
            f"#{self.sequence} t={self.timestamp:g}s "
            f"{self.record_type.value:<12} {self.holder}{extra}"
        )
