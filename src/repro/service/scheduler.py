"""Seeded cooperative scheduling over the deterministic event loop.

The concurrent negotiation service needs *interleaving* without
*nondeterminism*: thousands of step-5 walks must contend for the same
ledgers, yet a chaos run has to replay byte-for-byte from its seed.
Threads cannot give that; this module does, with plain generators:

* a **task** is a generator that yields instruction objects —
  :class:`Sleep` (park for simulated seconds) or :class:`Switch` (give
  other ready tasks a turn at the same instant);
* the **scheduler** keeps a ready list and drains it from a pump event
  on the :class:`~repro.session.engine.EventLoop`.  When several tasks
  are ready at the same simulated time, the *resume order* is drawn
  from one seeded generator — so every interleaving is reproducible
  from ``seed``, and varying only the seed explores different legal
  interleavings of the same arrival schedule (exactly what the
  concurrency property suite sweeps);
* there is no preemption: code between two yields runs atomically,
  which is what makes journal append-before-apply windows tractable to
  reason about (see DESIGN.md §13 for the yield-point map).

Tasks compose with ``yield from``; a task's ``return`` value lands on
its :class:`TaskHandle` (and the optional ``on_done`` callback).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Union

from ..util.errors import SessionError
from ..util.rng import RngLike, make_rng
from ..util.validation import check_non_negative

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..session.engine import EventLoop
    from ..telemetry import Telemetry

__all__ = [
    "Sleep",
    "Switch",
    "Op",
    "Task",
    "TaskState",
    "TaskHandle",
    "SchedulerStats",
    "CooperativeScheduler",
]


@dataclass(frozen=True, slots=True)
class Sleep:
    """Park the task for ``delay_s`` simulated seconds."""

    delay_s: float

    def __post_init__(self) -> None:
        check_non_negative(self.delay_s, "delay_s")


@dataclass(frozen=True, slots=True)
class Switch:
    """Yield the processor: other ready tasks run, then this one
    resumes at the *same* simulated time (in seeded order)."""


Op = Union[Sleep, Switch]
Task = Generator[Op, None, Any]


class TaskState(enum.Enum):
    RUNNING = "running"   # spawned, not yet finished
    DONE = "done"         # returned normally
    FAILED = "failed"     # raised; the error propagated to the loop


@dataclass(slots=True)
class TaskHandle:
    """The caller's view of one spawned task."""

    name: str
    state: TaskState = TaskState.RUNNING
    result: Any = None
    error: "BaseException | None" = None

    @property
    def finished(self) -> bool:
        return self.state is not TaskState.RUNNING


@dataclass(slots=True)
class SchedulerStats:
    """What the scheduler did, for reports and determinism checks."""

    spawned: int = 0
    completed: int = 0
    failed: int = 0
    switches: int = 0
    sleeps: int = 0

    def as_dict(self) -> "dict[str, int]":
        return {
            "spawned": self.spawned,
            "completed": self.completed,
            "failed": self.failed,
            "switches": self.switches,
            "sleeps": self.sleeps,
        }


@dataclass(slots=True)
class _Running:
    """Internal pairing of a handle with its generator."""

    handle: TaskHandle
    gen: Task
    on_done: "Callable[[TaskHandle], None] | None" = None


class CooperativeScheduler:
    """Deterministic cooperative multitasking on one event loop.

    The contract (DESIGN.md §13):

    * same ``(seed, spawn sequence, loop events)`` → same interleaving,
      byte-for-byte;
    * tasks made ready at the same simulated instant resume in an order
      drawn from the seeded generator — *not* FIFO — so seed sweeps
      explore interleavings;
    * between two yields a task is atomic; nothing else runs.
    """

    def __init__(
        self,
        loop: "EventLoop",
        *,
        seed: RngLike = 0,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        if telemetry is None:
            from ..telemetry import Telemetry as _Telemetry

            telemetry = _Telemetry.disabled()
        self.loop = loop
        self.telemetry = telemetry
        self.stats = SchedulerStats()
        self._rng = make_rng(seed)
        self._ready: "list[_Running]" = []
        self._pump_armed = False

    @property
    def ready_count(self) -> int:
        return len(self._ready)

    def spawn(
        self,
        name: str,
        gen: Task,
        *,
        on_done: "Callable[[TaskHandle], None] | None" = None,
    ) -> TaskHandle:
        """Register a task; its first step runs from the next pump (so
        same-time spawns interleave under the seed like any other ready
        set)."""
        if not hasattr(gen, "send"):
            raise SessionError(
                f"task {name!r} must be a generator, got "
                f"{type(gen).__name__}"
            )
        handle = TaskHandle(name=name)
        self.stats.spawned += 1
        self._make_ready(_Running(handle=handle, gen=gen, on_done=on_done))
        return handle

    # -- machinery -----------------------------------------------------------------

    def _make_ready(self, task: _Running) -> None:
        self._ready.append(task)
        if not self._pump_armed:
            self._pump_armed = True
            self.loop.at(self.loop.now, self._pump, label="scheduler:pump")

    def _pump(self) -> None:
        """Drain the ready set, resuming in seeded order.  A task that
        raises leaves the remaining ready set intact and re-arms the
        pump first, so a storm-style catch-and-recover driver can
        resume the survivors."""
        self._pump_armed = False
        while self._ready:
            index = int(self._rng.integers(0, len(self._ready)))
            task = self._ready.pop(index)
            try:
                self._step(task)
            except BaseException:  # reprolint: backstop -- re-arm the pump for survivors, always re-raise unchanged
                if self._ready and not self._pump_armed:
                    self._pump_armed = True
                    self.loop.at(
                        self.loop.now, self._pump, label="scheduler:pump"
                    )
                raise

    def _step(self, task: _Running) -> None:
        handle = task.handle
        try:
            op = task.gen.send(None)
        except StopIteration as stop:
            handle.state = TaskState.DONE
            handle.result = stop.value
            self.stats.completed += 1
            self.telemetry.count("service.tasks", outcome="completed")
            if task.on_done is not None:
                task.on_done(handle)
            return
        except BaseException as error:  # reprolint: backstop -- mark the handle, always re-raise unchanged
            # Mark the handle, then let the error reach the loop's
            # caller — a ManagerCrashError must hit the recovery loop,
            # not vanish into a status field.
            handle.state = TaskState.FAILED
            handle.error = error
            self.stats.failed += 1
            self.telemetry.count("service.tasks", outcome="failed")
            raise
        if isinstance(op, Switch):
            self.stats.switches += 1
            self._make_ready(task)
        elif isinstance(op, Sleep):
            self.stats.sleeps += 1
            self.loop.after(
                op.delay_s,
                lambda t=task: self._make_ready(t),
                label=f"scheduler:wake:{handle.name}",
            )
        else:
            raise SessionError(
                f"task {handle.name!r} yielded {op!r}; "
                "expected Sleep or Switch"
            )

    def __repr__(self) -> str:
        return (
            f"CooperativeScheduler({self.stats.spawned} spawned, "
            f"{len(self._ready)} ready, {self.stats.switches} switches)"
        )
