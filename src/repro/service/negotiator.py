"""The concurrent negotiation service: many §4 procedures in flight.

One :class:`NegotiationService` runs thousands of negotiations as
cooperative tasks (:mod:`repro.service.scheduler`) against one shared
deployment.  The synchronous :meth:`~repro.core.negotiation.QoSManager`
path is untouched; the service layers concurrency on top of the same
primitives:

* **steps 1–4 are pure planning** (:meth:`QoSManager.plan`) — they read
  metadata and client characteristics but never touch the shared
  ledgers, so they run atomically between yields;
* **step 5 interleaves** — each candidate is reserved through
  :meth:`ResourceCommitter.iter_commit`, which yields before every
  admission/flow call; the service charges each yield ``reservation_step_s``
  of simulated time, so long walks take long and arrivals land *inside*
  other negotiations' walks;
* **deadline budgets** — a negotiation that cannot finish its walk
  within ``deadline_budget_s`` abandons the in-flight candidate (the
  generator's close rolls back and journals RELEASED) and returns an
  honest FAILEDTRYLATER with a breaker-aware hint, instead of hogging
  the scheduler while holding partial reservations;
* **step 6 races are real** — user confirmation and choice-period
  expiry run as their own tasks, so an expiry can fire *between* the
  yield points of an unrelated negotiation, and a confirm landing on
  the deadline tick races the watchdog under the scheduler seed (the
  commitment state machine guarantees exactly one terminal journal
  record either way).

Requests can be routed through an
:class:`~repro.storm.AdmissionGate` (``gate=``): the gate decides
*when* a negotiation task starts and applies its retry/shed policy to
the delivered verdicts, with monotone ``retry_after_s`` hints.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..core.commitment import Commitment, CommitmentState
from ..core.negotiation import NegotiationResult
from ..core.offers import derive_user_offer
from ..core.status import NegotiationStatus
from ..util.errors import ConfirmationTimeout
from ..util.rng import RngLike, make_rng
from ..util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
)
from .scheduler import CooperativeScheduler, Sleep, Switch, Task, TaskHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..client.machine import ClientMachine
    from ..core.negotiation import QoSManager
    from ..core.profiles import UserProfile
    from ..session.engine import EventLoop
    from ..storm import AdmissionGate
    from ..telemetry import Telemetry

__all__ = [
    "EXPIRY_MARGIN_S",
    "ServicePolicy",
    "ServiceStats",
    "ServiceRequest",
    "NegotiationService",
]

EXPIRY_MARGIN_S = 1e-3
"""How long after the choicePeriod deadline the watchdog fires.  Expiry
is strict (``now > deadline``), so the watchdog must land past the
deadline tick; one millisecond keeps the wake deterministic while
leaving a confirm *on* the tick its honest last chance."""


@dataclass(frozen=True, slots=True)
class ServicePolicy:
    """Knobs of one concurrent negotiation service.

    ``reservation_step_s`` is the simulated cost of one reservation
    call (each :meth:`iter_commit` yield sleeps this long);
    ``plan_s`` the cost of steps 1–4.  ``deadline_budget_s`` bounds a
    negotiation's whole step-5 walk.  ``confirm_delay_s`` ±
    ``confirm_jitter`` is the user's think time before confirming;
    a ``slow_user_fraction`` of users exceed the choice period (their
    reservations expire — the natural step-6 race), and a
    ``reject_fraction`` cancel instead of confirming.  ``hold_s`` is
    the playout hold between confirmation and release.
    """

    max_offers: "int | None" = None
    deadline_budget_s: float = 15.0
    reservation_step_s: float = 0.01
    plan_s: float = 0.005
    confirm_delay_s: float = 2.0
    confirm_jitter: float = 0.5
    slow_user_fraction: float = 0.0
    reject_fraction: float = 0.0
    hold_s: float = 60.0

    def __post_init__(self) -> None:
        if self.max_offers is not None and self.max_offers < 1:
            from ..util.errors import ValidationError

            raise ValidationError(
                f"max_offers must be >= 1, got {self.max_offers}"
            )
        check_positive(self.deadline_budget_s, "deadline_budget_s")
        check_non_negative(self.reservation_step_s, "reservation_step_s")
        check_non_negative(self.plan_s, "plan_s")
        check_non_negative(self.confirm_delay_s, "confirm_delay_s")
        check_fraction(self.confirm_jitter, "confirm_jitter")
        check_fraction(self.slow_user_fraction, "slow_user_fraction")
        check_fraction(self.reject_fraction, "reject_fraction")
        check_non_negative(self.hold_s, "hold_s")


@dataclass(slots=True)
class ServiceStats:
    """Service-level counters (per run)."""

    submitted: int = 0
    delivered: int = 0
    overruns: int = 0
    confirmations: int = 0
    rejections: int = 0
    expiries: int = 0
    releases: int = 0

    def as_dict(self) -> "dict[str, int]":
        return {
            "submitted": self.submitted,
            "delivered": self.delivered,
            "overruns": self.overruns,
            "confirmations": self.confirmations,
            "rejections": self.rejections,
            "expiries": self.expiries,
            "releases": self.releases,
        }


@dataclass(slots=True)
class ServiceRequest:
    """One request's lifecycle as the service saw it."""

    label: str
    client_id: str
    document_id: str
    submitted_at: float
    started_at: "float | None" = None
    reparked_at: "float | None" = None
    context: "tuple[str, str] | None" = None
    result: "NegotiationResult | None" = None
    finished_at: "float | None" = None
    overrun: bool = False
    confirmed: bool = False
    rejected: bool = False
    expired: bool = False
    released: bool = False
    task: "TaskHandle | None" = None

    @property
    def verdict_wait_s(self) -> "float | None":
        """Submission → terminal verdict, in simulated seconds."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def status(self) -> "NegotiationStatus | None":
        return self.result.status if self.result is not None else None


class NegotiationService:
    """Run negotiations concurrently over one shared deployment.

    ``scheduler_seed`` picks the interleaving (the concurrency
    dimension); ``seed`` drives user behaviour (think times, rejects).
    Keeping them separate is what lets the property suite vary the
    interleaving while holding the workload fixed.
    """

    def __init__(
        self,
        manager: "QoSManager",
        loop: "EventLoop",
        *,
        policy: "ServicePolicy | None" = None,
        gate: "AdmissionGate | None" = None,
        scheduler_seed: RngLike = 0,
        seed: RngLike = 0,
        telemetry: "Telemetry | None" = None,
        coalesce: bool = True,
    ) -> None:
        if telemetry is None:
            telemetry = manager.telemetry
        self.manager = manager
        self.loop = loop
        self.policy = policy or ServicePolicy()
        self.gate = gate
        self.telemetry = telemetry
        self.coalesce = coalesce
        self.scheduler = CooperativeScheduler(
            loop, seed=scheduler_seed, telemetry=telemetry
        )
        self.stats = ServiceStats()
        self.requests: "list[ServiceRequest]" = []
        self._rng = make_rng(seed)
        self._inflight = 0
        # Same-tick plan coalescing: class key → shared steps-1–4 plan,
        # valid only at the tick it was computed (cleared on advance).
        # Planning is pure, so sharing the plan cannot change any walk;
        # it only removes the N−1 redundant plan computations when a
        # burst of equivalent requests lands between two yields.
        self._plan_memo: "dict[tuple, object]" = {}
        self._plan_tick: "float | None" = None

    # -- submission ----------------------------------------------------------------

    def submit(
        self,
        document_id: str,
        profile: "UserProfile",
        client: "ClientMachine",
        *,
        label: "str | None" = None,
    ) -> ServiceRequest:
        """Enqueue one negotiation; returns its live request record.

        With a gate, the gate decides when the task starts (and may
        requeue or shed the verdict); without one the task is spawned
        immediately.
        """
        self.stats.submitted += 1
        request = ServiceRequest(
            label=label or f"req-{self.stats.submitted}",
            client_id=client.client_id,
            document_id=document_id,
            submitted_at=self.loop.now,
        )
        self.requests.append(request)
        self._inflight += 1
        if self.telemetry.enabled:
            # Pre-allocate the request's trace identity: children (gate
            # wait, plan, step-5 attempts) land under it while the walk
            # is in flight; the root span itself is emitted at verdict
            # delivery (the profiler's critical-path input).
            request.context = self.telemetry.tracer.new_context()
        self.telemetry.metrics.gauge_set(
            "service.inflight", float(self._inflight)
        )

        def deliver(result: NegotiationResult) -> None:
            self._deliver(request, result)

        if self.gate is not None:
            self.gate.submit_deferred(
                request.label,
                lambda done: self._start(
                    request, document_id, profile, client, done
                ),
                deliver,
            )
        else:
            self._start(request, document_id, profile, client, deliver)
        return request

    def _start(
        self,
        request: ServiceRequest,
        document_id: str,
        profile: "UserProfile",
        client: "ClientMachine",
        done: "Callable[[NegotiationResult], None]",
    ) -> None:
        def finished(handle: TaskHandle) -> None:
            # The gate may re-park the request on an FTL verdict; the
            # next dispatch's gate.wait span starts here, not at
            # submission, so park intervals stay disjoint and their sum
            # never exceeds the root span.
            request.reparked_at = self.loop.now
            done(handle.result)

        request.started_at = self.loop.now
        if request.context is not None and self.gate is not None:
            # Gate park time: enqueue (submission, or re-park after an
            # FTL verdict) → dispatch; 0 when admitted on the spot.
            parked_since = (
                request.reparked_at
                if request.reparked_at is not None
                else request.submitted_at
            )
            self.telemetry.tracer.emit(
                "service.gate.wait",
                start_s=parked_since,
                end_s=request.started_at,
                parent=request.context,
                attributes={"label": request.label},
            )
        request.task = self.scheduler.spawn(
            f"negotiation:{request.label}",
            self._negotiation_task(request, document_id, profile, client),
            on_done=finished,
        )

    def _deliver(
        self, request: ServiceRequest, result: NegotiationResult
    ) -> None:
        request.result = result
        request.finished_at = self.loop.now
        self.stats.delivered += 1
        self._inflight -= 1
        telemetry = self.telemetry
        telemetry.metrics.gauge_set(
            "service.inflight", float(self._inflight)
        )
        telemetry.count("negotiation.outcomes", status=str(result.status))
        telemetry.observe(
            "service.verdict.wait_s", request.verdict_wait_s or 0.0
        )
        if request.context is not None:
            telemetry.tracer.emit(
                "service.negotiation",
                start_s=request.submitted_at,
                end_s=request.finished_at,
                context=request.context,
                attributes={
                    "label": request.label,
                    "status": str(result.status),
                    "overrun": request.overrun,
                },
            )

    # -- same-tick plan coalescing ---------------------------------------------------

    def _plan_coalesced(
        self,
        document_id: str,
        profile: "UserProfile",
        client: "ClientMachine",
    ):
        """Steps 1–4 for one request, sharing the plan with any other
        request of the same capability equivalence class that planned
        at this scheduler tick.

        Plans are pure (no ledger reads), so a shared plan is
        content-identical to a private one and the walk outcomes are
        byte-exact with ``coalesce=False``; only the redundant
        classification work disappears.  Unbatchable requests (user
        preferences) always plan privately.
        """
        from ..batch.classes import BatchRequest, request_class_key
        from ..batch.engine import _ClassPlan, _ReplayableStream

        manager = self.manager
        max_offers = self.policy.max_offers

        def plan_fresh():
            return manager.plan(
                document_id, profile, client, max_offers=max_offers
            )

        if not self.coalesce:
            return plan_fresh()
        key = request_class_key(
            manager,
            BatchRequest(
                document=document_id,
                profile=profile,
                client=client,
                max_offers=max_offers,
            ),
        )
        if key is None:
            return plan_fresh()
        now = self.loop.now
        if self._plan_tick != now:
            self._plan_tick = now
            self._plan_memo.clear()
        shared = self._plan_memo.get(key)
        if shared is None:
            plan = plan_fresh()
            stream = None
            if plan.stream is not None:
                # Stream-mode managers plan lazily; wrap the stream so
                # every coalesced member replays it from the beginning.
                stream = _ReplayableStream(plan.stream)
            shared = _ClassPlan(plan=plan, shared_stream=stream)
            self._plan_memo[key] = shared
        else:
            self.telemetry.count("batch.coalesced", site="service")
        assert isinstance(shared, _ClassPlan)
        return shared.member_plan()

    # -- the cooperative procedure -------------------------------------------------

    def _negotiation_task(
        self,
        request: ServiceRequest,
        document_id: str,
        profile: "UserProfile",
        client: "ClientMachine",
    ) -> Task:
        """One negotiation as a task: plan, walk, wrap, arm step 6.

        Returns the :class:`NegotiationResult` (the task's return value
        becomes the delivered verdict)."""
        policy = self.policy
        manager = self.manager
        committer = manager.committer
        telemetry = self.telemetry
        started = self.loop.now
        deadline = started + policy.deadline_budget_s
        if policy.plan_s > 0.0:
            yield Sleep(policy.plan_s)
        else:
            yield Switch()
        plan = self._plan_coalesced(document_id, profile, client)
        if request.context is not None:
            # Steps 1–4: the Sleep(plan_s) charge plus the atomic plan.
            telemetry.tracer.emit(
                "service.plan",
                start_s=started,
                end_s=self.loop.now,
                parent=request.context,
                attributes={"early": plan.early is not None},
            )
        if plan.early is not None:
            return plan.early
        assert plan.space is not None
        space = plan.space
        holder = manager.new_holder()
        health = committer.health
        satisfying = [c for c in plan.classified if c.satisfies_user]
        fallback = [c for c in plan.classified if not c.satisfies_user]
        attempts = 0
        skips = 0
        switches = 0
        overrun = False
        chosen = None
        bundle = None
        for candidate in itertools.chain(satisfying, fallback):
            if self.loop.now >= deadline:
                overrun = True
                break
            if health is not None:
                now = self.loop.now
                if not all(
                    health.allow(server_id, now)
                    for server_id in candidate.offer.servers_used()
                ):
                    committer.stats.breaker_skips += 1
                    skips += 1
                    telemetry.count("breaker.skips")
                    telemetry.count("negotiation.offers.dropped", step="5")
                    continue
            attempts += 1
            attempt_started = self.loop.now
            walk = committer.iter_commit(
                candidate.offer,
                space,
                client.access_point,
                guarantee=manager.guarantee,
                holder=holder,
            )
            taken = None
            while True:
                try:
                    next(walk)
                except StopIteration as stop:
                    taken = stop.value
                    break
                # Parked before a reservation call: charge its cost and
                # let other tasks run in the meantime.
                switches += 1
                if policy.reservation_step_s > 0.0:
                    yield Sleep(policy.reservation_step_s)
                else:
                    yield Switch()
                if self.loop.now >= deadline:
                    # Budget exhausted mid-walk: abandoning the
                    # generator rolls back and journals RELEASED.
                    walk.close()
                    overrun = True
                    break
            if telemetry.enabled:
                telemetry.tracer.emit(
                    "negotiation.step5.attempt",
                    start_s=attempt_started,
                    end_s=self.loop.now,
                    parent=request.context,
                    attributes={
                        "offer_id": candidate.offer.offer_id,
                        "holder": holder,
                        "outcome": (
                            "committed" if taken is not None
                            else "abandoned" if overrun
                            else "rolled-back"
                        ),
                    },
                )
            if overrun:
                break
            if taken is None:
                telemetry.count("negotiation.offers.dropped", step="5")
                continue
            chosen = candidate
            bundle = taken
            break
        telemetry.observe("service.walk.switches", float(switches))
        if chosen is None or bundle is None:
            if overrun:
                request.overrun = True
                self.stats.overruns += 1
                telemetry.count("service.deadline.overruns")
            return NegotiationResult(
                status=NegotiationStatus.FAILED_TRY_LATER,
                classified=plan.classified,
                offer_space=space,
                attempts=attempts,
                retry_after_s=manager.retry_after_hint(),
            )
        # No yield between the walk's return and the Commitment: the
        # RESERVED record lands while the INTENT window is still ours.
        commitment = Commitment(
            bundle,
            committer,
            reserved_at=self.loop.now,
            choice_period_s=profile.choice_period_s,
            telemetry=telemetry,
        )
        result = NegotiationResult(
            status=(
                NegotiationStatus.SUCCEEDED
                if chosen.satisfies_user
                else NegotiationStatus.FAILED_WITH_OFFER
            ),
            user_offer=derive_user_offer(
                chosen.offer, profile.desired.time
            ),
            chosen=chosen,
            commitment=commitment,
            classified=plan.classified,
            offer_space=space,
            attempts=attempts,
        )
        self._arm_step6(request, commitment, profile)
        return result

    # -- step 6: confirmation vs expiry, as tasks ----------------------------------

    def _arm_step6(
        self,
        request: ServiceRequest,
        commitment: Commitment,
        profile: "UserProfile",
    ) -> None:
        """Spawn the user's confirm/reject task and the choice-period
        watchdog.  Both route through the scheduler, so when the think
        time lands on the expiry tick their order is a seeded race —
        and the commitment state machine journals exactly one terminal
        transition whichever wins."""
        slow = float(self._rng.uniform(0.0, 1.0)) < (
            self.policy.slow_user_fraction
        )
        spread = 1.0 + self.policy.confirm_jitter * float(
            self._rng.uniform(-1.0, 1.0)
        )
        think_s = self.policy.confirm_delay_s * spread
        if slow:
            think_s += profile.choice_period_s
        reject = float(self._rng.uniform(0.0, 1.0)) < (
            self.policy.reject_fraction
        )
        self.scheduler.spawn(
            f"confirm:{request.label}",
            self._confirm_task(request, commitment, think_s, reject),
        )
        self.scheduler.spawn(
            f"expiry:{request.label}",
            self._expiry_task(request, commitment),
        )

    def _confirm_task(
        self,
        request: ServiceRequest,
        commitment: Commitment,
        think_s: float,
        reject: bool,
    ) -> Task:
        yield Sleep(think_s)
        yield Switch()  # the seeded race position vs the watchdog
        if commitment.state is not CommitmentState.PENDING:
            return  # expiry (or a crash path) resolved it first
        now = self.loop.now
        if reject:
            commitment.reject(now)
            if commitment.state is CommitmentState.REJECTED:
                request.rejected = True
                self.stats.rejections += 1
            return
        try:
            commitment.confirm(now)
        except ConfirmationTimeout:
            # The deadline passed before the watchdog fired; confirm()
            # itself expired the commitment — the one EXPIRED record.
            request.expired = True
            self.stats.expiries += 1
            return
        request.confirmed = True
        self.stats.confirmations += 1
        if self.policy.hold_s > 0.0:
            yield Sleep(self.policy.hold_s)
        commitment.release()
        request.released = True
        self.stats.releases += 1

    def _expiry_task(
        self, request: ServiceRequest, commitment: Commitment
    ) -> Task:
        # Wake strictly after the deadline (expiry is ``now > deadline``).
        delay = max(commitment.deadline - self.loop.now, 0.0)
        yield Sleep(delay + EXPIRY_MARGIN_S)
        yield Switch()
        if commitment.state is not CommitmentState.PENDING:
            return  # confirmed, rejected, or already expired
        if commitment.expire_check(self.loop.now):
            request.expired = True
            self.stats.expiries += 1

    # -- reporting -----------------------------------------------------------------

    @property
    def inflight(self) -> int:
        return self._inflight

    def unfinished(self) -> "list[ServiceRequest]":
        """Requests still without a terminal verdict (must be empty
        after the loop drains — anything here is a starved client)."""
        return [r for r in self.requests if r.finished_at is None]
