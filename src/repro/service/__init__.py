"""Concurrent negotiation service: seeded cooperative concurrency.

Thousands of in-flight §4 negotiations against one shared deployment,
with interleavings reproducible byte-for-byte from a scheduler seed.
See DESIGN.md §13 for the concurrency model (determinism contract,
yield-point map, deadlock-avoidance ordering).
"""

from .negotiator import (
    EXPIRY_MARGIN_S,
    NegotiationService,
    ServicePolicy,
    ServiceRequest,
    ServiceStats,
)
from .scheduler import (
    CooperativeScheduler,
    Op,
    SchedulerStats,
    Sleep,
    Switch,
    Task,
    TaskHandle,
    TaskState,
)

__all__ = [
    "EXPIRY_MARGIN_S",
    "NegotiationService",
    "ServicePolicy",
    "ServiceRequest",
    "ServiceStats",
    "CooperativeScheduler",
    "Op",
    "SchedulerStats",
    "Sleep",
    "Switch",
    "Task",
    "TaskHandle",
    "TaskState",
]
