"""Canonicalising requests into capability equivalence classes.

Two requests are equivalent — negotiable as one — exactly when every
input that steps 1–4 read is structurally equal: the document (id and
catalog version), the client's capabilities (not its identity), the
guarantee class, the tariff tables, the mapper state, the profile's
QoS/cost bounds, the importance profile, the classification policy,
and the walk bounds (``max_offers``, offer mode).  The class key is
the tuple of exactly those fingerprints — a strict superset of the
negotiation cache's classification key, which is what makes the
fan-out sound.

Requests carrying user preferences build per-user offer spaces
(variant filters) or per-offer bonuses; they are honest singletons and
:func:`request_class_key` returns ``None`` for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..client.machine import ClientMachine
from ..core.classification import ClassificationPolicy
from ..core.profiles import UserProfile
from ..documents.document import Document
from ..network.transport import GuaranteeType
from ..perf.cache import NegotiationCache
from ..perf.fingerprint import importance_fingerprint, profile_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.negotiation import QoSManager

__all__ = ["BatchRequest", "request_class_key"]


@dataclass(frozen=True, slots=True)
class BatchRequest:
    """One pending negotiation request, as the batch engine sees it.

    ``tag`` is opaque caller correlation (session id, arrival record);
    it never enters the class key.
    """

    document: "Document | str"
    profile: UserProfile
    client: ClientMachine
    policy: "ClassificationPolicy | None" = None
    guarantee: "GuaranteeType | None" = None
    max_offers: "int | None" = None
    offer_mode: "str | None" = None
    tag: object = None

    @property
    def document_id(self) -> str:
        return (
            self.document
            if isinstance(self.document, str)
            else self.document.document_id
        )


def request_class_key(
    manager: "QoSManager", request: BatchRequest
) -> "tuple | None":
    """The capability equivalence class of ``request`` under
    ``manager``, or ``None`` when the request is unbatchable.

    Built from the negotiation cache's space key (document id +
    version, client capability fingerprint, guarantee, cost model,
    mapper) extended with the classification inputs (profile bounds,
    importance, policy) and the walk bounds.  Everything identity-like
    (client id, access point, profile name, tag) is excluded by
    construction — that is the fingerprint module's contract.
    """
    profile = request.profile
    if profile.preferences is not None:
        return None
    policy = request.policy or manager.policy
    guarantee = request.guarantee or manager.guarantee
    document_id = request.document_id
    space_key = NegotiationCache.space_key(
        document_id=document_id,
        version=manager.database.version_of(document_id),
        client=request.client,
        guarantee=guarantee,
        cost_model=manager.cost_model,
        mapper=manager.mapper,
    )
    importance = manager._importance_of(profile)
    return space_key + (
        profile_fingerprint(profile),
        importance_fingerprint(importance),
        policy.value,
        request.max_offers,
        request.offer_mode or manager.offer_mode,
    )
