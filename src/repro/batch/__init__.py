"""Batch negotiation over capability equivalence classes.

The §4 pipeline is a pure function of (document, client capabilities,
profile, tariffs) until step 5 touches shared ledgers, and the
fingerprint keys of :mod:`repro.perf.fingerprint` already exclude
client identity — so N pending requests whose fingerprints agree are
*one* negotiation repeated N times.  This package canonicalises
pending requests into those classes (:func:`request_class_key`),
plans each class once — one offer-space build, one classification
pass, shared across every space-compatible class as a
structure-of-arrays NumPy batch — and fans the class plan out to each
member's own step-5 commitment walk (:func:`negotiate_batch`).

The fan-out is byte-exact with running ``QoSManager.negotiate`` per
request in the same order: walks run in submission order against the
same ledger states, holders come from the same counter, and the
classification rows are bit-identical (see
:func:`repro.core.classification.classify_arrays_batch`), so the
per-round ``(status, offer id, attempts)`` signature cannot differ.
"""

from .classes import BatchRequest, request_class_key
from .engine import negotiate_batch

__all__ = ["BatchRequest", "negotiate_batch", "request_class_key"]
