"""The batch negotiation engine: plan per class, walk per member.

``negotiate_batch`` is semantically ``[manager.negotiate(r) for r in
requests]`` — same submission order, same holder sequence, same ledger
states at each walk, hence byte-exact ``(status, offer id, attempts)``
per member — but the pure prefix (steps 1–4) runs once per equivalence
class instead of once per request:

* classes are keyed by :func:`~repro.batch.classes.request_class_key`;
* classes that share an offer space (same space key + policy, eager
  mode) are classified together in one structure-of-arrays NumPy pass
  (:func:`~repro.core.classification.classify_arrays_batch`), seeded
  into the negotiation cache so the per-class plan is a pure hit;
* spaces above the vectorization ceiling plan through the best-first
  stream, wrapped in a replayable buffer so every member sees the
  stream from its beginning while classification work is still done
  at most once per offer.

``after_each`` runs after each member's walk, before the next member
touches the ledgers — the bench uses it to reject commitments so the
batched run replays the sequential run's exact resource states.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, Sequence

from ..core.classification import (
    MAX_VECTOR_OFFERS,
    ClassificationArrays,
    ClassifiedOffer,
    classify_arrays_batch,
)
from ..core.enumeration import build_offer_space
from ..core.negotiation import NegotiationPlan, NegotiationResult, QoSManager
from .classes import BatchRequest, request_class_key

__all__ = ["negotiate_batch"]

AfterEach = Callable[[BatchRequest, NegotiationResult], None]


class _ReplayableStream:
    """A best-first classification stream every member can replay.

    Items already pulled are buffered; each :meth:`iter` replays the
    buffer then extends it from the base stream, so member *k*'s view
    is identical to a fresh stream's prefix while each offer is
    classified at most once across the whole class.
    """

    def __init__(self, base: "Iterator[ClassifiedOffer]") -> None:
        self._base = base
        self._buffer: "list[ClassifiedOffer]" = []

    def iter(self) -> "Iterator[ClassifiedOffer]":
        i = 0
        while True:
            if i < len(self._buffer):
                item = self._buffer[i]
            else:
                try:
                    item = next(self._base)
                except StopIteration:
                    return
                self._buffer.append(item)
            yield item
            i += 1


@dataclass
class _ClassPlan:
    """One equivalence class's shared steps-1–4 outcome."""

    plan: NegotiationPlan
    shared_stream: "_ReplayableStream | None" = None
    members_walked: int = 0

    def member_plan(self) -> NegotiationPlan:
        """A per-member view of the class plan.

        Early results are cloned (results are mutable records the
        caller owns); eager classified lists are shared read-only; the
        stream gets a fresh replay cursor.
        """
        plan = self.plan
        if plan.early is not None:
            early = replace(
                plan.early,
                classified=list(plan.early.classified),
                local_violations=dict(plan.early.local_violations),
            )
            return NegotiationPlan(early=early, space=plan.space)
        if self.shared_stream is not None:
            return NegotiationPlan(
                space=plan.space,
                stream=self.shared_stream.iter(),
                offers_in=plan.offers_in,
            )
        return NegotiationPlan(
            space=plan.space,
            classified=plan.classified,
            offers_in=plan.offers_in,
        )


@dataclass
class _ClassGroup:
    key: tuple
    representative: BatchRequest
    size: int = 1


def _preseed_shared_classifications(
    manager: QoSManager, groups: "dict[tuple, _ClassGroup]"
) -> None:
    """Classify space-compatible classes together, one SoA pass each.

    Only applies when the manager carries a cache (the seed target) and
    at least two classes share (space key, policy) in eager mode; each
    class's row lands in the cache under its own classification key,
    so the subsequent per-class ``plan`` call is a pure hit.  Misses
    are counted here, once per class — exactly what the sequential
    path would have charged.
    """
    cache = manager.cache
    if cache is None:
        return
    by_space: "dict[tuple, list[_ClassGroup]]" = {}
    for group in groups.values():
        request = group.representative
        mode = request.offer_mode or manager.offer_mode
        if mode != "full":
            continue
        space_key = group.key[:6]
        policy = request.policy or manager.policy
        by_space.setdefault(space_key + (policy.value,), []).append(group)
    for space_and_policy, space_groups in by_space.items():
        if len(space_groups) < 2:
            continue
        space_key = space_and_policy[:6]
        request = space_groups[0].representative
        policy = request.policy or manager.policy
        guarantee = request.guarantee or manager.guarantee
        document = request.document
        if isinstance(document, str):
            document = manager.database.get_document(document)
        space = cache.offer_space(
            space_key,
            lambda: build_offer_space(
                document,
                request.client,
                manager.cost_model,
                mapper=manager.mapper,
                guarantee=guarantee,
                variant_filter=None,
            ),
        )
        if space.is_empty or space.offer_count > MAX_VECTOR_OFFERS:
            continue
        members = [
            (
                group.representative.profile,
                manager._importance_of(group.representative.profile),
            )
            for group in space_groups
        ]
        rows = classify_arrays_batch(space, members, policy=policy)
        for group, (profile, importance), arrays in zip(
            space_groups, members, rows
        ):
            key = cache.classification_key(
                space_key, profile, importance, policy
            )

            def seeded(arrays: ClassificationArrays = arrays) -> object:
                return arrays

            cache.classifications.lookup(key, seeded)


def negotiate_batch(
    manager: QoSManager,
    requests: "Sequence[BatchRequest]",
    *,
    after_each: "AfterEach | None" = None,
) -> "list[NegotiationResult]":
    """Negotiate ``requests`` in order, planning once per class.

    Returns one result per request, in submission order.  Unbatchable
    requests (user preferences) fall back to plain ``negotiate`` in
    their slot, so a mixed stream needs no pre-sorting by the caller.
    """
    telemetry = manager.telemetry
    keys: "list[tuple | None]" = []
    groups: "dict[tuple, _ClassGroup]" = {}
    # Class keys fingerprint profile, cost-model and mapper state;
    # recomputing them for every member of a hot class costs a sizable
    # fraction of a commitment walk.  Profiles and clients are frozen,
    # and ``requests`` keeps every referenced object alive for the
    # duration of this call, so identity-keyed memoisation is sound.
    key_memo: "dict[tuple, tuple | None]" = {}
    for request in requests:
        memo_key = (
            request.document_id,
            id(request.profile),
            id(request.client),
            request.policy,
            request.guarantee,
            request.max_offers,
            request.offer_mode,
        )
        if memo_key in key_memo:
            key = key_memo[memo_key]
        else:
            key = request_class_key(manager, request)
            key_memo[memo_key] = key
        keys.append(key)
        if key is None:
            continue
        group = groups.get(key)
        if group is None:
            groups[key] = _ClassGroup(key=key, representative=request)
        else:
            group.size += 1

    _preseed_shared_classifications(manager, groups)

    plans: "dict[tuple, _ClassPlan]" = {}
    for key, group in groups.items():
        request = group.representative
        plan = manager.plan(
            request.document,
            request.profile,
            request.client,
            policy=request.policy,
            guarantee=request.guarantee,
            max_offers=request.max_offers,
            offer_mode=request.offer_mode or manager.offer_mode,
        )
        shared = None
        if plan.stream is not None:
            shared = _ReplayableStream(plan.stream)
        plans[key] = _ClassPlan(plan=plan, shared_stream=shared)
        telemetry.count("batch.plans")
        telemetry.observe("batch.class_size", float(group.size))

    results: "list[NegotiationResult]" = []
    for request, key in zip(requests, keys):
        if key is None:
            result = manager.negotiate(
                request.document,
                request.profile,
                request.client,
                policy=request.policy,
                guarantee=request.guarantee,
                max_offers=request.max_offers,
                offer_mode=request.offer_mode,
            )
        else:
            class_plan = plans[key]
            if class_plan.members_walked:
                telemetry.count("batch.coalesced", site="batch")
            class_plan.members_walked += 1
            result = manager.complete(
                class_plan.member_plan(),
                request.profile,
                request.client,
                guarantee=request.guarantee,
            )
            telemetry.count(
                "negotiation.outcomes", status=str(result.status)
            )
            telemetry.observe("negotiation.attempts", float(result.attempts))
            telemetry.observe(
                "negotiation.offers.classified",
                float(len(result.classified)),
            )
        results.append(result)
        if after_each is not None:
            after_each(request, result)
    return results
