"""Route selection under bandwidth constraints.

The negotiation's resource-commitment step needs a path from the chosen
server to the client that can carry the flow's peak rate.  We provide
the two classic policies:

* **widest-shortest** (default): among paths whose every link still has
  the required residual bandwidth, take the one minimising accumulated
  link cost weight (tie-broken by hop count by the shortest-path
  algorithm itself);
* **shortest regardless** (for the no-admission baselines): ignore
  residual bandwidth, return the cheapest path.

Both return a :class:`Route` with its end-to-end :class:`PathQoS`, so
the caller can also verify delay/jitter/loss bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce

import networkx as nx

from ..util.errors import NoRouteError
from .link import Link
from .qosparams import PathQoS
from .topology import Topology

__all__ = ["Route", "find_route", "find_route_any"]


@dataclass(frozen=True, slots=True)
class Route:
    """A concrete node/link path with its accumulated QoS."""

    nodes: tuple[str, ...]
    links: tuple[Link, ...]
    qos: PathQoS

    @property
    def hop_count(self) -> int:
        return len(self.links)

    def bottleneck_available_bps(self) -> float:
        return min(link.available_bps for link in self.links)

    def __str__(self) -> str:
        return " -> ".join(self.nodes)


def _route_from_nodes(topology: Topology, nodes: list[str]) -> Route:
    links = topology.links_on_path(nodes)
    qos = reduce(PathQoS.extend, (link.qos for link in links), PathQoS.identity())
    return Route(nodes=tuple(nodes), links=links, qos=qos)


def find_route(
    topology: Topology,
    source: str,
    target: str,
    required_bps: float,
) -> Route:
    """Cheapest path whose every link can still reserve ``required_bps``.

    Raises :class:`NoRouteError` when the endpoints are unknown,
    disconnected, or every connecting path lacks residual bandwidth.
    """
    if not topology.has_node(source):
        raise NoRouteError(f"unknown node {source!r}")
    if not topology.has_node(target):
        raise NoRouteError(f"unknown node {target!r}")
    if source == target:
        return Route(nodes=(source,), links=(), qos=PathQoS.identity())

    # Link cost weights are static, so when no link is bandwidth-
    # constrained the search graph below is exactly the full graph and
    # the answer depends only on (source, target).  That is the hot
    # case — commitment walks mostly run far from saturation — and the
    # topology memoises it; any constrained link falls through to the
    # full search.
    unconstrained = topology.unconstrained_for(required_bps)
    if unconstrained:
        cached = topology.cached_route(source, target)
        if cached is not None:
            assert isinstance(cached, Route)
            return cached

    def weight(a: str, b: str, data: dict) -> "float | None":
        link: Link = data["link"]
        if not link.can_reserve(required_bps):
            return None  # networkx treats None as "edge absent"
        return link.cost_weight

    try:
        nodes = nx.shortest_path(
            topology.graph, source, target, weight=weight
        )
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        raise NoRouteError(
            f"no path from {source!r} to {target!r} with "
            f"{required_bps:.0f} bps available"
        ) from None
    route = _route_from_nodes(topology, nodes)
    if unconstrained:
        topology.store_route(source, target, route)
    return route


def find_route_any(topology: Topology, source: str, target: str) -> Route:
    """Cheapest path ignoring residual bandwidth (baseline policy)."""
    if not topology.has_node(source):
        raise NoRouteError(f"unknown node {source!r}")
    if not topology.has_node(target):
        raise NoRouteError(f"unknown node {target!r}")
    if source == target:
        return Route(nodes=(source,), links=(), qos=PathQoS.identity())
    def weight(a: str, b: str, data: dict) -> float:
        return data["link"].cost_weight

    try:
        nodes = nx.shortest_path(topology.graph, source, target, weight=weight)
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        raise NoRouteError(
            f"no path from {source!r} to {target!r}"
        ) from None
    return _route_from_nodes(topology, nodes)
