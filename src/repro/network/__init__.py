"""Network substrate: topology, routing, per-flow reservations, QoS,
and multi-domain hierarchical reservation ([Haf 95b] extension)."""

from .domains import Domain, DomainAgent, DomainMap, HierarchicalTransport
from .link import Link, LinkReservation
from .qosparams import STEINMETZ_PRESETS, FlowSpec, PathQoS, preset_for
from .routing import Route, find_route, find_route_any
from .topology import Topology
from .transport import FlowReservation, GuaranteeType, TransportSystem

__all__ = [
    "Domain",
    "DomainAgent",
    "DomainMap",
    "HierarchicalTransport",
    "Link",
    "LinkReservation",
    "STEINMETZ_PRESETS",
    "FlowSpec",
    "PathQoS",
    "preset_for",
    "Route",
    "find_route",
    "find_route_any",
    "Topology",
    "FlowReservation",
    "GuaranteeType",
    "TransportSystem",
]
