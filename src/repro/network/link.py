"""Network links with bandwidth reservation (RSVP-style, cf. [Zha 95]).

Each link carries a fixed raw capacity; guaranteed-service flows reserve
their peak rate against it.  Congestion (for the adaptation experiments)
is injected by shrinking the *effective* capacity: reservations made
earlier are then oversubscribed and the transport layer reports the
affected flows as violated — the trigger for the §4 adaptation
procedure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..util.errors import CapacityError, ReservationError
from ..util.validation import check_fraction, check_non_negative, check_positive
from .qosparams import PathQoS

__all__ = ["LinkReservation", "Link"]

_reservation_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class LinkReservation:
    """One flow's hold on one link."""

    reservation_id: int
    link_id: str
    bit_rate: float
    holder: str


class Link:
    """A bidirectional network link between two attachment points."""

    def __init__(
        self,
        link_id: str,
        a: str,
        b: str,
        capacity_bps: float,
        *,
        delay_s: float = 0.002,
        jitter_s: float = 0.001,
        loss_rate: float = 0.0005,
        cost_weight: float = 1.0,
    ) -> None:
        if a == b:
            raise ReservationError(f"link {link_id!r} endpoints must differ")
        self.link_id = link_id
        self.a = a
        self.b = b
        self.capacity_bps = check_positive(capacity_bps, "capacity_bps")
        self.qos = PathQoS(delay_s=delay_s, jitter_s=jitter_s, loss_rate=loss_rate)
        self.cost_weight = check_positive(cost_weight, "cost_weight")
        self._congestion = 0.0
        self._reservations: dict[int, LinkReservation] = {}
        self._reserved_bps = 0.0

    # -- capacity accounting ---------------------------------------------------

    @property
    def reserved_bps(self) -> float:
        return self._reserved_bps

    @property
    def effective_capacity_bps(self) -> float:
        """Capacity available after congestion shrinkage."""
        return self.capacity_bps * (1.0 - self._congestion)

    @property
    def available_bps(self) -> float:
        return max(self.effective_capacity_bps - self._reserved_bps, 0.0)

    @property
    def utilization(self) -> float:
        """Reserved share of raw capacity (may exceed 1 under congestion)."""
        return self._reserved_bps / self.capacity_bps

    @property
    def oversubscribed(self) -> bool:
        """True when congestion pushed effective capacity below the sum
        of existing reservations — some flow is being violated."""
        return self._reserved_bps > self.effective_capacity_bps + 1e-9

    # -- reservations -------------------------------------------------------------

    def can_reserve(self, bit_rate: float) -> bool:
        # Inlined available_bps: this predicate runs for every link on
        # every route probe, and the property chain costs more than the
        # arithmetic.
        available = (
            self.capacity_bps * (1.0 - self._congestion)
            - self._reserved_bps
        )
        if available < 0.0:
            available = 0.0
        return bit_rate <= available + 1e-9

    def reserve(self, bit_rate: float, holder: str) -> LinkReservation:
        check_positive(bit_rate, "bit_rate")
        if not self.can_reserve(bit_rate):
            raise CapacityError(
                f"link {self.link_id}: requested {bit_rate:.0f} bps, "
                f"available {self.available_bps:.0f} bps"
            )
        reservation = LinkReservation(
            reservation_id=next(_reservation_ids),
            link_id=self.link_id,
            bit_rate=bit_rate,
            holder=holder,
        )
        self._reservations[reservation.reservation_id] = reservation
        self._reserved_bps += bit_rate
        return reservation

    def release(self, reservation: "LinkReservation | int") -> None:
        key = (
            reservation.reservation_id
            if isinstance(reservation, LinkReservation)
            else int(reservation)
        )
        record = self._reservations.pop(key, None)
        if record is None:
            raise ReservationError(
                f"link {self.link_id}: no reservation {key}"
            )
        self._reserved_bps -= record.bit_rate
        # Snap float residue: sums of released rates can leave ~1e-9 bps
        # behind, which is twelve orders of magnitude below any real flow.
        if self._reserved_bps < 1e-6:
            self._reserved_bps = 0.0

    def reservations(self) -> tuple[LinkReservation, ...]:
        return tuple(self._reservations.values())

    def holders(self) -> frozenset[str]:
        return frozenset(r.holder for r in self._reservations.values())

    # -- congestion injection -------------------------------------------------------

    def set_congestion(self, fraction: float) -> None:
        """Shrink effective capacity by ``fraction`` (0 = healthy)."""
        self._congestion = check_fraction(fraction, "congestion fraction")

    def fail(self) -> None:
        """Take the link down: zero effective capacity, every holder
        violated, no new reservations (routing skips it)."""
        self.set_congestion(1.0)

    def restore(self) -> None:
        """Bring a failed/congested link back to full health."""
        self.set_congestion(0.0)

    @property
    def is_down(self) -> bool:
        return self._congestion >= 1.0

    @property
    def congestion(self) -> float:
        return self._congestion

    def violated_holders(self) -> frozenset[str]:
        """Flows currently hit by oversubscription.

        The cheapest consistent model: when a link is oversubscribed the
        *most recently admitted* flows, whose cumulative rate exceeds the
        effective capacity, are the ones degraded (older flows keep their
        established schedule; late-comers lose first).
        """
        if not self.oversubscribed:
            return frozenset()
        budget = self.effective_capacity_bps
        victims: list[str] = []
        running = 0.0
        for reservation in sorted(
            self._reservations.values(), key=lambda r: r.reservation_id
        ):
            running += reservation.bit_rate
            if running > budget + 1e-9:
                victims.append(reservation.holder)
        return frozenset(victims)

    def __repr__(self) -> str:
        return (
            f"Link({self.link_id}: {self.a}<->{self.b}, "
            f"{self.capacity_bps / 1e6:.0f} Mbps, "
            f"reserved {self._reserved_bps / 1e6:.1f} Mbps)"
        )
