"""Multi-domain networks and hierarchical reservation ([Haf 95b]).

The authors' companion work negotiates QoS *hierarchically* across
administrative domains: a root negotiator decomposes the end-to-end path
into per-domain segments and asks each domain's agent to reserve its
part; a domain may refuse independently (e.g. a transit-bandwidth
policy), and a refusal anywhere rolls back the whole flow.

This module adds domains on top of the flat substrate without touching
the QoS manager: :class:`HierarchicalTransport` is a drop-in
:class:`~repro.network.transport.TransportSystem` whose ``reserve``
routes each segment through its :class:`DomainAgent`.  Observable
additions over the flat system:

* per-domain **transit quotas** — an upper bound on the aggregate
  bandwidth of flows crossing the domain (admission can now fail for
  policy reasons even when every link has capacity);
* a **signalling-message count** — two messages per involved domain per
  set-up/tear-down, the overhead metric of hierarchical negotiation.

Gateway links (endpoints in different domains) are charged to the
*downstream* domain — the one being entered along the path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..util.errors import CapacityError, NetworkError, ReservationError
from ..util.validation import check_name, check_positive
from .link import Link, LinkReservation
from .qosparams import FlowSpec
from .routing import Route
from .topology import Topology
from .transport import FlowReservation, GuaranteeType, TransportSystem

__all__ = ["Domain", "DomainMap", "DomainAgent", "HierarchicalTransport"]


@dataclass(frozen=True, slots=True)
class Domain:
    """One administrative domain."""

    name: str
    transit_quota_bps: "float | None" = None  # None = unlimited

    def __post_init__(self) -> None:
        check_name(self.name, "domain name")
        if self.transit_quota_bps is not None:
            check_positive(self.transit_quota_bps, "transit_quota_bps")


class DomainMap:
    """Assignment of topology nodes to domains."""

    def __init__(self, domains: Iterable[Domain] = ()) -> None:
        self._domains: dict[str, Domain] = {}
        self._node_domain: dict[str, str] = {}
        for domain in domains:
            self.add_domain(domain)

    def add_domain(self, domain: Domain) -> Domain:
        if domain.name in self._domains:
            raise NetworkError(f"duplicate domain {domain.name!r}")
        self._domains[domain.name] = domain
        return domain

    def assign(self, node_id: str, domain_name: str) -> None:
        if domain_name not in self._domains:
            raise NetworkError(f"unknown domain {domain_name!r}")
        self._node_domain[node_id] = domain_name

    def domain_of(self, node_id: str) -> Domain:
        try:
            return self._domains[self._node_domain[node_id]]
        except KeyError:
            raise NetworkError(f"node {node_id!r} is in no domain") from None

    def domains(self) -> tuple[Domain, ...]:
        return tuple(self._domains.values())

    def validate(self, topology: Topology) -> None:
        """Every node must be assigned."""
        missing = [n for n in topology.nodes() if n not in self._node_domain]
        if missing:
            raise NetworkError(f"nodes without a domain: {sorted(missing)}")

    def link_owner(self, link: Link, *, towards: str) -> Domain:
        """The domain charged for ``link`` when traversing towards the
        node ``towards`` (the entered domain owns gateway links)."""
        return self.domain_of(towards)


@dataclass(slots=True)
class DomainAgent:
    """Reserves one domain's segments, enforcing its transit policy."""

    domain: Domain
    transit_reserved_bps: float = 0.0
    messages: int = 0
    refusals: int = 0

    def can_admit(self, rate_bps: float) -> bool:
        quota = self.domain.transit_quota_bps
        return quota is None or self.transit_reserved_bps + rate_bps <= quota + 1e-9

    def reserve_segment(
        self, links: "list[Link]", rate_bps: float, holder: str
    ) -> "list[LinkReservation]":
        """Reserve every link of this domain's segment (atomic within
        the segment; the caller handles cross-domain rollback)."""
        self.messages += 1  # the request
        if not self.can_admit(rate_bps):
            self.refusals += 1
            raise CapacityError(
                f"domain {self.domain.name!r}: transit quota "
                f"{self.domain.transit_quota_bps:.0f} bps exhausted"
            )
        taken: list[LinkReservation] = []
        try:
            for link in links:
                taken.append(link.reserve(rate_bps, holder=holder))
        except CapacityError:
            for link, reservation in zip(links, taken):
                link.release(reservation)
            self.refusals += 1
            raise
        self.transit_reserved_bps += rate_bps
        self.messages += 1  # the confirmation
        return taken

    def release_segment(
        self, links: "list[Link]", reservations: "list[LinkReservation]",
        rate_bps: float,
    ) -> None:
        self.messages += 1
        for link, reservation in zip(links, reservations):
            try:
                link.release(reservation)
            except ReservationError:
                pass
        self.transit_reserved_bps = max(
            self.transit_reserved_bps - rate_bps, 0.0
        )
        self.messages += 1


class HierarchicalTransport(TransportSystem):
    """A :class:`TransportSystem` that reserves through domain agents.

    Routing is still global (the root negotiator sees the whole map, as
    in [Haf 95b]'s top-level negotiator); *reservation* is delegated per
    domain.  Quota refusals surface exactly like link-capacity refusals,
    so the QoS manager's step 5 needs no changes.
    """

    def __init__(self, topology: Topology, domain_map: DomainMap) -> None:
        super().__init__(topology)
        domain_map.validate(topology)
        self.domain_map = domain_map
        self.agents: dict[str, DomainAgent] = {
            domain.name: DomainAgent(domain)
            for domain in domain_map.domains()
        }
        self._segments: dict[str, list[tuple[DomainAgent, list, list, float]]] = {}

    # -- helpers -----------------------------------------------------------------

    def _split_route(self, route: Route) -> "list[tuple[DomainAgent, list[Link]]]":
        """Group the route's links into per-domain segments, charging
        each link to the domain being entered."""
        segments: list[tuple[DomainAgent, list[Link]]] = []
        for link, towards in zip(route.links, route.nodes[1:]):
            owner = self.domain_map.link_owner(link, towards=towards)
            agent = self.agents[owner.name]
            if segments and segments[-1][0] is agent:
                segments[-1][1].append(link)
            else:
                segments.append((agent, [link]))
        return segments

    def domains_on_route(self, route: Route) -> tuple[str, ...]:
        return tuple(
            agent.domain.name for agent, _ in self._split_route(route)
        )

    @property
    def total_messages(self) -> int:
        return sum(agent.messages for agent in self.agents.values())

    # -- TransportSystem interface ------------------------------------------------------

    def probe(self, source, target, spec, guarantee=GuaranteeType.GUARANTEED):
        route = super().probe(source, target, spec, guarantee)
        if route is None:
            return None
        rate = guarantee.billable_rate(spec)
        for agent, _links in self._split_route(route):
            if not agent.can_admit(rate):
                return None
        return route

    def reserve(
        self,
        source: str,
        target: str,
        spec: FlowSpec,
        *,
        guarantee: GuaranteeType = GuaranteeType.GUARANTEED,
        holder: str = "anonymous",
    ) -> FlowReservation:
        route = self.probe(source, target, spec, guarantee)
        if route is None:
            raise CapacityError(
                f"no feasible multi-domain route {source!r} -> {target!r}"
            )
        rate = guarantee.billable_rate(spec)
        flow_id = f"flow-{next(self._flow_ids)}"
        done: list[tuple[DomainAgent, list, list, float]] = []
        all_reservations: list[LinkReservation] = []
        try:
            for agent, links in self._split_route(route):
                reservations = agent.reserve_segment(links, rate, holder=flow_id)
                done.append((agent, links, reservations, rate))
                all_reservations.extend(reservations)
        except CapacityError:
            for agent, links, reservations, seg_rate in done:
                agent.release_segment(links, reservations, seg_rate)
            raise
        flow = FlowReservation(
            flow_id=flow_id,
            source=source,
            target=target,
            spec=spec,
            guarantee=guarantee,
            route=route,
            link_reservations=tuple(all_reservations),
        )
        self._flows[flow_id] = flow
        self._segments[flow_id] = done
        if self.telemetry is not None:
            self.telemetry.count("network.flows.reserved")
        return flow

    def release(self, flow: "FlowReservation | str") -> None:
        flow_id = flow.flow_id if isinstance(flow, FlowReservation) else flow
        if self._release_intercepted(flow_id):
            return
        record = self._flows.pop(flow_id, None)
        if record is None:
            raise ReservationError(f"no flow {flow_id!r}")
        for agent, links, reservations, rate in self._segments.pop(flow_id, []):
            agent.release_segment(links, reservations, rate)
        if self.telemetry is not None:
            self.telemetry.count("network.flows.released")
