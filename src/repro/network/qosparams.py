"""Network-level QoS parameters (paper §6).

The QoS manager maps user-level requirements into "QoS parameters that
the system can handle and manage.  Examples of such parameters are
delay, throughput, loss rate and jitter."  :class:`PathQoS` carries the
end-to-end values of one network path; :class:`FlowSpec` is the
per-stream demand handed to the transport system (the §6 outputs
``maxBitRate``/``avgBitRate`` plus the preset delay bounds).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.errors import ValidationError
from ..util.validation import check_fraction, check_non_negative, check_positive

__all__ = ["PathQoS", "FlowSpec", "STEINMETZ_PRESETS", "preset_for"]


@dataclass(frozen=True, slots=True)
class PathQoS:
    """End-to-end QoS of a network path.

    Delays and jitter add along a path; loss compounds:
    ``1 - Π(1 - loss_i)``.
    """

    delay_s: float
    jitter_s: float
    loss_rate: float

    def __post_init__(self) -> None:
        check_non_negative(self.delay_s, "delay_s")
        check_non_negative(self.jitter_s, "jitter_s")
        check_fraction(self.loss_rate, "loss_rate")

    @classmethod
    def identity(cls) -> "PathQoS":
        return cls(0.0, 0.0, 0.0)

    def extend(self, other: "PathQoS") -> "PathQoS":
        """QoS of this path followed by ``other``."""
        return PathQoS(
            delay_s=self.delay_s + other.delay_s,
            jitter_s=self.jitter_s + other.jitter_s,
            loss_rate=1.0 - (1.0 - self.loss_rate) * (1.0 - other.loss_rate),
        )

    def satisfies(self, bound: "PathQoS") -> bool:
        """True iff this path is at least as good as ``bound`` in every
        parameter (smaller is better throughout)."""
        return (
            self.delay_s <= bound.delay_s
            and self.jitter_s <= bound.jitter_s
            and self.loss_rate <= bound.loss_rate
        )


@dataclass(frozen=True, slots=True)
class FlowSpec:
    """The per-stream demand of one monomedia variant (§6 mapping
    output): peak/average throughput plus tolerable delay bounds."""

    max_bit_rate: float
    avg_bit_rate: float
    max_delay_s: float
    max_jitter_s: float
    max_loss_rate: float

    def __post_init__(self) -> None:
        check_positive(self.max_bit_rate, "max_bit_rate")
        check_positive(self.avg_bit_rate, "avg_bit_rate")
        if self.avg_bit_rate > self.max_bit_rate:
            raise ValidationError(
                f"avg_bit_rate ({self.avg_bit_rate}) exceeds max_bit_rate "
                f"({self.max_bit_rate})"
            )
        check_positive(self.max_delay_s, "max_delay_s")
        check_non_negative(self.max_jitter_s, "max_jitter_s")
        check_fraction(self.max_loss_rate, "max_loss_rate")

    @property
    def qos_bound(self) -> PathQoS:
        return PathQoS(self.max_delay_s, self.max_jitter_s, self.max_loss_rate)

    @property
    def burstiness(self) -> float:
        return self.max_bit_rate / self.avg_bit_rate


# §6: "we use specific values for video and audio presented in [Ste 90]
# based on some experiments.  As an example the following values are
# considered for the video: jitter = 10 ms, and loss rate 0.003."
# The audio/still values follow the same source's published bounds.
STEINMETZ_PRESETS: dict[str, PathQoS] = {
    "video": PathQoS(delay_s=0.250, jitter_s=0.010, loss_rate=0.003),
    "audio": PathQoS(delay_s=0.250, jitter_s=0.005, loss_rate=0.010),
    # Discrete media travel over a reliable transfer (retransmission
    # masks loss); their bounds only cap the interactive wait.
    "image": PathQoS(delay_s=2.000, jitter_s=2.000, loss_rate=0.050),
    "text": PathQoS(delay_s=2.000, jitter_s=2.000, loss_rate=0.050),
    "graphic": PathQoS(delay_s=2.000, jitter_s=2.000, loss_rate=0.050),
}


def preset_for(medium: "str | object") -> PathQoS:
    """Delay/jitter/loss preset for a medium (paper §6, after [Ste 90])."""
    key = getattr(medium, "value", medium)
    try:
        return STEINMETZ_PRESETS[str(key)]
    except KeyError:
        raise ValidationError(f"no QoS preset for medium {medium!r}") from None
