"""Transport system facade — what the QoS manager's step 5 talks to.

"The QoS manager ... asks the transport system and the media file
servers to reserve resources to support the QoS associated with the
system offer" (§4 step 5).  :class:`TransportSystem` exposes exactly
that contract:

* :meth:`probe` — can a flow of a given spec be carried between two
  attachment points right now? (used to filter offers cheaply before
  attempting commitment);
* :meth:`reserve` — atomically reserve the flow's peak rate on every
  link of a feasible route (all-or-nothing, with rollback);
* :meth:`release` — tear the flow down;
* :meth:`violated_flows` — flows currently hit by congestion, the
  adaptation trigger.

Guaranteed-service flows reserve their peak rate (``maxBitRate``);
best-effort flows reserve the average rate (``avgBitRate``) — the
paper's cost model distinguishes exactly these two guarantee types
(§7).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from ..util.errors import CapacityError, NoRouteError, ReservationError
from .link import LinkReservation
from .qosparams import FlowSpec, PathQoS
from .routing import Route, find_route
from .topology import Topology

__all__ = ["GuaranteeType", "FlowReservation", "TransportSystem"]


class GuaranteeType(enum.Enum):
    """Service guarantee classes of §7's cost model."""

    GUARANTEED = "guaranteed"
    BEST_EFFORT = "best-effort"

    def billable_rate(self, spec: FlowSpec) -> float:
        """The rate reserved (and billed) under this guarantee."""
        if self is GuaranteeType.GUARANTEED:
            return spec.max_bit_rate
        return spec.avg_bit_rate


@dataclass(frozen=True, slots=True)
class FlowReservation:
    """A committed end-to-end flow."""

    flow_id: str
    source: str
    target: str
    spec: FlowSpec
    guarantee: GuaranteeType
    route: Route
    link_reservations: tuple[LinkReservation, ...]
    holder: str = "anonymous"

    @property
    def reserved_bps(self) -> float:
        return self.guarantee.billable_rate(self.spec)


class TransportSystem:
    """Per-flow reservation management over a :class:`Topology`."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._flows: dict[str, FlowReservation] = {}
        self._flow_ids = itertools.count(1)
        # Thin fault-injection hook (see repro.faults.injector); None in
        # production paths so the happy path costs one identity check.
        self.fault_hook = None
        # Observability seam (see repro.telemetry): assign a hub and
        # flow reservations/releases are counted.
        self.telemetry = None

    @property
    def topology(self) -> Topology:
        return self._topology

    # -- queries ---------------------------------------------------------------

    def probe(
        self, source: str, target: str, spec: FlowSpec,
        guarantee: GuaranteeType = GuaranteeType.GUARANTEED,
    ) -> "Route | None":
        """A route able to carry the flow now, or None.

        Checks both residual bandwidth and the flow's delay/jitter/loss
        bounds against the route's accumulated QoS.
        """
        rate = guarantee.billable_rate(spec)
        try:
            route = find_route(self._topology, source, target, rate)
        except NoRouteError:
            return None
        if not route.qos.satisfies(spec.qos_bound):
            return None
        return route

    def flow(self, flow_id: str) -> FlowReservation:
        try:
            return self._flows[flow_id]
        except KeyError:
            raise ReservationError(f"no flow {flow_id!r}") from None

    def flows(self) -> tuple[FlowReservation, ...]:
        return tuple(self._flows.values())

    def has_flow(self, flow_id: str) -> bool:
        return flow_id in self._flows

    def flows_for_holder(self, holder: str) -> tuple[FlowReservation, ...]:
        """Every flow reserved on behalf of ``holder`` (the crash-recovery
        compensation scan)."""
        return tuple(
            flow for flow in self._flows.values() if flow.holder == holder
        )

    @property
    def flow_count(self) -> int:
        return len(self._flows)

    # -- commitment ----------------------------------------------------------------

    def reserve(
        self,
        source: str,
        target: str,
        spec: FlowSpec,
        *,
        guarantee: GuaranteeType = GuaranteeType.GUARANTEED,
        holder: str = "anonymous",
    ) -> FlowReservation:
        """Atomically reserve a route for the flow.

        All links reserve or none do: on a mid-path failure every
        already-taken link reservation is rolled back and
        :class:`CapacityError` propagates (step 5 then tries the next
        system offer).
        """
        route = self.probe(source, target, spec, guarantee)
        if route is None:
            raise CapacityError(
                f"no feasible route {source!r} -> {target!r} for "
                f"{guarantee.billable_rate(spec):.0f} bps"
            )
        rate = guarantee.billable_rate(spec)
        flow_id = f"flow-{next(self._flow_ids)}"
        taken: list[LinkReservation] = []
        try:
            for link in route.links:
                taken.append(link.reserve(rate, holder=flow_id))
        except CapacityError:
            for link, reservation in zip(route.links, taken):
                link.release(reservation)
            raise
        flow = FlowReservation(
            flow_id=flow_id,
            source=source,
            target=target,
            spec=spec,
            guarantee=guarantee,
            route=route,
            link_reservations=tuple(taken),
            holder=holder,
        )
        self._flows[flow_id] = flow
        if self.telemetry is not None:
            self.telemetry.count("network.flows.reserved")
        return flow

    def release(self, flow: "FlowReservation | str") -> None:
        flow_id = flow.flow_id if isinstance(flow, FlowReservation) else flow
        if self._release_intercepted(flow_id):
            return
        record = self._flows.pop(flow_id, None)
        if record is None:
            raise ReservationError(f"no flow {flow_id!r}")
        for link, reservation in zip(
            record.route.links, record.link_reservations
        ):
            link.release(reservation)
        if self.telemetry is not None:
            self.telemetry.count("network.flows.released")

    def _release_intercepted(self, flow_id: str) -> bool:
        """Lost-release fault: the flow stays reserved (leaked) until the
        lease reaper recovers it."""
        return self.fault_hook is not None and self.fault_hook.intercept_flow_release(
            flow_id
        )

    def release_all(self) -> None:
        for flow_id in list(self._flows):
            self.release(flow_id)

    # -- health --------------------------------------------------------------------

    def violated_flows(self) -> tuple[FlowReservation, ...]:
        """Flows crossing at least one oversubscribed link where they
        are among the shed holders — the §4 adaptation trigger."""
        victims: set[str] = set()
        for link in self._topology.oversubscribed_links():
            victims |= link.violated_holders()
        return tuple(
            flow for flow_id, flow in self._flows.items() if flow_id in victims
        )

    def path_qos(self, flow: "FlowReservation | str") -> PathQoS:
        record = flow if isinstance(flow, FlowReservation) else self.flow(flow)
        return record.route.qos
