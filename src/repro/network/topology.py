"""Network topology: attachment points and links.

Nodes are attachment points (client access networks, server access
points, backbone switches); edges carry :class:`~repro.network.link.Link`
objects.  The graph is undirected — the era's ATM links are duplex and
the paper's flows are one-directional video/audio deliveries whose
reverse control traffic is negligible.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from ..util.errors import NetworkError, NotFoundError
from .link import Link

__all__ = ["Topology"]


class Topology:
    """The set of nodes and links the transport system routes over."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._links: dict[str, Link] = {}
        # Memoised full-graph cheapest routes, keyed (source, target).
        # Only consulted/filled while *no* link is bandwidth-constrained
        # for the queried rate (see routing.find_route), because link
        # cost weights are static: under that condition the constrained
        # search graph is identical to the full graph, so the cached
        # answer is exactly what Dijkstra would return.  Structural
        # changes (new links) drop the memo wholesale.
        self._route_cache: dict[tuple[str, str], object] = {}

    # -- construction -----------------------------------------------------------

    def add_node(self, node_id: str) -> None:
        self._graph.add_node(node_id)

    def add_link(self, link: Link) -> Link:
        if link.link_id in self._links:
            raise NetworkError(f"duplicate link id {link.link_id!r}")
        if self._graph.has_edge(link.a, link.b):
            raise NetworkError(
                f"nodes {link.a!r} and {link.b!r} are already linked"
            )
        self._links[link.link_id] = link
        self._graph.add_edge(link.a, link.b, link=link)
        self._route_cache.clear()
        return link

    def connect(
        self,
        a: str,
        b: str,
        capacity_bps: float,
        *,
        link_id: str | None = None,
        **link_kwargs,
    ) -> Link:
        """Create and add a link between ``a`` and ``b``."""
        link = Link(
            link_id or f"link:{a}--{b}", a, b, capacity_bps, **link_kwargs
        )
        return self.add_link(link)

    # -- lookup ---------------------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    def nodes(self) -> tuple[str, ...]:
        return tuple(self._graph.nodes)

    def links(self) -> tuple[Link, ...]:
        return tuple(self._links.values())

    def link(self, link_id: str) -> Link:
        try:
            return self._links[link_id]
        except KeyError:
            raise NotFoundError(f"no link {link_id!r}") from None

    def link_between(self, a: str, b: str) -> Link:
        data = self._graph.get_edge_data(a, b)
        if data is None:
            raise NotFoundError(f"no link between {a!r} and {b!r}")
        return data["link"]

    def has_node(self, node_id: str) -> bool:
        return self._graph.has_node(node_id)

    def links_on_path(self, nodes: Iterable[str]) -> tuple[Link, ...]:
        """The link sequence along a node path."""
        nodes = list(nodes)
        if len(nodes) < 2:
            raise NetworkError(f"path needs at least 2 nodes, got {nodes!r}")
        return tuple(
            self.link_between(a, b) for a, b in zip(nodes, nodes[1:])
        )

    def neighbors(self, node_id: str) -> tuple[str, ...]:
        if not self._graph.has_node(node_id):
            raise NotFoundError(f"no node {node_id!r}")
        return tuple(self._graph.neighbors(node_id))

    def iter_links(self) -> Iterator[Link]:
        return iter(self._links.values())

    # -- route memoisation ---------------------------------------------------------

    def unconstrained_for(self, required_bps: float) -> bool:
        """True when every link can still reserve ``required_bps`` —
        i.e. the bandwidth-constrained routing graph is the full graph."""
        for link in self._links.values():
            if not link.can_reserve(required_bps):
                return False
        return True

    def cached_route(self, source: str, target: str) -> "object | None":
        return self._route_cache.get((source, target))

    def store_route(self, source: str, target: str, route: object) -> None:
        self._route_cache[(source, target)] = route

    # -- health ------------------------------------------------------------------------

    def oversubscribed_links(self) -> tuple[Link, ...]:
        return tuple(l for l in self._links.values() if l.oversubscribed)

    def clear_congestion(self) -> None:
        for link in self._links.values():
            link.set_congestion(0.0)

    def total_reserved_bps(self) -> float:
        return sum(l.reserved_bps for l in self._links.values())

    def total_capacity_bps(self) -> float:
        return sum(l.capacity_bps for l in self._links.values())

    def __repr__(self) -> str:
        return (
            f"Topology({self._graph.number_of_nodes()} nodes, "
            f"{len(self._links)} links)"
        )
