"""Session runtime: the active-phase loop.

Wires playout sessions, the QoS monitor and the adaptation manager onto
one event loop: a periodic monitoring sweep detects violations and runs
the §4 adaptation procedure for each affected session; completion events
finish sessions and release their resources.

This is the component the adaptation experiment (E9) and the
news-on-demand example drive.
"""

from __future__ import annotations

import itertools
from typing import Callable

from ..client.machine import ClientMachine
from ..core.adaptation import AdaptationManager, AdaptationStrategy
from ..core.negotiation import NegotiationResult, QoSManager
from ..core.profiles import UserProfile
from ..util.errors import SessionError
from .engine import EventLoop
from .monitor import QoSMonitor, Violation
from .playout import PlayoutSession, SessionState

__all__ = ["SessionRuntime"]


class SessionRuntime:
    """Owns the active sessions and the monitoring/adaptation loop."""

    def __init__(
        self,
        manager: QoSManager,
        loop: EventLoop,
        *,
        monitor_period_s: float = 1.0,
        transition_overhead_s: float = 2.0,
        adaptation_enabled: bool = True,
        adaptation_strategy: "AdaptationStrategy | None" = None,
        on_violation: "Callable[[Violation], None] | None" = None,
    ) -> None:
        if loop.clock is not manager.clock:
            raise SessionError(
                "the runtime's event loop must share the QoS manager's clock"
            )
        self.manager = manager
        self.loop = loop
        self.monitor = QoSMonitor(
            manager.committer.transport, manager.committer.servers
        )
        self.adaptation = AdaptationManager(
            manager,
            transition_overhead_s=transition_overhead_s,
            strategy=adaptation_strategy or AdaptationStrategy.BREAK_BEFORE_MAKE,
        )
        self.adaptation_enabled = adaptation_enabled
        self.monitor_period_s = monitor_period_s
        self.on_violation = on_violation
        self.telemetry = manager.telemetry
        self.sessions: dict[str, PlayoutSession] = {}
        self.finished: list[PlayoutSession] = []
        self._ids = itertools.count(1)
        self._monitoring_armed = False

    # -- session lifecycle ---------------------------------------------------------

    def start_session(
        self,
        result: NegotiationResult,
        profile: UserProfile,
        client: ClientMachine,
        *,
        duration_s: "float | None" = None,
        confirm: bool = True,
    ) -> PlayoutSession:
        """Confirm the commitment (unless already confirmed) and start
        playout now."""
        if result.commitment is None:
            raise SessionError("negotiation result holds no commitment")
        now = self.loop.now
        if confirm:
            result.commitment.confirm(now)
        if duration_s is None:
            duration_s = result.offer_space.document.duration_s  # type: ignore[union-attr]
        session = PlayoutSession(
            session_id=f"sess-{next(self._ids)}",
            result=result,
            profile=profile,
            client=client,
            started_at=now,
            duration_s=duration_s,
        )
        self.sessions[session.session_id] = session
        self.telemetry.count("session.started")
        self.telemetry.metrics.gauge_set(
            "sessions.active", float(len(self.sessions))
        )
        self._schedule_completion(session)
        self._arm_monitoring()
        return session

    def _schedule_completion(self, session: PlayoutSession) -> None:
        remaining = session.duration_s - session.position_at(self.loop.now)
        # A strictly positive floor keeps float roundoff from scheduling
        # a zero-delay event that re-observes the same position forever.
        self.loop.after(
            max(remaining, 1e-3),
            lambda: self._maybe_complete(session),
            label=f"complete:{session.session_id}",
        )

    def _maybe_complete(self, session: PlayoutSession) -> None:
        if session.state in (SessionState.COMPLETED, SessionState.ABORTED):
            return
        now = self.loop.now
        if session.finished_by(now):
            session.complete(now)
            self._retire(session)
        else:
            # An adaptation pushed the position back (interruption);
            # re-arm the completion timer for the remaining playout.
            self._schedule_completion(session)

    def abort_session(self, session: PlayoutSession) -> None:
        session.abort(self.loop.now)
        self._retire(session)

    def _retire(self, session: PlayoutSession) -> None:
        self.sessions.pop(session.session_id, None)
        self.finished.append(session)
        if session.state is SessionState.ABORTED:
            self.telemetry.count("session.aborted")
        else:
            self.telemetry.count("session.completed")
        self.telemetry.metrics.gauge_set(
            "sessions.active", float(len(self.sessions))
        )

    @property
    def active_count(self) -> int:
        return len(self.sessions)

    # -- monitoring sweep ---------------------------------------------------------------

    def _arm_monitoring(self) -> None:
        if self._monitoring_armed:
            return
        self._monitoring_armed = True

        def sweep() -> None:
            self.sweep_once()
            if self.sessions:
                self.loop.after(self.monitor_period_s, sweep, label="monitor")
            else:
                self._monitoring_armed = False

        self.loop.after(self.monitor_period_s, sweep, label="monitor")

    def sweep_once(self) -> list[Violation]:
        """One monitoring pass: renew leases, reap leaks, detect
        violations and adapt."""
        now = self.loop.now
        committer = self.manager.committer
        if committer.leases is not None:
            # Live sessions keep their leases fresh; whatever stopped
            # renewing (lost releases, vanished users) is reaped, so no
            # reservation outlives its holder by more than one TTL.
            for session in self.sessions.values():
                committer.renew_lease(session.holder, now)
            committer.reap_expired(now)
        violations = self.monitor.scan(self.sessions.values(), now)
        violated_ids = {violation.session_id for violation in violations}
        for session in list(self.sessions.values()):
            if (
                session.state is SessionState.DEGRADED
                and session.session_id not in violated_ids
            ):
                if session.record.resources_lost:
                    # The session runs without guarantees; keep retrying
                    # the adaptation procedure until resources return.
                    if self.adaptation_enabled:
                        session.adapt(self.adaptation, now)
                        if not session.record.resources_lost:
                            session.clear_degraded(now)
                else:
                    session.clear_degraded(now)
        for violation in violations:
            session = self.sessions.get(violation.session_id)
            if session is None or session.state in (
                SessionState.COMPLETED,
                SessionState.ABORTED,
            ):
                continue
            self.telemetry.count(
                "monitor.violations", source=violation.source
            )
            if self.on_violation is not None:
                self.on_violation(violation)
            if self.adaptation_enabled:
                session.adapt(self.adaptation, now)
            else:
                session.mark_degraded(now)
        return violations
