"""Congestion injection for the adaptation experiments.

The paper demonstrates adaptation when "the network or/and the server
machine become congested".  We reproduce that with scripted or random
congestion episodes applied to links and servers on the event loop:
each episode shrinks a component's effective capacity for a duration,
then restores it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cmfs.server import MediaServer
from ..network.topology import Topology
from ..util.errors import SimulationError
from ..util.rng import RngLike, make_rng
from ..util.validation import check_fraction, check_positive
from .engine import EventLoop

__all__ = ["CongestionEpisode", "ScriptedInjector", "RandomInjector"]


@dataclass(frozen=True, slots=True)
class CongestionEpisode:
    """One component degradation: from ``start_s`` for ``duration_s``
    the target loses ``severity`` of its capacity."""

    target_kind: str  # "link" | "server"
    target_id: str
    start_s: float
    duration_s: float
    severity: float

    def __post_init__(self) -> None:
        if self.target_kind not in ("link", "server"):
            raise SimulationError(
                f"target_kind must be 'link' or 'server', got "
                f"{self.target_kind!r}"
            )
        check_positive(self.duration_s, "duration_s")
        check_fraction(self.severity, "severity")


class ScriptedInjector:
    """Applies a fixed list of episodes on an event loop."""

    def __init__(
        self,
        topology: Topology,
        servers: dict[str, MediaServer],
        episodes: Sequence[CongestionEpisode],
    ) -> None:
        self._topology = topology
        self._servers = dict(servers)
        self.episodes = tuple(episodes)
        self.applied: list[CongestionEpisode] = []
        self.cleared: list[CongestionEpisode] = []
        self._active: dict[tuple[str, str], list[CongestionEpisode]] = {}

    def arm(self, loop: EventLoop) -> None:
        """Schedule every episode's start and end on ``loop``."""
        for episode in self.episodes:
            loop.at(
                episode.start_s,
                lambda ep=episode: self._apply(ep),
                label=f"congest:{episode.target_id}",
            )
            loop.at(
                episode.start_s + episode.duration_s,
                lambda ep=episode: self._clear(ep),
                label=f"heal:{episode.target_id}",
            )

    def _set_level(self, kind: str, target_id: str) -> None:
        """Overlapping episodes compose by max severity."""
        active = self._active.get((kind, target_id), [])
        level = max((ep.severity for ep in active), default=0.0)
        if kind == "link":
            self._topology.link(target_id).set_congestion(level)
        else:
            self._server(target_id).set_degradation(level)

    def _apply(self, episode: CongestionEpisode) -> None:
        key = (episode.target_kind, episode.target_id)
        self._active.setdefault(key, []).append(episode)
        self._set_level(*key)
        self.applied.append(episode)

    def _clear(self, episode: CongestionEpisode) -> None:
        key = (episode.target_kind, episode.target_id)
        active = self._active.get(key, [])
        if episode in active:
            active.remove(episode)
        self._set_level(*key)
        self.cleared.append(episode)

    def _server(self, server_id: str) -> MediaServer:
        try:
            return self._servers[server_id]
        except KeyError:
            raise SimulationError(f"unknown server {server_id!r}") from None


class RandomInjector:
    """Draws episodes from a seeded random process.

    Episode starts follow a Poisson process of the given rate over the
    horizon; each episode picks a uniform target (links and servers
    pooled), an exponential duration and a uniform severity range.
    """

    def __init__(
        self,
        topology: Topology,
        servers: dict[str, MediaServer],
        *,
        rate_per_s: float,
        horizon_s: float,
        mean_duration_s: float = 20.0,
        severity_range: tuple[float, float] = (0.5, 0.95),
        rng: RngLike = None,
    ) -> None:
        check_positive(rate_per_s, "rate_per_s")
        check_positive(horizon_s, "horizon_s")
        check_positive(mean_duration_s, "mean_duration_s")
        lo, hi = severity_range
        check_fraction(lo, "severity lower bound")
        check_fraction(hi, "severity upper bound")
        if lo > hi:
            raise SimulationError("severity_range must be (lo, hi) with lo <= hi")
        rng = make_rng(rng)

        targets: list[tuple[str, str]] = [
            ("link", link.link_id) for link in topology.links()
        ] + [("server", server_id) for server_id in servers]
        if not targets:
            raise SimulationError("no links or servers to congest")

        episodes: list[CongestionEpisode] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate_per_s))
            if t >= horizon_s:
                break
            kind, target_id = targets[int(rng.integers(len(targets)))]
            episodes.append(
                CongestionEpisode(
                    target_kind=kind,
                    target_id=target_id,
                    start_s=t,
                    duration_s=float(rng.exponential(mean_duration_s)) + 1e-3,
                    severity=float(rng.uniform(lo, hi)),
                )
            )
        self.scripted = ScriptedInjector(topology, servers, episodes)

    @property
    def episodes(self) -> tuple[CongestionEpisode, ...]:
        return self.scripted.episodes

    def arm(self, loop: EventLoop) -> None:
        self.scripted.arm(loop)
