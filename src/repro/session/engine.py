"""Discrete-event simulation engine.

A minimal, deterministic event loop shared by the playout sessions, the
QoS monitor and the congestion injector.  Events at equal timestamps
fire in scheduling order (a monotone sequence number breaks ties), so
runs are exactly reproducible.

The engine owns a :class:`~repro.util.clock.ManualClock`; handing the
same clock to the :class:`~repro.core.negotiation.QoSManager` makes
confirmation deadlines and playout time share one timeline.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..util.clock import ManualClock
from ..util.errors import SessionError
from ..util.validation import check_non_negative

__all__ = ["ScheduledEvent", "EventLoop"]


@dataclass(order=True)
class ScheduledEvent:
    """One pending callback.  Ordering: (time, sequence)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventLoop:
    """A heap-based event loop over a manual clock."""

    def __init__(self, clock: ManualClock | None = None) -> None:
        self.clock = clock or ManualClock()
        self._queue: list[ScheduledEvent] = []
        self._sequence = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        return self.clock.now()

    @property
    def pending(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def processed(self) -> int:
        return self._processed

    # -- scheduling -------------------------------------------------------------

    def at(self, time: float, callback: Callable[[], None], *, label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` at absolute ``time``."""
        if time < self.now - 1e-12:
            raise SessionError(
                f"cannot schedule at t={time:g}s in the past (now {self.now:g}s)"
            )
        event = ScheduledEvent(
            time=float(time),
            sequence=next(self._sequence),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def after(self, delay: float, callback: Callable[[], None], *, label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` ``delay`` seconds from now."""
        check_non_negative(delay, "delay")
        return self.at(self.now + delay, callback, label=label)

    def every(
        self,
        period: float,
        callback: Callable[[], None],
        *,
        label: str = "",
        until: "float | None" = None,
    ) -> None:
        """Schedule ``callback`` periodically, starting one period from
        now, optionally stopping at ``until``."""
        if period <= 0:
            raise SessionError(f"period must be positive, got {period}")

        def tick() -> None:
            callback()
            next_time = self.now + period
            if until is None or next_time <= until + 1e-12:
                self.at(next_time, tick, label=label)

        first = self.now + period
        if until is None or first <= until + 1e-12:
            self.at(first, tick, label=label)

    # -- execution -----------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event; False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            self._processed += 1
            return True
        return False

    def run_until(self, time: float) -> None:
        """Fire every event up to and including ``time``, then advance
        the clock to exactly ``time``."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > time + 1e-12:
                break
            self.step()
        if time > self.now:
            self.clock.advance_to(time)

    def run(self, *, max_events: int = 1_000_000) -> None:
        """Drain the queue (bounded to catch runaway self-scheduling)."""
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events:
                raise SessionError(
                    f"event loop exceeded {max_events} events; "
                    "likely an unbounded periodic task"
                )

    def __repr__(self) -> str:
        return f"EventLoop(t={self.now:g}s, pending={self.pending})"
