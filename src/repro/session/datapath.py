"""Data-path simulation: disk rounds → client playout buffers.

The reservation machinery guarantees *rates*; whether the user actually
sees smooth playout depends on the round-by-round data path: each
service round the disk reads every stream's next blocks (VBR — the
per-round demand fluctuates around the average), the network delivers
them, and the client's playout buffer drains at the consumption rate.
An infeasible round (aggregate demand above the round budget) slows
every stream proportionally; buffers underrun; the user sees a stall.

This module simulates exactly that pipeline for the streams of one
server, turning the E15 admission ablation's abstract "deadline
VIOLATED" into measured stall seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cmfs.disk import DiskModel
from ..util.errors import SimulationError
from ..util.rng import RngLike, make_rng
from ..util.validation import check_non_negative, check_positive

__all__ = ["StreamDemand", "DataPathReport", "simulate_rounds"]


@dataclass(frozen=True, slots=True)
class StreamDemand:
    """One continuous stream's data-path parameters."""

    stream_id: str
    avg_bps: float
    max_bps: float
    prebuffer_s: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.avg_bps, "avg_bps")
        check_positive(self.max_bps, "max_bps")
        check_non_negative(self.prebuffer_s, "prebuffer_s")
        if self.max_bps < self.avg_bps:
            raise SimulationError(
                f"stream {self.stream_id!r}: max_bps below avg_bps"
            )


@dataclass(slots=True)
class DataPathReport:
    """Per-stream outcome of one simulation."""

    stream_id: str
    delivered_bits: float = 0.0
    consumed_bits: float = 0.0
    stall_s: float = 0.0
    stall_events: int = 0
    buffer_peak_bits: float = 0.0
    infeasible_rounds: int = 0

    @property
    def smooth(self) -> bool:
        return self.stall_s == 0.0


def simulate_rounds(
    disk: DiskModel,
    demands: "list[StreamDemand]",
    duration_s: float,
    *,
    rng: RngLike = None,
    vbr_spread: float = 0.5,
) -> "dict[str, DataPathReport]":
    """Simulate ``duration_s`` of service rounds for ``demands``.

    Per round, each stream needs a VBR-fluctuating amount of data
    (uniform in ``avg × [1−spread, 1+spread]``, capped at its peak
    rate).  If the round's total work exceeds the round budget every
    stream's delivery is scaled down proportionally — the disk has no
    spare time to catch up, which is exactly why admission control
    matters.  Playout starts once the prebuffer is filled; a drained
    buffer stalls the presentation until data arrives.
    """
    check_positive(duration_s, "duration_s")
    if not demands:
        raise SimulationError("need at least one stream")
    if not (0.0 <= vbr_spread < 1.0):
        raise SimulationError("vbr_spread must be in [0, 1)")
    rng = make_rng(rng)
    round_s = disk.round_s
    rounds = max(int(round(duration_s / round_s)), 1)

    from collections import deque

    reports = {d.stream_id: DataPathReport(d.stream_id) for d in demands}
    buffers = {d.stream_id: 0.0 for d in demands}
    # Content sizes delivered but not yet played (the playout consumes
    # the *same* VBR bits that were fetched, buffer-delayed).
    queued: dict[str, deque] = {d.stream_id: deque() for d in demands}
    playing = {d.stream_id: False for d in demands}
    prebuffer_rounds = {
        d.stream_id: max(int(round(d.prebuffer_s / round_s)), 1)
        for d in demands
    }

    for _ in range(rounds):
        # Per-stream content size for this round (the VBR draw).
        needs: dict[str, float] = {}
        for demand in demands:
            factor = float(rng.uniform(1.0 - vbr_spread, 1.0 + vbr_spread))
            bits = min(
                demand.avg_bps * round_s * factor, demand.max_bps * round_s
            )
            needs[demand.stream_id] = bits
        # Round feasibility with the actual bits: an overloaded round
        # slows every stream's delivery proportionally.
        transfer_s = sum(needs.values()) / disk.transfer_rate_bps
        busy = transfer_s + len(demands) * disk.overhead_s
        scale = min(1.0, round_s / busy) if busy > 0 else 1.0
        infeasible = busy > round_s + 1e-12

        for demand in demands:
            sid = demand.stream_id
            report = reports[sid]
            delivered = needs[sid] * scale
            report.delivered_bits += delivered
            if infeasible:
                report.infeasible_rounds += 1
            buffers[sid] += delivered
            queued[sid].append(needs[sid])
            report.buffer_peak_bits = max(report.buffer_peak_bits, buffers[sid])

            if not playing[sid]:
                if len(queued[sid]) >= prebuffer_rounds[sid]:
                    playing[sid] = True
                continue
            # Play the oldest queued content round; the bits needed are
            # that round's own VBR size.
            if not queued[sid]:
                continue
            want = queued[sid].popleft()
            have = buffers[sid]
            if have >= want - 1e-9:
                buffers[sid] = have - want
                report.consumed_bits += want
            else:
                # Partial round: the shortfall is visible stall time.
                report.consumed_bits += have
                shortfall = want - have
                report.stall_s += shortfall / demand.avg_bps
                report.stall_events += 1
                buffers[sid] = 0.0
    return reports
