"""QoS monitoring: detecting violations during the active phase.

The paper's adaptation is triggered when "the network or/and the server
machine become congested thus leading to lower presentation quality".
:class:`QoSMonitor` polls the transport system and the server fleet,
maps violated reservation holders back to playout sessions, and reports
:class:`Violation` records.  A playout buffer model
(:class:`JitterCompensator`, standing in for the U. Ottawa
synchronization component) decides how long a violation may persist
before the presentation visibly stalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..cmfs.server import MediaServer
from ..network.transport import TransportSystem
from ..util.validation import check_positive
from .playout import PlayoutSession

__all__ = ["Violation", "JitterCompensator", "QoSMonitor"]


@dataclass(frozen=True, slots=True)
class Violation:
    """One detected degradation touching one session."""

    session_id: str
    source: str       # "network" or "server"
    component: str    # link id or server id
    detected_at: float


@dataclass(frozen=True, slots=True)
class JitterCompensator:
    """Playout-buffer model: a violation shorter than the buffered
    playout time is absorbed invisibly (the synchronization protocols
    "compensate" jitter, §6)."""

    buffer_s: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.buffer_s, "buffer_s")

    def visible_stall(self, violation_duration_s: float) -> float:
        """Stall time the user perceives for a violation of the given
        duration."""
        return max(violation_duration_s - self.buffer_s, 0.0)


class QoSMonitor:
    """Maps infrastructure-level violations to sessions."""

    def __init__(
        self,
        transport: TransportSystem,
        servers: Mapping[str, MediaServer],
        *,
        compensator: JitterCompensator | None = None,
    ) -> None:
        self._transport = transport
        self._servers = dict(servers)
        self.compensator = compensator or JitterCompensator()

    def scan(
        self, sessions: Iterable[PlayoutSession], now: float
    ) -> list[Violation]:
        """One monitoring sweep: which active sessions are being hurt?"""
        by_holder = {
            session.holder: session
            for session in sessions
            if session.result.commitment is not None
        }
        violations: list[Violation] = []
        seen: set[tuple[str, str]] = set()

        # Network pass: link reservations carry the *flow id* as holder,
        # and flows do not know their session.  Sessions reference their
        # commitments' flows directly, so invert that mapping.
        flow_to_session: dict[str, PlayoutSession] = {}
        for session in by_holder.values():
            bundle = session.result.commitment.bundle  # type: ignore[union-attr]
            for flow in bundle.flows:
                flow_to_session[flow.flow_id] = session
        for flow in self._transport.violated_flows():
            session = flow_to_session.get(flow.flow_id)
            if session is None:
                continue
            worst_link = max(
                flow.route.links, key=lambda l: l.congestion, default=None
            )
            component = worst_link.link_id if worst_link is not None else "?"
            key = (session.session_id, f"net:{component}")
            if key not in seen:
                seen.add(key)
                violations.append(
                    Violation(
                        session_id=session.session_id,
                        source="network",
                        component=component,
                        detected_at=now,
                    )
                )

        # Server pass: stream reservations carry the session holder tag.
        for server in self._servers.values():
            for holder in server.violated_holders():
                session = by_holder.get(holder)
                if session is None:
                    continue
                key = (session.session_id, f"srv:{server.server_id}")
                if key not in seen:
                    seen.add(key)
                    violations.append(
                        Violation(
                            session_id=session.session_id,
                            source="server",
                            component=server.server_id,
                            detected_at=now,
                        )
                    )
        return violations
