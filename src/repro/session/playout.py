"""Playout sessions (paper §4 step 6 onward).

A :class:`PlayoutSession` is one confirmed document delivery: it tracks
the presentation position, survives adaptation transitions (stop at the
current position, restart on the alternate configuration — the paper's
transition procedure), and accumulates the quality-of-experience record
the E9 experiment reports (interruptions, stall time, downgrades,
completion).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..client.machine import ClientMachine
from ..core.adaptation import AdaptationManager, AdaptationOutcome
from ..core.negotiation import NegotiationResult
from ..core.profiles import UserProfile
from ..util.errors import SessionError
from ..util.validation import check_non_negative

__all__ = ["SessionState", "SessionRecord", "PlayoutSession"]


class SessionState(enum.Enum):
    PLAYING = "playing"
    INTERRUPTED = "interrupted"  # mid-transition
    DEGRADED = "degraded"        # violation present, no alternate found
    COMPLETED = "completed"
    ABORTED = "aborted"


@dataclass(slots=True)
class SessionRecord:
    """Quality-of-experience ledger of one session."""

    interruptions: int = 0
    total_interruption_s: float = 0.0
    adaptations: int = 0
    failed_adaptations: int = 0
    degraded_time_s: float = 0.0
    resources_lost: bool = False
    completed: bool = False
    aborted: bool = False


class PlayoutSession:
    """One active document delivery."""

    def __init__(
        self,
        session_id: str,
        result: NegotiationResult,
        profile: UserProfile,
        client: ClientMachine,
        *,
        started_at: float,
        duration_s: float,
    ) -> None:
        if result.commitment is None or result.chosen is None:
            raise SessionError(
                "a playout session needs a committed negotiation result"
            )
        self.session_id = session_id
        self.result = result
        self.profile = profile
        self.client = client
        self.duration_s = check_non_negative(duration_s, "duration_s")
        self.state = SessionState.PLAYING
        self.record = SessionRecord()
        self._segment_started_at = float(started_at)
        self._position_at_segment_start = 0.0
        self._degraded_since: "float | None" = None
        self._excluded_offers: set[str] = set()

    # -- position tracking ----------------------------------------------------------

    @property
    def holder(self) -> str:
        """The reservation holder tag of the active commitment."""
        return self.result.commitment.bundle.holder  # type: ignore[union-attr]

    @property
    def current_offer_id(self) -> str:
        return self.result.chosen.offer.offer_id  # type: ignore[union-attr]

    @property
    def excluded_offers(self) -> frozenset[str]:
        """Offers this session already failed on (read-only view)."""
        return frozenset(self._excluded_offers)

    def position_at(self, now: float) -> float:
        """Presentation position: advances while PLAYING or DEGRADED,
        frozen otherwise (the paper's transition stops the
        presentation)."""
        if self.state in (SessionState.PLAYING, SessionState.DEGRADED):
            elapsed = max(now - self._segment_started_at, 0.0)
            return min(
                self._position_at_segment_start + elapsed, self.duration_s
            )
        return self._position_at_segment_start

    def finished_by(self, now: float) -> bool:
        # Tolerate float roundoff in position accumulation: an event
        # scheduled exactly at the end must count as finished.
        return self.position_at(now) >= self.duration_s - 1e-6

    # -- state transitions --------------------------------------------------------------

    def mark_degraded(self, now: float) -> None:
        """A violation is present and no transition has happened yet."""
        if self.state is SessionState.PLAYING:
            self.state = SessionState.DEGRADED
            self._degraded_since = now

    def clear_degraded(self, now: float) -> None:
        """The violation is gone (congestion healed without a switch)."""
        if self.state is SessionState.DEGRADED:
            self._leave_degraded(now)
            self.state = SessionState.PLAYING

    def _leave_degraded(self, now: float) -> None:
        if self._degraded_since is not None:
            self.record.degraded_time_s += now - self._degraded_since
            self._degraded_since = None

    def apply_adaptation(
        self, outcome: AdaptationOutcome, now: float
    ) -> None:
        """Fold one adaptation attempt into the session state."""
        if outcome.switched:
            assert outcome.new_result is not None
            self._leave_degraded(now)
            # Stop at the obtained position, restart after the
            # transition overhead on the alternate configuration.
            self._excluded_offers.add(outcome.old_offer_id)
            self.result = outcome.new_result
            self.record.resources_lost = False
            self.record.adaptations += 1
            self.record.interruptions += 1
            self.record.total_interruption_s += outcome.interruption_s
            self._position_at_segment_start = outcome.resume_position_s
            self._segment_started_at = now + outcome.interruption_s
            self.state = SessionState.PLAYING
        elif outcome.reverted:
            # Break-before-make found no alternate but re-secured the
            # original offer; the violation persists.
            assert outcome.new_result is not None
            self.result = outcome.new_result
            self.record.resources_lost = False
            self.record.failed_adaptations += 1
            self.mark_degraded(now)
        else:
            self.record.failed_adaptations += 1
            if outcome.resources_lost:
                self.record.resources_lost = True
            self.mark_degraded(now)

    def adapt(
        self,
        adaptation: AdaptationManager,
        now: float,
        *,
        candidates: "list | None" = None,
    ) -> AdaptationOutcome:
        """Run the §4 adaptation procedure for this session.

        ``candidates`` restricts the walk to an explicit classified
        subset (the storm controller's batched fast path)."""
        if self.state in (SessionState.COMPLETED, SessionState.ABORTED):
            raise SessionError(
                f"session {self.session_id} is {self.state.value}"
            )
        position = self.position_at(now)
        outcome = adaptation.adapt(
            self.result,
            self.profile,
            self.client,
            position_s=position,
            exclude_offer_ids=frozenset(self._excluded_offers),
            candidates=candidates,
        )
        self.apply_adaptation(outcome, now)
        return outcome

    def complete(self, now: float) -> None:
        self._finalize(now)
        self.state = SessionState.COMPLETED
        self.record.completed = True

    def abort(self, now: float) -> None:
        self._finalize(now)
        self.state = SessionState.ABORTED
        self.record.aborted = True

    def _finalize(self, now: float) -> None:
        if self.state in (SessionState.COMPLETED, SessionState.ABORTED):
            raise SessionError(
                f"session {self.session_id} already {self.state.value}"
            )
        self._leave_degraded(now)
        self._position_at_segment_start = self.position_at(now)
        self._segment_started_at = now
        if self.result.commitment is not None:
            self.result.commitment.release()

    def __repr__(self) -> str:
        return (
            f"PlayoutSession({self.session_id}, {self.state.value}, "
            f"offer={self.current_offer_id})"
        )
