"""Playout sessions: event loop, monitoring, violations, adaptation loop."""

from .datapath import DataPathReport, StreamDemand, simulate_rounds
from .engine import EventLoop, ScheduledEvent
from .monitor import JitterCompensator, QoSMonitor, Violation
from .playout import PlayoutSession, SessionRecord, SessionState
from .runtime import SessionRuntime
from .supervisor import SessionSupervisor, SupervisedEntry, SupervisorStats
from .violations import CongestionEpisode, RandomInjector, ScriptedInjector

__all__ = [
    "DataPathReport",
    "StreamDemand",
    "simulate_rounds",
    "EventLoop",
    "ScheduledEvent",
    "JitterCompensator",
    "QoSMonitor",
    "Violation",
    "PlayoutSession",
    "SessionRecord",
    "SessionState",
    "SessionRuntime",
    "SessionSupervisor",
    "SupervisedEntry",
    "SupervisorStats",
    "CongestionEpisode",
    "RandomInjector",
    "ScriptedInjector",
]
