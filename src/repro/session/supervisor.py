"""Session supervision: heartbeats over active playouts.

The paper's active phase assumes every playing session has a live QoS
manager watching it.  After a manager crash that is no longer true: the
:class:`~repro.journal.recovery.RecoveryManager` finds CONFIRMED
sessions in the journal whose in-memory state is gone.  The supervisor
is where those sessions are handed: it heartbeats every watched
playout, detects the ones that stopped making progress (stalled) or
lost their reserved resources underneath (dead), and drives
release-or-adapt so a dead session never pins capacity.

Two kinds of watch:

* **live sessions** (:meth:`watch`) — a :class:`PlayoutSession` owned
  by a :class:`~repro.session.runtime.SessionRuntime`.  Progress is the
  heartbeat: a session whose playout position advances is alive; one
  whose reserved streams/flows vanished (a reaped lease, a wiped server
  ledger) is dead and is adapted — or aborted, releasing whatever is
  left — on the next sweep.
* **adopted holders** (:meth:`adopt`) — sessions recovered from the
  journal after a crash, known only by holder id.  The reconnecting
  client must call :meth:`heartbeat` within ``heartbeat_timeout_s``;
  silence means the user is gone and the supervisor invokes the release
  closure the recovery manager attached (journaled as a
  ``supervisor-timeout`` release).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..util.clock import ManualClock
from ..util.errors import AdaptationError, SessionError
from ..util.validation import check_positive
from .playout import PlayoutSession, SessionState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import Telemetry
    from .engine import EventLoop
    from .runtime import SessionRuntime

__all__ = ["SupervisedEntry", "SupervisorStats", "SessionSupervisor"]

_TERMINAL_STATES = (SessionState.COMPLETED, SessionState.ABORTED)


@dataclass(slots=True)
class SupervisedEntry:
    """One watched holder."""

    holder: str
    last_heartbeat: float
    session: "PlayoutSession | None" = None
    release: "Callable[[float], None] | None" = None
    last_position_s: float = -1.0
    adopted: bool = False


@dataclass(slots=True)
class SupervisorStats:
    """What the supervisor observed and did."""

    heartbeats: int = 0
    adopted: int = 0
    stalls_detected: int = 0
    dead_sessions: int = 0
    adaptations_driven: int = 0
    sessions_released: int = 0

    def as_dict(self) -> "dict[str, int]":
        return {
            "heartbeats": self.heartbeats,
            "adopted": self.adopted,
            "stalls_detected": self.stalls_detected,
            "dead_sessions": self.dead_sessions,
            "adaptations_driven": self.adaptations_driven,
            "sessions_released": self.sessions_released,
        }


class SessionSupervisor:
    """Heartbeat watch over playouts and crash-recovered holders."""

    def __init__(
        self,
        *,
        clock: ManualClock,
        runtime: "SessionRuntime | None" = None,
        heartbeat_timeout_s: float = 30.0,
        period_s: float = 5.0,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self._clock = clock
        self.runtime = runtime
        if telemetry is None:
            from ..telemetry import Telemetry as _Telemetry

            telemetry = _Telemetry.disabled()
        self.telemetry = telemetry
        self.heartbeat_timeout_s = check_positive(
            float(heartbeat_timeout_s), "heartbeat_timeout_s"
        )
        self.period_s = check_positive(float(period_s), "period_s")
        self.stats = SupervisorStats()
        self._entries: "dict[str, SupervisedEntry]" = {}
        self._sweeping = False

    # -- registration --------------------------------------------------------------

    def watch(
        self, session: PlayoutSession, *, now: "float | None" = None
    ) -> SupervisedEntry:
        """Put a live playout session under supervision."""
        now = self._clock.now() if now is None else now
        entry = SupervisedEntry(
            holder=session.holder,
            last_heartbeat=now,
            session=session,
            last_position_s=session.position_at(now),
        )
        self._entries[entry.holder] = entry
        return entry

    def adopt(
        self,
        holder: str,
        release: "Callable[[float], None] | None" = None,
        *,
        now: "float | None" = None,
    ) -> SupervisedEntry:
        """Take over a crash-recovered confirmed session by holder id.

        ``release`` is invoked with the current time if no heartbeat
        arrives within ``heartbeat_timeout_s`` — the recovery manager
        passes a closure that journals the release and frees the
        holder's journaled resources.
        """
        if not holder:
            raise SessionError("cannot adopt an empty holder id")
        now = self._clock.now() if now is None else now
        entry = SupervisedEntry(
            holder=holder, last_heartbeat=now, release=release, adopted=True
        )
        self._entries[holder] = entry
        self.stats.adopted += 1
        return entry

    def heartbeat(self, holder: str, now: "float | None" = None) -> bool:
        """A liveness signal for ``holder``; False if it is not watched
        (already released, or never adopted)."""
        entry = self._entries.get(holder)
        if entry is None:
            return False
        entry.last_heartbeat = self._clock.now() if now is None else now
        self.stats.heartbeats += 1
        self._beat(holder, entry.last_heartbeat, "client")
        return True

    def _beat(self, holder: str, now: float, kind: str) -> None:
        telemetry = self.telemetry
        telemetry.count("supervisor.heartbeats")
        if telemetry.enabled:
            telemetry.tracer.emit(
                "playout.heartbeat",
                start_s=now,
                end_s=now,
                attributes={"holder": holder, "kind": kind},
            )

    def forget(self, holder: str) -> None:
        self._entries.pop(holder, None)

    def watched_holders(self) -> "tuple[str, ...]":
        return tuple(self._entries)

    @property
    def watch_count(self) -> int:
        return len(self._entries)

    # -- the sweep -----------------------------------------------------------------

    def arm(self, loop: "EventLoop") -> None:
        """Run :meth:`check` every ``period_s`` while anything is
        watched (auto-stops like the runtime's monitor sweep)."""
        if self._sweeping:
            return
        self._sweeping = True

        def sweep() -> None:
            self.check(self._clock.now())
            if self._entries:
                loop.after(self.period_s, sweep, label="supervisor")
            else:
                self._sweeping = False

        loop.after(self.period_s, sweep, label="supervisor")

    def check(self, now: "float | None" = None) -> "list[str]":
        """One supervision pass; returns the holders acted on."""
        now = self._clock.now() if now is None else now
        acted: "list[str]" = []
        for entry in list(self._entries.values()):
            if entry.session is not None:
                if self._check_live(entry, now):
                    acted.append(entry.holder)
            elif now - entry.last_heartbeat > self.heartbeat_timeout_s:
                # Adopted holder went silent: the user never came back
                # after the crash, so return the resources.
                self.stats.stalls_detected += 1
                if entry.release is not None:
                    entry.release(now)
                self.stats.sessions_released += 1
                self.telemetry.count("supervisor.releases")
                self._entries.pop(entry.holder, None)
                acted.append(entry.holder)
        return acted

    def _check_live(self, entry: SupervisedEntry, now: float) -> bool:
        session = entry.session
        assert session is not None
        if session.state in _TERMINAL_STATES:
            self._entries.pop(entry.holder, None)
            return False
        position = session.position_at(now)
        if position > entry.last_position_s + 1e-12:
            entry.last_position_s = position
            entry.last_heartbeat = now
            self.stats.heartbeats += 1
            self._beat(entry.holder, now, "progress")
        stalled = now - entry.last_heartbeat > self.heartbeat_timeout_s
        dead = self._resources_gone(session)
        if not stalled and not dead:
            return False
        if dead:
            self.stats.dead_sessions += 1
        else:
            self.stats.stalls_detected += 1
        return self._release_or_adapt(entry, session, now)

    def _resources_gone(self, session: PlayoutSession) -> bool:
        """Did the session's reservation vanish underneath it (reaped
        lease, wiped server ledger)?  Only checkable with a runtime."""
        if self.runtime is None:
            return False
        commitment = session.result.commitment
        if commitment is None:
            return False
        committer = self.runtime.manager.committer
        bundle = commitment.bundle
        servers = committer.servers
        streams_alive = any(
            servers[s.server_id].has_stream(s.stream_id)
            for s in bundle.streams
            if s.server_id in servers
        )
        flows_alive = any(
            committer.transport.has_flow(f.flow_id) for f in bundle.flows
        )
        return bool(bundle.streams or bundle.flows) and not (
            streams_alive or flows_alive
        )

    def _release_or_adapt(
        self, entry: SupervisedEntry, session: PlayoutSession, now: float
    ) -> bool:
        """Adapt the session onto fresh resources if possible; abort
        (and release) otherwise."""
        runtime = self.runtime
        if runtime is not None and runtime.adaptation_enabled:
            try:
                session.adapt(runtime.adaptation, now)
            except AdaptationError:
                pass  # fall through to release
            else:
                if not session.record.resources_lost:
                    self.stats.adaptations_driven += 1
                    entry.last_heartbeat = now
                    entry.last_position_s = session.position_at(now)
                    return True
        if runtime is not None:
            runtime.abort_session(session)
        else:
            session.abort(now)
        self.stats.sessions_released += 1
        self.telemetry.count("supervisor.releases")
        self._entries.pop(entry.holder, None)
        return True

    def __repr__(self) -> str:
        return (
            f"SessionSupervisor({self.watch_count} watched, "
            f"timeout {self.heartbeat_timeout_s:g}s)"
        )
