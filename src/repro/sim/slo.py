"""The ``repro slo`` / ``repro profile`` run driver.

Replays one load cell of the 3-server reference deployment with the
full observability stack armed — flight recorder sampling the registry,
span collection for the critical-path profiler — then grades the run
against the shipped SLO set (:func:`repro.telemetry.slo.default_slos`).
Two scenarios:

* ``nominal`` — the seeded load cell as-is; it must pass every SLO
  (the CI gate's green path);
* ``brownout`` — the same cell with a mid-run ``SERVER_BROWNOUT``
  window across every server; capacity loss drives the burn rate
  through the page threshold, and ``repro slo`` exits nonzero.

Everything is a pure function of the seeds, so the time-series JSONL,
the SLO report and the flamegraph are byte-identical across same-seed
invocations — CI diffs them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..faults.plan import FaultKind, FaultSpec
from ..telemetry.profiler import (
    CriticalPath,
    ProfileReport,
    extract_critical_paths,
    profile_spans,
)
from ..telemetry.slo import SloReport, SloSpec, evaluate_slos
from ..telemetry.timeseries import FlightRecorder
from ..util.errors import SimulationError
from ..util.validation import check_fraction, check_positive
from .load import ArrivalSpec, CellRun, LoadSpec, run_load_cell_instrumented

__all__ = [
    "SLO_SCENARIOS",
    "SloRunSpec",
    "SloRunReport",
    "run_slo",
]

SLO_SCENARIOS = ("nominal", "brownout")


@dataclass(frozen=True, slots=True)
class SloRunSpec:
    """One reproducible SLO-gate run."""

    scenario: str = "nominal"
    multiplier: float = 1.0
    rate_per_s: float = 1.0
    horizon_s: float = 120.0
    seed: int = 1
    scheduler_seed: int = 0
    telemetry_seed: int = 7
    interval_s: float = 1.0
    severity: float = 0.85
    brownout_start_s: float = 30.0
    brownout_duration_s: float = 60.0

    def __post_init__(self) -> None:
        if self.scenario not in SLO_SCENARIOS:
            raise SimulationError(
                f"scenario must be one of {SLO_SCENARIOS}, "
                f"got {self.scenario!r}"
            )
        check_positive(self.multiplier, "multiplier")
        check_positive(self.interval_s, "interval_s")
        check_fraction(self.severity, "severity")
        if self.scenario == "brownout" and self.severity == 0.0:
            raise SimulationError("severity 0 is not a brownout")

    def load_spec(self) -> LoadSpec:
        spec = LoadSpec(
            arrival=ArrivalSpec(
                kind="poisson",
                rate_per_s=self.rate_per_s,
                horizon_s=self.horizon_s,
            ),
            seed=self.seed,
            scheduler_seed=self.scheduler_seed,
            telemetry_seed=self.telemetry_seed,
            multipliers=(self.multiplier,),
        )
        if self.scenario != "brownout":
            return spec
        deployment = spec.deployment()
        faults = tuple(
            FaultSpec(
                kind=FaultKind.SERVER_BROWNOUT,
                target_id=f"server-{chr(ord('a') + index)}",
                start_s=self.brownout_start_s,
                duration_s=self.brownout_duration_s,
                value=self.severity,
            )
            for index in range(deployment.server_count)
        )
        return replace(spec, faults=faults)


@dataclass(slots=True)
class SloRunReport:
    """One graded run: the cell, its scorecard, its critical path."""

    spec: SloRunSpec
    run: CellRun
    slo: SloReport
    profile: ProfileReport
    paths: "list[CriticalPath]" = field(default_factory=list)

    @property
    def recorder(self) -> "FlightRecorder | None":
        return self.run.recorder

    @property
    def breached(self) -> bool:
        return self.slo.breached

    def as_dict(self) -> "dict[str, object]":
        return {
            "schema": "repro.slo-run/v1",
            "scenario": self.spec.scenario,
            "multiplier": self.spec.multiplier,
            "seed": self.spec.seed,
            "scheduler_seed": self.spec.scheduler_seed,
            "telemetry_seed": self.spec.telemetry_seed,
            "cell": self.run.report.as_dict(),
            "slo": self.slo.as_dict(),
            "profile": self.profile.as_dict(),
            "breached": self.breached,
        }


def run_slo(
    spec: SloRunSpec,
    *,
    slos: "tuple[SloSpec, ...] | None" = None,
) -> SloRunReport:
    """Replay the scenario's load cell and grade it."""
    run = run_load_cell_instrumented(
        spec.load_spec(),
        spec.multiplier,
        interval_s=spec.interval_s,
        collect_spans=True,
    )
    if run.recorder is None:
        raise SimulationError(
            "SLO runs need telemetry; set telemetry_seed"
        )
    report = evaluate_slos(run.recorder, slos)
    paths = extract_critical_paths(run.spans)
    return SloRunReport(
        spec=spec,
        run=run,
        slo=report,
        profile=profile_spans(run.spans),
        paths=paths,
    )
