"""Baseline negotiators the paper's approach is compared against.

§1: existing systems use QoS negotiation "in a rather static manner ...
restricted to the evaluation of the capacity of certain system
components a priori known"; §5 argues classification by cost alone or
QoS alone is "neither optimal nor suitable".  The E7/E11 experiments
need those alternatives as executable baselines:

* :class:`StaticNegotiator` — the pre-paper behaviour: a single, a
  priori fixed configuration (the best-quality offer); if its resources
  are unavailable the request blocks.  No alternatives considered.
* :class:`FirstFitNegotiator` — no classification at all: walk offers
  in enumeration order, take the first that commits.
* :class:`CostOnlyNegotiator` — classify by cost alone (cheapest first).
* :class:`QoSOnlyNegotiator` — classify by QoS importance alone
  (best quality first), ignoring cost.
* :class:`SmartNegotiator` — the paper's procedure (thin wrapper for a
  uniform interface).

All reuse the same steps 1–2 and resource-commitment machinery as the
real manager, so measured differences come purely from offer selection.
"""

from __future__ import annotations

from typing import Protocol

from ..client.machine import ClientMachine
from ..core.classification import (
    ClassificationPolicy,
    ClassifiedOffer,
    classify_space,
)
from ..core.enumeration import build_offer_space
from ..core.negotiation import NegotiationResult, QoSManager
from ..core.profiles import UserProfile
from ..core.status import NegotiationStatus
from ..documents.document import Document

__all__ = [
    "Negotiator",
    "SmartNegotiator",
    "StaticNegotiator",
    "FirstFitNegotiator",
    "CostOnlyNegotiator",
    "QoSOnlyNegotiator",
    "RandomNegotiator",
    "ALL_BASELINES",
]


class Negotiator(Protocol):
    """Uniform interface for the E-series comparisons."""

    name: str

    def negotiate(
        self,
        document: "Document | str",
        profile: UserProfile,
        client: ClientMachine,
    ) -> NegotiationResult: ...


class SmartNegotiator:
    """The paper's procedure, unchanged."""

    name = "smart"

    def __init__(self, manager: QoSManager) -> None:
        self.manager = manager

    def negotiate(self, document, profile, client) -> NegotiationResult:
        return self.manager.negotiate(document, profile, client)


class _ReorderingNegotiator:
    """Shared scaffolding: run steps 1–2 and commitment like the real
    manager, but impose a different candidate order (or truncation)."""

    name = "reordering"

    def __init__(self, manager: QoSManager) -> None:
        self.manager = manager

    def _order(
        self, classified: "list[ClassifiedOffer]"
    ) -> "list[ClassifiedOffer]":
        raise NotImplementedError

    def negotiate(self, document, profile, client) -> NegotiationResult:
        manager = self.manager
        if isinstance(document, str):
            document = manager.database.get_document(document)
        violations, local_best = manager._static_local_negotiation(
            document, profile, client
        )
        if violations:
            return NegotiationResult(
                status=NegotiationStatus.FAILED_WITH_LOCAL_OFFER,
                user_offer=local_best,
                local_violations=violations,
            )
        space = build_offer_space(
            document, client, manager.cost_model,
            mapper=manager.mapper, guarantee=manager.guarantee,
        )
        if space.is_empty:
            return NegotiationResult(
                status=NegotiationStatus.FAILED_WITHOUT_OFFER,
                offer_space=space,
            )
        classified = classify_space(
            space, profile, manager._importance_of(profile),
            policy=ClassificationPolicy.SNS_PRIMARY,
        )
        ordered = self._order(classified)
        return self._commit_in_order(ordered, space, profile, client)

    def _commit_in_order(
        self, ordered, space, profile, client
    ) -> NegotiationResult:
        """Single-pass commitment in exactly the given order (these
        baselines have no satisfying-first refinement)."""
        from ..core.commitment import Commitment
        from ..core.offers import derive_user_offer

        manager = self.manager
        holder = f"{self.name}-{id(self)}-{manager.clock.now():g}"
        attempts = 0
        for candidate in ordered:
            attempts += 1
            bundle = manager.committer.try_commit(
                candidate.offer, space, client.access_point,
                guarantee=manager.guarantee, holder=holder,
            )
            if bundle is None:
                continue
            commitment = Commitment(
                bundle, manager.committer,
                reserved_at=manager.clock.now(),
                choice_period_s=profile.choice_period_s,
            )
            status = (
                NegotiationStatus.SUCCEEDED
                if candidate.satisfies_user
                else NegotiationStatus.FAILED_WITH_OFFER
            )
            return NegotiationResult(
                status=status,
                user_offer=derive_user_offer(candidate.offer, profile.desired.time),
                chosen=candidate,
                commitment=commitment,
                classified=list(ordered),
                offer_space=space,
                attempts=attempts,
            )
        return NegotiationResult(
            status=NegotiationStatus.FAILED_TRY_LATER,
            classified=list(ordered),
            offer_space=space,
            attempts=attempts,
        )


class StaticNegotiator(_ReorderingNegotiator):
    """A priori fixed configuration: only the single best-quality offer
    is ever attempted (quality = QoS importance, ties by enumeration)."""

    name = "static"

    def _order(self, classified):
        if not classified:
            return []
        # Quality alone, not OIF: the a-priori "known good" configuration.
        return [max(classified, key=_quality_key(self.manager))]


class FirstFitNegotiator(_ReorderingNegotiator):
    """No classification: enumeration order, first fit wins."""

    name = "first-fit"

    def _order(self, classified):
        return sorted(
            classified, key=lambda c: int(c.offer.offer_id.split("-")[-1])
        )


class CostOnlyNegotiator(_ReorderingNegotiator):
    """Cheapest offer first (§5: "the cheapest system offer is the best
    system offer" — and why that is not enough)."""

    name = "cost-only"

    def _order(self, classified):
        return sorted(classified, key=lambda c: c.offer.cost.cents)


class QoSOnlyNegotiator(_ReorderingNegotiator):
    """Best QoS first, cost ignored (the §5 weighted-average-only
    classification)."""

    name = "qos-only"

    def _order(self, classified):
        key = _quality_key(self.manager)
        return sorted(classified, key=key, reverse=True)


class RandomNegotiator(_ReorderingNegotiator):
    """Uniformly random candidate order — the no-information floor.

    Seeded per instance so runs are reproducible; every negotiation
    draws a fresh permutation.
    """

    name = "random"

    def __init__(self, manager: QoSManager, seed: int = 0) -> None:
        super().__init__(manager)
        from ..util.rng import make_rng

        self._rng = make_rng(seed)

    def _order(self, classified):
        order = list(classified)
        indices = self._rng.permutation(len(order))
        return [order[int(i)] for i in indices]


def _quality_key(manager: QoSManager):
    """Offer quality = summed QoS importance under default importance
    weights (independent of the requesting user's cost sensitivity)."""
    from ..core.importance import default_importance

    importance = default_importance().with_cost_per_dollar(0.0)

    def key(c: ClassifiedOffer) -> float:
        return importance.overall_importance(list(c.offer.qos_points()), c.offer.cost)

    return key


def ALL_BASELINES(manager: QoSManager) -> "list[Negotiator]":
    """Every negotiator, paper's first."""
    return [
        SmartNegotiator(manager),
        StaticNegotiator(manager),
        FirstFitNegotiator(manager),
        CostOnlyNegotiator(manager),
        QoSOnlyNegotiator(manager),
        RandomNegotiator(manager),
    ]
