"""Experiment metrics: blocking, satisfaction, utilization, revenue.

These are the observables the paper argues about qualitatively
("increases the availability of the system and the user satisfaction",
"the cost will limit the greediness of the users", §7/§8) turned into
measurable quantities for the E-series benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.status import NegotiationStatus
from ..session.playout import PlayoutSession
from ..util.errors import ValidationError
from ..util.units import Money

__all__ = ["StatusCounts", "UtilizationIntegral", "RunStats"]


@dataclass(slots=True)
class StatusCounts:
    """Tally of negotiation outcomes."""

    counts: dict = field(default_factory=dict)

    def add(self, status: NegotiationStatus) -> None:
        self.counts[status] = self.counts.get(status, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def of(self, status: NegotiationStatus) -> int:
        return self.counts.get(status, 0)

    @property
    def succeeded(self) -> int:
        return self.of(NegotiationStatus.SUCCEEDED)

    @property
    def served(self) -> int:
        """Requests that got *some* stream (success or degraded offer)."""
        return self.succeeded + self.of(NegotiationStatus.FAILED_WITH_OFFER)

    @property
    def blocked(self) -> int:
        """Requests that got nothing."""
        return self.total - self.served

    @property
    def blocking_probability(self) -> float:
        return self.blocked / self.total if self.total else 0.0

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.total if self.total else 0.0

    def as_dict(self) -> dict:
        return {status.value: count for status, count in self.counts.items()}


@dataclass(slots=True)
class UtilizationIntegral:
    """Time integral of a reserved-capacity signal.

    Feed it (time, value) samples whenever the signal changes; the mean
    over the window is integral / elapsed.
    """

    last_t: float = 0.0
    last_value: float = 0.0
    integral: float = 0.0
    peak: float = 0.0

    def sample(self, t: float, value: float) -> None:
        if t < self.last_t:
            raise ValidationError(f"time went backwards: {t} < {self.last_t}")
        self.integral += self.last_value * (t - self.last_t)
        self.last_t = t
        self.last_value = value
        self.peak = max(self.peak, value)

    def mean(self, horizon_s: float) -> float:
        if horizon_s <= 0:
            return 0.0
        # Close the integral at the horizon with the last value held.
        closing = self.integral + self.last_value * max(
            horizon_s - self.last_t, 0.0
        )
        return closing / horizon_s


@dataclass(slots=True)
class RunStats:
    """Everything one workload run reports."""

    statuses: StatusCounts = field(default_factory=StatusCounts)
    revenue: Money = field(default_factory=Money.zero)
    offered: int = 0
    attempts_total: int = 0
    network_utilization: UtilizationIntegral = field(
        default_factory=UtilizationIntegral
    )
    server_utilization: UtilizationIntegral = field(
        default_factory=UtilizationIntegral
    )
    completed_sessions: int = 0
    aborted_sessions: int = 0
    adaptations: int = 0
    failed_adaptations: int = 0
    total_interruption_s: float = 0.0
    total_degraded_s: float = 0.0
    sessions_with_loss: int = 0

    def record_session(self, session: PlayoutSession) -> None:
        record = session.record
        if record.completed:
            self.completed_sessions += 1
        if record.aborted:
            self.aborted_sessions += 1
        self.adaptations += record.adaptations
        self.failed_adaptations += record.failed_adaptations
        self.total_interruption_s += record.total_interruption_s
        self.total_degraded_s += record.degraded_time_s
        if record.resources_lost:
            self.sessions_with_loss += 1

    @property
    def blocking_probability(self) -> float:
        return self.statuses.blocking_probability

    @property
    def success_rate(self) -> float:
        return self.statuses.success_rate

    @property
    def mean_attempts(self) -> float:
        total = self.statuses.total
        return self.attempts_total / total if total else 0.0

    def summary_row(self, label: str) -> tuple:
        """One row of the standard comparison table."""
        return (
            label,
            self.statuses.total,
            f"{self.success_rate * 100:.1f}%",
            f"{self.blocking_probability * 100:.1f}%",
            str(self.revenue),
            f"{self.mean_attempts:.1f}",
        )

    @staticmethod
    def summary_headers() -> tuple:
        return ("run", "requests", "success", "blocked", "revenue", "attempts")
