"""Workload execution: drive requests through a negotiator.

The heart of experiments E7–E9/E11/E12: schedule arrivals on the
scenario's event loop, negotiate each request, hold resources for the
playout duration (sessions), and collect :class:`RunStats`.

Confirmation behaviour is configurable: by default every reserved offer
is confirmed instantly; ``confirm_delay_s`` + per-profile
``choicePeriod`` let E12 study confirmation timeouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.negotiation import NegotiationResult
from ..core.status import NegotiationStatus
from ..session.playout import PlayoutSession
from ..session.runtime import SessionRuntime
from ..util.errors import ConfirmationTimeout, SimulationError
from .baselines import Negotiator
from .metrics import RunStats
from .scenario import Scenario
from .workload import Request

__all__ = ["RunConfig", "run_workload"]


@dataclass(frozen=True, slots=True)
class RunConfig:
    """Execution knobs for one workload run."""

    adaptation_enabled: bool = True
    monitor_period_s: float = 1.0
    transition_overhead_s: float = 2.0
    confirm_delay_s: float = 0.0
    user_accepts: "Callable[[NegotiationResult], bool] | None" = None
    session_duration_s: "float | None" = None


def run_workload(
    scenario: Scenario,
    negotiator: Negotiator,
    requests: Sequence[Request],
    *,
    config: RunConfig | None = None,
    injector=None,
) -> RunStats:
    """Run ``requests`` against ``scenario`` using ``negotiator``.

    The scenario is reset (reservations, congestion) before the run, but
    the event loop's clock keeps advancing monotonically across runs on
    the same scenario — build a fresh scenario per run for clean time
    axes.
    """
    config = config or RunConfig()
    scenario.reset_resources()
    stats = RunStats()
    loop = scenario.loop
    runtime = SessionRuntime(
        scenario.manager,
        loop,
        monitor_period_s=config.monitor_period_s,
        transition_overhead_s=config.transition_overhead_s,
        adaptation_enabled=config.adaptation_enabled,
    )
    if injector is not None:
        injector.arm(loop)

    base_t = loop.now  # arrivals are relative to the run start

    def sample_utilization() -> None:
        now = loop.now
        stats.network_utilization.sample(
            now - base_t,
            scenario.transport.topology.total_reserved_bps(),
        )
        stats.server_utilization.sample(
            now - base_t,
            sum(s.aggregate_rate_bps for s in scenario.servers.values()),
        )

    def handle(request: Request) -> None:
        stats.offered += 1
        client = scenario.clients.get(request.client_id)
        if client is None:
            raise SimulationError(f"unknown client {request.client_id!r}")
        result = negotiator.negotiate(
            request.document_id, request.profile, client
        )
        stats.statuses.add(result.status)
        stats.attempts_total += result.attempts
        if not result.status.reserves_resources:
            return
        accepts = (
            config.user_accepts(result)
            if config.user_accepts is not None
            else True
        )
        if not accepts:
            result.commitment.reject(loop.now)  # type: ignore[union-attr]
            return

        def confirm_and_play() -> None:
            try:
                session = runtime.start_session(
                    result,
                    request.profile,
                    client,
                    duration_s=config.session_duration_s,
                )
            except ConfirmationTimeout:
                return  # choicePeriod elapsed; reservation already gone
            stats.revenue = stats.revenue + result.chosen.offer.cost  # type: ignore[union-attr]
            sample_utilization()

        if config.confirm_delay_s > 0:
            loop.after(config.confirm_delay_s, confirm_and_play)
        else:
            confirm_and_play()
        sample_utilization()

    for request in requests:
        loop.at(base_t + request.arrival_s, lambda r=request: handle(r))

    loop.run()
    sample_utilization()
    for session in runtime.finished:
        stats.record_session(session)
    return stats
