"""The storm scenario: a brownout at peak load, survived (or not).

Builds a storm-scale deployment — fast disks, lean two-stream articles,
hundreds of concurrent playouts — then browns out a server at peak
load and lets the :mod:`repro.storm` layer absorb the resulting mass
renegotiation: the :class:`~repro.storm.AdmissionGate` rate-limits and
sheds arriving requests honestly, the
:class:`~repro.storm.StormController` processes the violation flood in
class-batched waves.  With ``backpressure=False`` the same deployment
runs bare — every victim re-walks the full offer list on every monitor
sweep — so :func:`run_storm_comparison` can put a number on what the
thundering herd costs.

Everything is seeded and driven by the deterministic event loop: the
same :class:`StormSpec` produces the same :class:`StormReport` and the
same telemetry byte-for-byte, which is what the CI storm job diffs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..cmfs.disk import DiskModel
from ..core.profile_manager import ProfileManager
from ..core.status import NegotiationStatus
from ..faults.health import CircuitBreaker
from ..faults.injector import FaultInjector
from ..faults.lease import LeaseManager
from ..faults.plan import FaultKind, FaultPlan, FaultSpec
from ..faults.retry import RetryPolicy
from ..journal import HolderOutcome, RecoveryManager, ReservationJournal
from ..session.supervisor import SessionSupervisor
from ..storm import AdmissionGate, GatePolicy, StormController
from ..telemetry.report import reconcile_journal
from ..util.errors import (
    ConfirmationTimeout,
    ManagerCrashError,
    SimulationError,
)
from ..util.tables import render_table
from ..util.validation import check_fraction, check_positive
from .scenario import Scenario, ScenarioSpec, build_scenario

__all__ = [
    "StormSpec",
    "StormReport",
    "StormComparison",
    "run_storm",
    "run_storm_comparison",
]


def _storm_disk() -> DiskModel:
    """A mid-2000s striped array, not the CITR-era single Barracuda —
    the point of the storm scenario is hundreds of concurrent streams,
    so the per-stream overhead must not cap the fleet at ~40."""
    return DiskModel(
        transfer_rate_bps=600_000_000.0,
        avg_seek_s=0.001,
        rotational_latency_s=0.0005,
        round_s=0.5,
    )


@dataclass(frozen=True, slots=True)
class StormSpec:
    """One reproducible renegotiation storm."""

    sessions: int = 200
    late_requests: int = 40       # arrivals during the brownout itself
    servers: int = 3
    clients: int = 24
    documents: int = 8
    document_duration_s: float = 300.0
    ramp_s: float = 60.0          # initial arrivals spread over [0, ramp_s]
    brownout_start_s: float = 90.0
    brownout_duration_s: float = 90.0
    severity: float = 0.4         # fraction of capacity lost
    target_servers: int = 1       # how many servers brown out
    seed: int = 1
    backpressure: bool = True     # False = bare deployment (the baseline)
    gate: GatePolicy = field(default_factory=lambda: GatePolicy(
        rate_per_s=6.0, burst=24, queue_limit=96, retry_limit=4,
    ))
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_threshold: int = 3
    breaker_recovery_s: float = 30.0
    lease_ttl_s: float = 120.0
    monitor_period_s: float = 2.0
    supervisor_timeout_s: float = 60.0
    supervisor_period_s: float = 10.0
    wave_delay_s: float = 0.5
    max_class_candidates: int = 4
    retry_budget: int = 8
    profile_name: str = "balanced"
    extra_faults: "tuple[FaultSpec, ...]" = ()
    telemetry_seed: "int | None" = None   # None = observability off
    telemetry_jsonl: "str | None" = None  # trace JSONL output path
    timeseries_jsonl: "str | None" = None  # flight-recorder output path
    timeseries_interval_s: float = 1.0

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise SimulationError("need at least one session")
        if self.late_requests < 0:
            raise SimulationError("late_requests must be non-negative")
        if self.target_servers < 1 or self.target_servers > self.servers:
            raise SimulationError(
                f"target_servers must be in 1..{self.servers}, "
                f"got {self.target_servers}"
            )
        check_fraction(self.severity, "severity")
        if self.severity == 0.0:
            raise SimulationError("severity 0 is not a storm")
        check_positive(self.ramp_s, "ramp_s")
        check_positive(self.brownout_duration_s, "brownout_duration_s")
        if self.brownout_start_s < 0:
            raise SimulationError("brownout_start_s must be non-negative")

    def deployment(self) -> ScenarioSpec:
        return ScenarioSpec(
            server_count=self.servers,
            client_count=self.clients,
            document_count=self.documents,
            backbone_bps=2_500_000_000.0,
            server_access_bps=700_000_000.0,
            client_access_bps=155_000_000.0,
            document_duration_s=self.document_duration_s,
            max_streams_per_server=256,
            disk=_storm_disk(),
            lean_documents=True,
        )

    def plan(self) -> FaultPlan:
        """The brownout window (per target server) plus any extras."""
        browns = tuple(
            FaultSpec(
                kind=FaultKind.SERVER_BROWNOUT,
                target_id=f"server-{chr(ord('a') + i)}",
                start_s=self.brownout_start_s,
                duration_s=self.brownout_duration_s,
                value=self.severity,
            )
            for i in range(self.target_servers)
        )
        return FaultPlan(faults=browns + self.extra_faults, seed=self.seed)


@dataclass(slots=True)
class StormReport:
    """What one storm run did, end to end."""

    backpressure: bool = True
    statuses: "dict[str, int]" = field(default_factory=dict)
    negotiations: int = 0
    succeeded: int = 0
    degraded_offers: int = 0
    blocked: int = 0              # FAILEDTRYLATER delivered to the caller
    retry_after_hints: "tuple[float, ...]" = ()
    sessions_started: int = 0
    completed_sessions: int = 0
    aborted_sessions: int = 0
    stuck_sessions: int = 0       # still active when the loop drained
    adaptations: int = 0
    failed_adaptations: int = 0
    interruptions: int = 0
    degraded_time_s: float = 0.0
    commit_attempts: int = 0
    retries: int = 0
    breaker_skips: int = 0
    breaker_opens: int = 0
    leases_reaped: int = 0
    gate: "dict[str, int]" = field(default_factory=dict)
    waves: "dict[str, int]" = field(default_factory=dict)
    manager_crashes: int = 0
    recoveries: int = 0
    recovered_active: int = 0
    supervisor_releases: int = 0
    journal_records: int = 0
    journal_balanced: bool = True
    journal_open_holders: int = 0
    metrics_match: "bool | None" = None  # None = telemetry off
    fault_stats: "dict[str, float]" = field(default_factory=dict)
    timeline: "dict[str, object]" = field(default_factory=dict)
    leaked_streams: int = 0
    leaked_flows: int = 0
    leaked_bps: float = 0.0
    duration_s: float = 0.0

    @property
    def clean_teardown(self) -> bool:
        return (
            self.leaked_streams == 0
            and self.leaked_flows == 0
            and self.leaked_bps == 0.0
        )

    @property
    def survived(self) -> bool:
        """The storm-survival contract: every session terminal, no
        reservation leaks, journal closed, no request stuck in the
        gate."""
        return (
            self.stuck_sessions == 0
            and self.clean_teardown
            and self.journal_balanced
            and self.metrics_match is not False
        )

    def as_dict(self) -> "dict[str, object]":
        return {
            "backpressure": self.backpressure,
            "statuses": dict(self.statuses),
            "negotiations": self.negotiations,
            "succeeded": self.succeeded,
            "degraded_offers": self.degraded_offers,
            "blocked": self.blocked,
            "retry_after_hints": list(self.retry_after_hints),
            "sessions_started": self.sessions_started,
            "completed_sessions": self.completed_sessions,
            "aborted_sessions": self.aborted_sessions,
            "stuck_sessions": self.stuck_sessions,
            "adaptations": self.adaptations,
            "failed_adaptations": self.failed_adaptations,
            "interruptions": self.interruptions,
            "degraded_time_s": self.degraded_time_s,
            "commit_attempts": self.commit_attempts,
            "retries": self.retries,
            "breaker_skips": self.breaker_skips,
            "breaker_opens": self.breaker_opens,
            "leases_reaped": self.leases_reaped,
            "gate": dict(self.gate),
            "waves": dict(self.waves),
            "manager_crashes": self.manager_crashes,
            "recoveries": self.recoveries,
            "recovered_active": self.recovered_active,
            "supervisor_releases": self.supervisor_releases,
            "journal_records": self.journal_records,
            "journal_balanced": self.journal_balanced,
            "journal_open_holders": self.journal_open_holders,
            "metrics_match": self.metrics_match,
            "fault_stats": dict(self.fault_stats),
            "timeline": dict(self.timeline),
            "leaked_streams": self.leaked_streams,
            "leaked_flows": self.leaked_flows,
            "leaked_bps": self.leaked_bps,
            "clean_teardown": self.clean_teardown,
            "survived": self.survived,
            "duration_s": self.duration_s,
        }

    def rows(self) -> "list[tuple[str, str]]":
        rows = [
            ("backpressure", "on" if self.backpressure else "OFF"),
            ("negotiations", str(self.negotiations)),
            ("  succeeded", str(self.succeeded)),
            ("  degraded to alternate offer", str(self.degraded_offers)),
            ("  blocked / shed (try later)", str(self.blocked)),
            ("sessions started", str(self.sessions_started)),
            ("  completed", str(self.completed_sessions)),
            ("  aborted", str(self.aborted_sessions)),
            ("  stuck (non-terminal)", str(self.stuck_sessions)),
            ("adaptations", str(self.adaptations)),
            ("failed adaptations", str(self.failed_adaptations)),
            ("interruptions", str(self.interruptions)),
            ("degraded time", f"{self.degraded_time_s:.1f}s"),
            ("commit attempts", str(self.commit_attempts)),
            ("retries (backoff)", str(self.retries)),
            ("offers skipped by breaker", str(self.breaker_skips)),
            ("breaker opens", str(self.breaker_opens)),
            ("leases reaped", str(self.leases_reaped)),
        ]
        for name in (
            "admitted", "queued", "shed", "redispatched",
            "requeued_try_later", "max_queue_depth",
        ):
            if name in self.gate:
                rows.append((f"gate {name}", str(self.gate[name])))
        for name, value in sorted(self.waves.items()):
            rows.append((f"storm {name}", str(value)))
        if self.manager_crashes:
            rows.extend([
                ("manager crashes", str(self.manager_crashes)),
                ("journal replays", str(self.recoveries)),
                ("  sessions preserved", str(self.recovered_active)),
                ("supervisor releases", str(self.supervisor_releases)),
            ])
        rows.append(("journal records", str(self.journal_records)))
        rows.append((
            "journal audit",
            "balanced"
            if self.journal_balanced
            else f"{self.journal_open_holders} open holders",
        ))
        if self.metrics_match is not None:
            rows.append((
                "journal/metrics reconciliation",
                "match" if self.metrics_match else "MISMATCH",
            ))
        for name, value in sorted(self.fault_stats.items()):
            if value:
                rows.append((f"fault: {name}", f"{value:g}"))
        rows.append((
            "leaks at teardown",
            "none"
            if self.clean_teardown
            else f"{self.leaked_streams} streams, {self.leaked_flows} "
                 f"flows, {self.leaked_bps / 1e6:.1f} Mbps",
        ))
        if self.retry_after_hints:
            sample = ", ".join(
                f"{h:g}s" for h in self.retry_after_hints[:6]
            )
            if len(self.retry_after_hints) > 6:
                sample += ", …"
            rows.append((
                "retry-after hints",
                f"{len(self.retry_after_hints)} issued ({sample})",
            ))
        rows.append(("simulated duration", f"{self.duration_s:.0f}s"))
        rows.append(("survived", "yes" if self.survived else "NO"))
        return rows

    def render(self) -> str:
        return render_table(
            ("metric", "value"), self.rows(), title="storm run report"
        )


@dataclass(slots=True)
class StormComparison:
    """Backpressure on vs off, same seed, same deployment."""

    with_backpressure: StormReport
    without_backpressure: StormReport

    @property
    def attempt_ratio(self) -> float:
        """How many more commitment attempts the bare deployment
        spends."""
        base = max(self.with_backpressure.commit_attempts, 1)
        return self.without_backpressure.commit_attempts / base

    @property
    def failed_adaptation_ratio(self) -> float:
        base = max(self.with_backpressure.failed_adaptations, 1)
        return self.without_backpressure.failed_adaptations / base

    @property
    def demonstrates_thrash(self) -> bool:
        """Does the bare run visibly thrash against the gated one?"""
        bare = self.without_backpressure
        gated = self.with_backpressure
        return (
            bare.commit_attempts > gated.commit_attempts
            and bare.failed_adaptations > gated.failed_adaptations
        )

    def as_dict(self) -> "dict[str, object]":
        return {
            "with_backpressure": self.with_backpressure.as_dict(),
            "without_backpressure": self.without_backpressure.as_dict(),
            "attempt_ratio": self.attempt_ratio,
            "failed_adaptation_ratio": self.failed_adaptation_ratio,
            "demonstrates_thrash": self.demonstrates_thrash,
        }

    def render(self) -> str:
        gated, bare = self.with_backpressure, self.without_backpressure
        rows = [
            ("commit attempts", str(gated.commit_attempts),
             str(bare.commit_attempts)),
            ("failed adaptations", str(gated.failed_adaptations),
             str(bare.failed_adaptations)),
            ("adaptations", str(gated.adaptations),
             str(bare.adaptations)),
            ("degraded time", f"{gated.degraded_time_s:.1f}s",
             f"{bare.degraded_time_s:.1f}s"),
            ("sessions completed", str(gated.completed_sessions),
             str(bare.completed_sessions)),
            ("blocked / shed", str(gated.blocked), str(bare.blocked)),
            ("survived", "yes" if gated.survived else "NO",
             "yes" if bare.survived else "NO"),
        ]
        table = render_table(
            ("metric", "backpressure on", "backpressure off"),
            rows,
            title="storm comparison",
        )
        verdict = (
            f"bare deployment spends {self.attempt_ratio:.1f}x the "
            f"commitment attempts and {self.failed_adaptation_ratio:.1f}x "
            "the failed adaptations"
        )
        return f"{table}\n{verdict}"


def run_storm(spec: StormSpec) -> "tuple[StormReport, Scenario]":
    """Execute one storm run; returns the report and the spent
    scenario."""
    health = CircuitBreaker(
        failure_threshold=spec.breaker_threshold,
        recovery_time_s=spec.breaker_recovery_s,
    )
    journal = ReservationJournal()
    scenario = build_scenario(
        spec.deployment(),
        retry_policy=spec.retry,
        health=health,
        lease_ttl_s=spec.lease_ttl_s,
        retry_seed=spec.seed,
        journal=journal,
        telemetry_seed=spec.telemetry_seed,
    )
    # A browned-out machine must not trivially re-admit the very load
    # it just shed — admission respects the shrunken round budget.
    for server in scenario.servers.values():
        server.degradation_limits_admission = True
    exporter = None
    if spec.telemetry_jsonl is not None and scenario.telemetry is not None:
        from ..telemetry import JsonlSpanExporter

        exporter = JsonlSpanExporter(spec.telemetry_jsonl)
        scenario.telemetry.tracer.add_exporter(exporter)
    recorder = None
    if scenario.telemetry is not None and scenario.telemetry.enabled:
        from ..telemetry.timeseries import FlightRecorder

        recorder = FlightRecorder(
            scenario.telemetry, interval_s=spec.timeseries_interval_s
        )
        # Bound the sampler at the storm's active phase (ramp + the
        # brownout window + a recovery margin); the loop then drains
        # and finish() captures the settled end state.
        recorder.arm(
            scenario.loop,
            until=(
                max(spec.ramp_s, spec.brownout_start_s)
                + spec.brownout_duration_s
                + spec.supervisor_timeout_s
            ),
        )
    injector = FaultInjector(
        spec.plan(),
        clock=scenario.clock,
        attempt_timeout_s=spec.retry.attempt_timeout_s,
    )
    injector.install(scenario.servers, scenario.transport)
    injector.install_journal(journal)
    injector.arm(scenario.loop)
    runtime = scenario.runtime(monitor_period_s=spec.monitor_period_s)
    supervisor = SessionSupervisor(
        clock=scenario.clock,
        runtime=runtime,
        heartbeat_timeout_s=spec.supervisor_timeout_s,
        period_s=spec.supervisor_period_s,
        telemetry=scenario.telemetry,
    )
    gate = AdmissionGate(
        scenario.loop,
        policy=spec.gate,
        seed=spec.seed,
        telemetry=scenario.telemetry,
        enabled=spec.backpressure,
    )
    controller: "StormController | None" = None
    if spec.backpressure:
        controller = StormController(
            runtime,
            wave_delay_s=spec.wave_delay_s,
            max_class_candidates=spec.max_class_candidates,
            retry_budget=spec.retry_budget,
            seed=spec.seed,
            telemetry=scenario.telemetry,
        )

    profiles = ProfileManager()
    if spec.profile_name not in profiles:
        raise SimulationError(
            f"unknown profile {spec.profile_name!r}; have {profiles.names()}"
        )
    profile = profiles.get(spec.profile_name)
    documents = scenario.document_ids()
    clients = list(scenario.clients.values())
    report = StormReport(backpressure=spec.backpressure)
    hints: "list[float]" = []

    def deliver(result, client) -> None:
        report.negotiations += 1
        report.statuses[str(result.status)] = (
            report.statuses.get(str(result.status), 0) + 1
        )
        if result.status is NegotiationStatus.SUCCEEDED:
            report.succeeded += 1
        elif result.status is NegotiationStatus.FAILED_WITH_OFFER:
            report.degraded_offers += 1
        elif result.status is NegotiationStatus.FAILED_TRY_LATER:
            report.blocked += 1
            if result.retry_after_s is not None:
                hints.append(result.retry_after_s)
        if not result.status.reserves_resources:
            return
        try:
            runtime.start_session(result, profile, client)
            report.sessions_started += 1
        except ConfirmationTimeout:
            pass  # choicePeriod elapsed; reservation already returned

    def submit(index: int) -> None:
        client = clients[index % len(clients)]
        document = documents[index % len(documents)]
        gate.submit(
            f"req-{index + 1}",
            lambda: scenario.manager.negotiate(document, profile, client),
            lambda result, c=client: deliver(result, c),
        )

    spacing = spec.ramp_s / spec.sessions
    for index in range(spec.sessions):
        scenario.loop.at(
            index * spacing,
            lambda i=index: submit(i),
            label=f"storm-request-{index + 1}",
        )
    # Late joiners arrive while the brownout is biting: these are the
    # requests the gate queues or sheds (with honest hints).
    if spec.late_requests:
        late_spacing = (spec.brownout_duration_s / 2) / spec.late_requests
        for j in range(spec.late_requests):
            index = spec.sessions + j
            scenario.loop.at(
                spec.brownout_start_s + (j + 1) * late_spacing,
                lambda i=index: submit(i),
                label=f"storm-late-request-{j + 1}",
            )

    committer = scenario.manager.committer

    def recover() -> None:
        """Manager restart mid-storm: volatile state is gone, the
        journal + ledgers survive (same discipline as the chaos
        runner)."""
        report.manager_crashes += 1
        if committer.leases is not None:
            committer.leases = LeaseManager(ttl_s=spec.lease_ttl_s)
        recovery = RecoveryManager(
            journal,
            scenario.servers,
            scenario.transport,
            clock=scenario.clock,
            telemetry=scenario.telemetry,
        )
        journal.crash_hook = None
        try:
            rec_report = recovery.replay(
                loop=scenario.loop, supervisor=supervisor
            )
        finally:
            injector.install_journal(journal)
        report.recoveries += 1
        report.recovered_active += rec_report.active_sessions
        for session in list(runtime.sessions.values()):
            outcome = rec_report.outcomes.get(session.holder)
            if outcome == HolderOutcome.ACTIVE:
                supervisor.forget(session.holder)
                supervisor.watch(session)
            else:
                runtime.abort_session(session)
        supervisor.arm(scenario.loop)

    while True:
        try:
            scenario.loop.run()
            break
        except ManagerCrashError:
            recover()

    committer.reap_expired(scenario.clock.now())

    for session in runtime.finished:
        report.adaptations += session.record.adaptations
        report.failed_adaptations += session.record.failed_adaptations
        report.interruptions += session.record.interruptions
        report.degraded_time_s += session.record.degraded_time_s
        if session.record.completed:
            report.completed_sessions += 1
        if session.record.aborted:
            report.aborted_sessions += 1
    report.stuck_sessions = runtime.active_count

    report.retry_after_hints = tuple(hints)
    report.supervisor_releases = supervisor.stats.sessions_released
    report.commit_attempts = committer.stats.attempts
    report.retries = committer.stats.retries
    report.breaker_skips = committer.stats.breaker_skips
    report.breaker_opens = health.opens
    report.leases_reaped = committer.stats.leases_reaped
    report.gate = gate.stats.as_dict()
    if controller is not None:
        report.waves = controller.stats.as_dict()
    report.fault_stats = injector.stats.as_dict()
    report.journal_records = len(journal)
    audit = reconcile_journal(
        journal,
        scenario.telemetry.metrics if scenario.telemetry is not None else None,
    )
    report.journal_balanced = bool(audit["balanced"])
    report.journal_open_holders = len(audit["open_holders"])
    report.metrics_match = (
        bool(audit["metrics_match"]) if "metrics_match" in audit else None
    )
    report.leaked_streams = sum(
        server.stream_count for server in scenario.servers.values()
    )
    report.leaked_flows = scenario.transport.flow_count
    report.leaked_bps = scenario.topology.total_reserved_bps()
    report.duration_s = scenario.clock.now()
    if recorder is not None:
        recorder.finish(scenario.clock.now())
        report.timeline = recorder.as_dict()
        if spec.timeseries_jsonl is not None:
            recorder.write_jsonl(spec.timeseries_jsonl)
    if exporter is not None:
        exporter.close()
    return report, scenario


def run_storm_comparison(spec: StormSpec) -> StormComparison:
    """Run the same storm twice — backpressure on, then off — from the
    same seed, and report both (the trace JSONL path, if any, belongs
    to the gated run)."""
    gated, _ = run_storm(replace(spec, backpressure=True))
    bare, _ = run_storm(
        replace(spec, backpressure=False, telemetry_jsonl=None)
    )
    return StormComparison(
        with_backpressure=gated, without_backpressure=bare
    )
