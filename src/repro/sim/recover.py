"""Crash/recovery scenario: kill the manager mid-negotiation, replay.

The demo behind ``python -m repro recover``: a deployment negotiates a
stream of requests while a :class:`~repro.faults.plan.FaultKind.MANAGER_CRASH`
fault kills the QoS manager at a chosen crash opportunity (a journal
append or an admission call — the realistic death points of steps 5–6).
Phase two simulates the restart: the write-ahead journal — reopened
from disk when file-backed, exercising the torn-tail reader — is
replayed by a :class:`~repro.journal.RecoveryManager` against the
surviving server/transport ledgers, and the report proves the
reconciliation: orphans compensated, pending ``choicePeriod`` deadlines
re-armed, confirmed sessions preserved, zero leaked capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..core.profile_manager import ProfileManager
from ..faults.injector import FaultInjector
from ..faults.plan import FaultKind, FaultPlan, FaultSpec
from ..journal import (
    HolderOutcome,
    RecoveryManager,
    RecoveryReport,
    ReservationJournal,
)
from ..session.supervisor import SessionSupervisor
from ..util.errors import ConfirmationTimeout, ManagerCrashError, SimulationError
from ..util.tables import render_table
from .scenario import Scenario, ScenarioSpec, build_scenario

__all__ = ["CrashRecoverySpec", "CrashRecoveryReport", "run_crash_recovery"]


@dataclass(frozen=True, slots=True)
class CrashRecoverySpec:
    """One reproducible crash + recovery run."""

    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    seed: int = 1
    requests: int = 3
    request_spacing_s: float = 5.0
    profile_name: str = "balanced"
    crash_opportunity: int = 4
    journal_path: "str | Path | None" = None
    fsync: bool = False
    supervisor_timeout_s: float = 60.0
    telemetry_seed: "int | None" = None  # None = observability off
    telemetry_jsonl: "str | None" = None  # trace JSONL output path

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise SimulationError("need at least one request")
        if self.crash_opportunity < 1:
            raise SimulationError("crash_opportunity must be >= 1")


@dataclass(slots=True)
class CrashRecoveryReport:
    """Before/after evidence of one crash + journal replay."""

    crashed: bool = False
    crash_time_s: float = 0.0
    negotiations_before_crash: int = 0
    confirmed_before_crash: int = 0
    negotiations_after_recovery: int = 0
    journal_records: int = 0
    stranded_streams: int = 0
    stranded_flows: int = 0
    stranded_bps: float = 0.0
    recovery: "RecoveryReport | None" = None
    preserved_holders: "tuple[str, ...]" = ()
    post_reserved_bps: float = 0.0
    journal_timeline: str = ""

    @property
    def leak_free(self) -> bool:
        return self.recovery is not None and self.recovery.leak_free

    def render(self) -> str:
        rows = [
            ("manager crashed", "yes" if self.crashed else "no"),
            ("crash time", f"t={self.crash_time_s:g}s"),
            ("negotiations before crash", str(self.negotiations_before_crash)),
            ("  confirmed and playing", str(self.confirmed_before_crash)),
            (
                "negotiations after recovery",
                str(self.negotiations_after_recovery),
            ),
            ("journal records at crash", str(self.journal_records)),
            (
                "stranded at crash",
                f"{self.stranded_streams} streams, {self.stranded_flows} "
                f"flows, {self.stranded_bps / 1e6:.1f} Mbps",
            ),
        ]
        out = render_table(
            ("metric", "value"), rows, title="crash phase"
        )
        if self.recovery is not None:
            preserved = ", ".join(self.preserved_holders) or "(none)"
            out += "\n" + self.recovery.render()
            out += f"\npreserved sessions: {preserved}"
            out += (
                f"\nreserved after recovery: "
                f"{self.post_reserved_bps / 1e6:.1f} Mbps"
            )
        return out


def run_crash_recovery(
    spec: "CrashRecoverySpec | None" = None,
) -> "tuple[CrashRecoveryReport, Scenario]":
    """Run the two-phase crash/recovery scenario."""
    spec = spec or CrashRecoverySpec()

    if spec.journal_path is not None:
        journal = ReservationJournal.open(spec.journal_path, fsync=spec.fsync)
    else:
        journal = ReservationJournal()
    scenario = build_scenario(
        spec.scenario, journal=journal, telemetry_seed=spec.telemetry_seed
    )
    plan = FaultPlan(
        faults=(
            FaultSpec(
                kind=FaultKind.MANAGER_CRASH,
                target_id="manager",
                value=float(spec.crash_opportunity),
            ),
        ),
        seed=spec.seed,
    )
    exporter = None
    if spec.telemetry_jsonl is not None and scenario.telemetry is not None:
        from ..telemetry import JsonlSpanExporter

        exporter = JsonlSpanExporter(spec.telemetry_jsonl)
        scenario.telemetry.tracer.add_exporter(exporter)
    injector = FaultInjector(plan, clock=scenario.clock)
    injector.install(scenario.servers, scenario.transport)
    injector.install_journal(journal)
    runtime = scenario.runtime()

    profiles = ProfileManager()
    if spec.profile_name not in profiles:
        raise SimulationError(
            f"unknown profile {spec.profile_name!r}; have {profiles.names()}"
        )
    profile = profiles.get(spec.profile_name)
    documents = scenario.document_ids()
    clients = list(scenario.clients.values())
    report = CrashRecoveryReport()

    def submit(index: int) -> None:
        client = clients[index % len(clients)]
        result = scenario.manager.negotiate(
            documents[index % len(documents)], profile, client
        )
        if report.crashed:
            # The restarted manager keeps serving requests that were
            # still queued when the old process died.
            report.negotiations_after_recovery += 1
        else:
            report.negotiations_before_crash += 1
        if not result.status.reserves_resources:
            return
        commitment = result.commitment
        assert commitment is not None
        if index == spec.requests - 1:
            # Leave the last negotiation awaiting user confirmation —
            # when the crash lands after it, its choicePeriod must
            # survive and be re-armed.  The §8 timer still runs.
            scenario.loop.at(
                commitment.deadline + 1e-3,
                lambda c=commitment: c.expire_check(scenario.clock.now()),
                label=f"choice-period:{commitment.bundle.holder}",
            )
            return
        try:
            runtime.start_session(result, profile, client)
            if not report.crashed:
                report.confirmed_before_crash += 1
        except ConfirmationTimeout:
            pass

    for index in range(spec.requests):
        scenario.loop.at(
            scenario.loop.now + index * spec.request_spacing_s,
            lambda i=index: submit(i),
            label=f"recover-request-{index + 1}",
        )

    # Phase 1: negotiate until the injected crash kills the manager.
    try:
        scenario.loop.run()
    except ManagerCrashError:
        report.crashed = True
        report.crash_time_s = scenario.clock.now()
    journal.crash_hook = None
    injector.uninstall()

    report.journal_records = len(journal)
    report.stranded_streams = sum(
        server.stream_count for server in scenario.servers.values()
    )
    report.stranded_flows = scenario.transport.flow_count
    report.stranded_bps = scenario.topology.total_reserved_bps()

    # Phase 2: the manager restarts.  A file-backed journal is reopened
    # from disk (the torn-tail reader runs here); the ledgers on the
    # servers and in the network are whatever the crash left behind.
    if spec.journal_path is not None:
        journal.close()
        journal = ReservationJournal.open(spec.journal_path, fsync=spec.fsync)
        # The restarted manager journals to the reopened file, not the
        # handle that died with the old process.
        scenario.manager.committer.journal = journal
        journal.telemetry = scenario.telemetry
    supervisor = SessionSupervisor(
        clock=scenario.clock,
        runtime=runtime,
        heartbeat_timeout_s=spec.supervisor_timeout_s,
        telemetry=scenario.telemetry,
    )
    recovery = RecoveryManager(
        journal,
        scenario.servers,
        scenario.transport,
        clock=scenario.clock,
        telemetry=scenario.telemetry,
    )
    rec_report = recovery.replay(loop=scenario.loop, supervisor=supervisor)
    report.recovery = rec_report

    # Reconcile the runtime against the replay: playouts whose journal
    # timeline is still active survive (the crash did not stop the
    # media servers streaming) and re-register with the supervisor by
    # making progress; a session the journal closed — e.g. the crash
    # struck mid-teardown, after RELEASED was journaled — is stale and
    # is finalized now, or it would pin the monitor sweep forever.
    preserved: "list[str]" = []
    for session in list(runtime.sessions.values()):
        if rec_report.outcomes.get(session.holder) == HolderOutcome.ACTIVE:
            if session.holder in supervisor.watched_holders():
                supervisor.forget(session.holder)
            supervisor.watch(session)
            preserved.append(session.holder)
        else:
            runtime.abort_session(session)
    report.preserved_holders = tuple(preserved)
    supervisor.arm(scenario.loop)

    # Drain: re-armed deadlines expire, supervised playouts finish,
    # adopted-but-silent holders are released on heartbeat timeout.
    scenario.loop.run()
    report.post_reserved_bps = scenario.topology.total_reserved_bps()
    report.journal_timeline = journal.describe()
    if spec.journal_path is not None:
        journal.close()
    if exporter is not None:
        exporter.close()
    return report, scenario
