"""Simulation layer: scenarios, workloads, experiment driver, baselines."""

from .baselines import (
    ALL_BASELINES,
    CostOnlyNegotiator,
    FirstFitNegotiator,
    Negotiator,
    QoSOnlyNegotiator,
    RandomNegotiator,
    SmartNegotiator,
    StaticNegotiator,
)
from .chaos import ChaosReport, ChaosSpec, run_chaos
from .experiment import RunConfig, run_workload
from .metrics import RunStats, StatusCounts, UtilizationIntegral
from .scenario import Scenario, ScenarioSpec, build_scenario
from .workload import Request, WorkloadSpec, generate_requests, zipf_weights

__all__ = [
    "ALL_BASELINES",
    "CostOnlyNegotiator",
    "FirstFitNegotiator",
    "Negotiator",
    "QoSOnlyNegotiator",
    "RandomNegotiator",
    "SmartNegotiator",
    "StaticNegotiator",
    "ChaosReport",
    "ChaosSpec",
    "run_chaos",
    "RunConfig",
    "run_workload",
    "RunStats",
    "StatusCounts",
    "UtilizationIntegral",
    "Scenario",
    "ScenarioSpec",
    "build_scenario",
    "Request",
    "WorkloadSpec",
    "generate_requests",
    "zipf_weights",
]
