"""Simulation layer: scenarios, workloads, experiment driver, baselines."""

from .baselines import (
    ALL_BASELINES,
    CostOnlyNegotiator,
    FirstFitNegotiator,
    Negotiator,
    QoSOnlyNegotiator,
    RandomNegotiator,
    SmartNegotiator,
    StaticNegotiator,
)
from .chaos import ChaosReport, ChaosSpec, run_chaos
from .experiment import RunConfig, run_workload
from .load import (
    ArrivalSpec,
    CellRun,
    LoadCellReport,
    LoadReport,
    LoadSpec,
    arrival_times,
    jain_index,
    run_load,
    run_load_cell,
    run_load_cell_instrumented,
)
from .recover import CrashRecoveryReport, CrashRecoverySpec, run_crash_recovery
from .slo import SLO_SCENARIOS, SloRunReport, SloRunSpec, run_slo
from .metrics import RunStats, StatusCounts, UtilizationIntegral
from .scenario import Scenario, ScenarioSpec, build_scenario
from .storm import (
    StormComparison,
    StormReport,
    StormSpec,
    run_storm,
    run_storm_comparison,
)
from .workload import Request, WorkloadSpec, generate_requests, zipf_weights

__all__ = [
    "ALL_BASELINES",
    "CostOnlyNegotiator",
    "FirstFitNegotiator",
    "Negotiator",
    "QoSOnlyNegotiator",
    "RandomNegotiator",
    "SmartNegotiator",
    "StaticNegotiator",
    "ChaosReport",
    "ChaosSpec",
    "run_chaos",
    "CrashRecoveryReport",
    "CrashRecoverySpec",
    "run_crash_recovery",
    "RunConfig",
    "run_workload",
    "ArrivalSpec",
    "CellRun",
    "LoadCellReport",
    "LoadReport",
    "LoadSpec",
    "arrival_times",
    "jain_index",
    "run_load",
    "run_load_cell",
    "run_load_cell_instrumented",
    "SLO_SCENARIOS",
    "SloRunReport",
    "SloRunSpec",
    "run_slo",
    "RunStats",
    "StatusCounts",
    "UtilizationIntegral",
    "Scenario",
    "ScenarioSpec",
    "build_scenario",
    "StormComparison",
    "StormReport",
    "StormSpec",
    "run_storm",
    "run_storm_comparison",
    "Request",
    "WorkloadSpec",
    "generate_requests",
    "zipf_weights",
]
