"""Scenario builder: assemble a complete news-on-demand deployment.

A scenario bundles everything one experiment needs — catalogue, metadata
database, server fleet, topology, transport, clients, clock, QoS manager
— built from a compact :class:`ScenarioSpec`.  The default scenario
mirrors the CITR prototype's shape: a handful of server machines on a
shared backbone, client access networks, and a catalogue of news
articles with variant grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..client.machine import ClientMachine
from ..cmfs.admission import AdmissionController
from ..cmfs.disk import DiskModel
from ..cmfs.server import MediaServer
from ..cmfs.storage import validate_placement
from ..core.classification import ClassificationPolicy
from ..core.cost import CostModel, default_cost_model
from ..core.mapping import QoSMapper
from ..core.negotiation import QoSManager
from ..documents.builder import make_news_article
from ..documents.catalog import DocumentCatalog
from ..metadata.database import MetadataDatabase
from ..network.topology import Topology
from ..network.transport import GuaranteeType, TransportSystem
from ..session.engine import EventLoop
from ..session.runtime import SessionRuntime
from ..telemetry import Telemetry, observe_breaker
from ..util.clock import ManualClock
from ..util.errors import SimulationError
from ..util.validation import check_positive

__all__ = ["ScenarioSpec", "Scenario", "build_scenario"]


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """Knobs of the default deployment."""

    server_count: int = 3
    client_count: int = 4
    document_count: int = 6
    backbone_bps: float = 622_000_000.0     # OC-12 backbone links
    server_access_bps: float = 155_000_000.0  # OC-3 per server
    client_access_bps: float = 100_000_000.0  # shared client access net
    document_duration_s: float = 120.0
    max_streams_per_server: int = 64
    replicate_audio: bool = True
    replicate_stills: bool = False
    multi_domain: bool = False
    metro_transit_quota_bps: "float | None" = None
    # Storm-scale knobs: a custom disk model for the whole fleet (None
    # = the CITR-era default) and lean two-stream documents (video +
    # audio only), so one deployment can hold hundreds of sessions.
    disk: "DiskModel | None" = None
    lean_documents: bool = False

    def __post_init__(self) -> None:
        if self.server_count < 1:
            raise SimulationError("need at least one server")
        if self.client_count < 1:
            raise SimulationError("need at least one client")
        if self.document_count < 1:
            raise SimulationError("need at least one document")
        check_positive(self.backbone_bps, "backbone_bps")
        check_positive(self.server_access_bps, "server_access_bps")
        check_positive(self.client_access_bps, "client_access_bps")
        check_positive(self.document_duration_s, "document_duration_s")


@dataclass(slots=True)
class Scenario:
    """A fully wired deployment ready for negotiation experiments."""

    spec: ScenarioSpec
    catalog: DocumentCatalog
    database: MetadataDatabase
    servers: dict[str, MediaServer]
    topology: Topology
    transport: TransportSystem
    clients: dict[str, ClientMachine]
    clock: ManualClock
    manager: QoSManager
    loop: EventLoop
    telemetry: "Telemetry | None" = None

    def runtime(self, **kwargs) -> SessionRuntime:
        """A fresh session runtime over this scenario's manager/loop."""
        return SessionRuntime(self.manager, self.loop, **kwargs)

    def any_client(self) -> ClientMachine:
        return next(iter(self.clients.values()))

    def document_ids(self) -> tuple[str, ...]:
        return self.catalog.document_ids

    def reset_resources(self) -> None:
        """Release every reservation and congestion (between sweeps)."""
        self.transport.release_all()
        for server in self.servers.values():
            server.release_all()
            server.set_degradation(0.0)
        self.topology.clear_congestion()


def build_scenario(
    spec: ScenarioSpec | None = None,
    *,
    cost_model: CostModel | None = None,
    mapper: QoSMapper | None = None,
    policy: ClassificationPolicy = ClassificationPolicy.SNS_PRIMARY,
    guarantee: GuaranteeType = GuaranteeType.GUARANTEED,
    retry_policy=None,
    health=None,
    lease_ttl_s: "float | None" = None,
    retry_seed: int = 0,
    journal=None,
    telemetry_seed: "int | None" = None,
    offer_mode: str = "full",
    use_cache: bool = False,
) -> Scenario:
    """Build the default deployment from ``spec``.

    ``telemetry_seed`` switches the deployment's observability on: a
    :class:`~repro.telemetry.Telemetry` hub seeded with it is wired into
    the manager, the server fleet, the transport, the journal and the
    breaker, and exposed as ``Scenario.telemetry``.

    ``offer_mode`` selects how steps 3–5 consume the offer space
    (``full``/``stream``/``auto``); ``use_cache`` wires a
    :class:`~repro.perf.NegotiationCache` into the manager.  Both are
    pure throughput knobs: negotiation outcomes are identical.
    """
    spec = spec or ScenarioSpec()

    server_ids = [f"server-{chr(ord('a') + i)}" for i in range(spec.server_count)]
    disk = spec.disk or DiskModel()  # frozen: safe to share
    servers = {
        server_id: MediaServer(
            server_id,
            disk=disk,
            admission=AdmissionController(
                disk=disk,
                nic_bps=spec.server_access_bps,
                max_streams=spec.max_streams_per_server,
            ),
        )
        for server_id in server_ids
    }

    topology = Topology()
    for server in servers.values():
        topology.connect(
            server.access_point, "backbone", spec.server_access_bps,
            link_id=f"L-{server.server_id}",
        )
    clients = {}
    for i in range(spec.client_count):
        client_id = f"client-{i + 1}"
        access = f"{client_id}-net"
        topology.connect(
            access, "backbone", spec.client_access_bps,
            link_id=f"L-{client_id}",
        )
        clients[client_id] = ClientMachine(client_id, access_point=access)

    catalog = DocumentCatalog()
    for i in range(spec.document_count):
        video_servers = [server_ids[(i + j) % len(server_ids)] for j in range(2)]
        audio_servers = (
            server_ids if spec.replicate_audio else [server_ids[i % len(server_ids)]]
        )
        catalog.add(
            make_news_article(
                f"doc.news-{i + 1}",
                title=f"news article {i + 1}",
                duration_s=spec.document_duration_s,
                video_servers=video_servers,
                audio_servers=list(audio_servers)[:2],
                still_server=server_ids[i % len(server_ids)],
                include_image=not spec.lean_documents,
                include_text=not spec.lean_documents,
            )
        )

    placement = validate_placement(catalog, list(servers.values()))
    if not placement.valid:
        raise SimulationError(
            f"catalogue references unknown servers: "
            f"{sorted(placement.orphan_servers)}"
        )

    database = MetadataDatabase()
    database.insert_catalog(catalog)

    clock = ManualClock()
    telemetry = (
        Telemetry(clock=clock, seed=telemetry_seed)
        if telemetry_seed is not None
        else None
    )
    if spec.multi_domain:
        # Three-domain split ([Haf 95b] extension): servers in the
        # provider domain, the backbone node in the metro domain,
        # client access networks in the campus domain.
        from ..network.domains import Domain, DomainMap, HierarchicalTransport

        dmap = DomainMap(
            [
                Domain("provider"),
                Domain("metro", transit_quota_bps=spec.metro_transit_quota_bps),
                Domain("campus"),
            ]
        )
        dmap.assign("backbone", "metro")
        for server in servers.values():
            dmap.assign(server.access_point, "provider")
        for client in clients.values():
            dmap.assign(client.access_point, "campus")
        transport = HierarchicalTransport(topology, dmap)
    else:
        transport = TransportSystem(topology)
    cache = None
    if use_cache:
        from ..perf.cache import NegotiationCache

        # Deliberately private, not shared_cache(): every scenario is a
        # hermetic deployment whose cache counters must start cold, and
        # its telemetry hub is scenario-scoped.
        cache = NegotiationCache(telemetry=telemetry)  # reprolint: disable=REP018 -- hermetic per-scenario cache with scenario-scoped telemetry
    manager = QoSManager(
        database=database,
        transport=transport,
        servers=servers,
        cost_model=cost_model or default_cost_model(),
        mapper=mapper,
        clock=clock,
        policy=policy,
        guarantee=guarantee,
        retry_policy=retry_policy,
        health=health,
        lease_ttl_s=lease_ttl_s,
        retry_seed=retry_seed,
        journal=journal,
        telemetry=telemetry,
        offer_mode=offer_mode,
        cache=cache,
    )
    if telemetry is not None:
        transport.telemetry = telemetry
        for server in servers.values():
            server.telemetry = telemetry
        if journal is not None:
            journal.telemetry = telemetry
        if health is not None:
            observe_breaker(health, telemetry)
    return Scenario(
        spec=spec,
        catalog=catalog,
        database=database,
        servers=servers,
        topology=topology,
        transport=transport,
        clients=clients,
        clock=clock,
        manager=manager,
        loop=EventLoop(clock),
        telemetry=telemetry,
    )
