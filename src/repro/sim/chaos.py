"""Chaos scenario: negotiation + playout under a fault plan.

The chaos runner builds a deployment with the full resilience stack
enabled (retry policy, circuit breaker, leases), installs a
:class:`~repro.faults.FaultInjector` for the given plan, submits a
stream of negotiation requests, plays the committed sessions out to
completion under the injected failures, and reports blocking and
recovery metrics — including a final leak audit of every server ledger
and the transport system.

Everything is seeded, so one :class:`ChaosSpec` always produces the
same :class:`ChaosReport` — the property the chaos integration tests
assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.profile_manager import ProfileManager
from ..core.status import NegotiationStatus
from ..faults.health import CircuitBreaker
from ..faults.injector import FaultInjector
from ..faults.lease import LeaseManager
from ..faults.plan import FaultPlan
from ..faults.retry import RetryPolicy
from ..journal import HolderOutcome, RecoveryManager, ReservationJournal
from ..session.supervisor import SessionSupervisor
from ..util.errors import (
    ConfirmationTimeout,
    ManagerCrashError,
    SimulationError,
)
from ..util.tables import render_table
from .scenario import Scenario, ScenarioSpec, build_scenario

__all__ = ["ChaosSpec", "ChaosReport", "run_chaos"]


@dataclass(frozen=True, slots=True)
class ChaosSpec:
    """One reproducible chaos run."""

    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    plan: FaultPlan = field(default_factory=FaultPlan)
    seed: int = 1
    requests: int = 4
    request_spacing_s: float = 5.0
    profile_name: str = "balanced"
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_threshold: int = 3
    breaker_recovery_s: float = 30.0
    lease_ttl_s: float = 120.0
    monitor_period_s: float = 1.0
    supervisor_timeout_s: float = 60.0
    supervisor_period_s: float = 5.0
    telemetry_seed: "int | None" = None  # None = observability off
    telemetry_jsonl: "str | None" = None  # trace JSONL output path
    timeseries_jsonl: "str | None" = None  # flight-recorder output path
    timeseries_interval_s: float = 1.0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise SimulationError("need at least one request")
        if self.request_spacing_s < 0:
            raise SimulationError("request_spacing_s must be non-negative")


@dataclass(slots=True)
class ChaosReport:
    """Blocking + recovery metrics of one chaos run."""

    statuses: dict[str, int] = field(default_factory=dict)
    negotiations: int = 0
    succeeded: int = 0
    degraded_offers: int = 0   # FAILEDWITHOFFER: alternate accepted
    blocked: int = 0           # FAILEDTRYLATER
    retry_after_hints: tuple[float, ...] = ()
    commit_attempts: int = 0
    retries: int = 0
    breaker_skips: int = 0
    breaker_opens: int = 0
    adaptations: int = 0
    failed_adaptations: int = 0
    interruptions: int = 0
    completed_sessions: int = 0
    aborted_sessions: int = 0
    leases_reaped: int = 0
    manager_crashes: int = 0
    recoveries: int = 0
    recovered_orphans: int = 0
    recovered_expired: int = 0
    recovered_rearmed: int = 0
    recovered_active: int = 0
    recovered_redo: int = 0
    supervisor_releases: int = 0
    journal_records: int = 0
    fault_stats: dict[str, float] = field(default_factory=dict)
    timeline: dict[str, object] = field(default_factory=dict)
    leaked_streams: int = 0
    leaked_flows: int = 0
    leaked_bps: float = 0.0

    @property
    def clean_teardown(self) -> bool:
        """No stream, flow or link bandwidth left reserved at the end."""
        return (
            self.leaked_streams == 0
            and self.leaked_flows == 0
            and self.leaked_bps == 0.0
        )

    def rows(self) -> list[tuple[str, str]]:
        rows = [
            ("negotiations", str(self.negotiations)),
            ("  succeeded", str(self.succeeded)),
            ("  degraded to alternate offer", str(self.degraded_offers)),
            ("  blocked (try later)", str(self.blocked)),
            ("commit attempts", str(self.commit_attempts)),
            ("retries (backoff)", str(self.retries)),
            ("offers skipped by breaker", str(self.breaker_skips)),
            ("breaker opens", str(self.breaker_opens)),
            ("adaptations", str(self.adaptations)),
            ("failed adaptations", str(self.failed_adaptations)),
            ("interruptions", str(self.interruptions)),
            ("sessions completed", str(self.completed_sessions)),
            ("sessions aborted", str(self.aborted_sessions)),
            ("leases reaped", str(self.leases_reaped)),
        ]
        if self.manager_crashes:
            rows.extend(
                [
                    ("manager crashes", str(self.manager_crashes)),
                    ("journal replays", str(self.recoveries)),
                    ("  orphans compensated", str(self.recovered_orphans)),
                    ("  expired during outage", str(self.recovered_expired)),
                    ("  choicePeriod re-armed", str(self.recovered_rearmed)),
                    ("  sessions preserved", str(self.recovered_active)),
                    ("  terminal redo releases", str(self.recovered_redo)),
                    ("supervisor releases", str(self.supervisor_releases)),
                    ("journal records", str(self.journal_records)),
                ]
            )
        for name, value in sorted(self.fault_stats.items()):
            if value:
                rows.append((f"fault: {name}", f"{value:g}"))
        rows.append(
            (
                "leaks at teardown",
                "none"
                if self.clean_teardown
                else f"{self.leaked_streams} streams, {self.leaked_flows} "
                     f"flows, {self.leaked_bps / 1e6:.1f} Mbps",
            )
        )
        if self.retry_after_hints:
            hints = ", ".join(f"{h:g}s" for h in self.retry_after_hints)
            rows.append(("retry-after hints", hints))
        return rows

    def render(self) -> str:
        return render_table(
            ("metric", "value"), self.rows(), title="chaos run report"
        )


def run_chaos(spec: ChaosSpec) -> "tuple[ChaosReport, Scenario]":
    """Execute one chaos run; returns the report and the (now spent)
    scenario for further inspection."""
    health = CircuitBreaker(
        failure_threshold=spec.breaker_threshold,
        recovery_time_s=spec.breaker_recovery_s,
    )
    journal = ReservationJournal()
    scenario = build_scenario(
        spec.scenario,
        retry_policy=spec.retry,
        health=health,
        lease_ttl_s=spec.lease_ttl_s,
        retry_seed=spec.seed,
        journal=journal,
        telemetry_seed=spec.telemetry_seed,
    )
    exporter = None
    if spec.telemetry_jsonl is not None and scenario.telemetry is not None:
        from ..telemetry import JsonlSpanExporter

        exporter = JsonlSpanExporter(spec.telemetry_jsonl)
        scenario.telemetry.tracer.add_exporter(exporter)
    recorder = None
    if scenario.telemetry is not None and scenario.telemetry.enabled:
        from ..telemetry.timeseries import FlightRecorder

        recorder = FlightRecorder(
            scenario.telemetry, interval_s=spec.timeseries_interval_s
        )
        # Bound at the submission window plus the supervisor's patience
        # — everything after that is drain, captured by finish().
        recorder.arm(
            scenario.loop,
            until=(
                scenario.loop.now
                + spec.requests * spec.request_spacing_s
                + spec.supervisor_timeout_s
            ),
        )
    injector = FaultInjector(
        spec.plan,
        clock=scenario.clock,
        attempt_timeout_s=spec.retry.attempt_timeout_s,
    )
    injector.install(scenario.servers, scenario.transport)
    injector.install_journal(journal)
    injector.arm(scenario.loop)
    runtime = scenario.runtime(monitor_period_s=spec.monitor_period_s)
    supervisor = SessionSupervisor(
        clock=scenario.clock,
        runtime=runtime,
        heartbeat_timeout_s=spec.supervisor_timeout_s,
        period_s=spec.supervisor_period_s,
        telemetry=scenario.telemetry,
    )

    profiles = ProfileManager()
    if spec.profile_name not in profiles:
        raise SimulationError(
            f"unknown profile {spec.profile_name!r}; have {profiles.names()}"
        )
    profile = profiles.get(spec.profile_name)
    documents = scenario.document_ids()
    clients = list(scenario.clients.values())
    report = ChaosReport()
    hints: list[float] = []

    def submit(index: int) -> None:
        client = clients[index % len(clients)]
        result = scenario.manager.negotiate(
            documents[index % len(documents)], profile, client
        )
        report.negotiations += 1
        report.statuses[str(result.status)] = (
            report.statuses.get(str(result.status), 0) + 1
        )
        if result.status is NegotiationStatus.SUCCEEDED:
            report.succeeded += 1
        elif result.status is NegotiationStatus.FAILED_WITH_OFFER:
            report.degraded_offers += 1
        elif result.status is NegotiationStatus.FAILED_TRY_LATER:
            report.blocked += 1
            if result.retry_after_s is not None:
                hints.append(result.retry_after_s)
        if not result.status.reserves_resources:
            return
        try:
            runtime.start_session(result, profile, client)
        except ConfirmationTimeout:
            pass  # choicePeriod elapsed; reservation already returned

    committer = scenario.manager.committer

    def recover() -> None:
        """Simulated manager restart: volatile state (leases, in-flight
        negotiations) is gone; the journal + ledgers are what survive."""
        report.manager_crashes += 1
        if committer.leases is not None:
            committer.leases = LeaseManager(ttl_s=spec.lease_ttl_s)
        recovery = RecoveryManager(
            journal,
            scenario.servers,
            scenario.transport,
            clock=scenario.clock,
            telemetry=scenario.telemetry,
        )
        # Recovery itself must not be re-killed by the same injector
        # hook mid-replay; its appends are not crash opportunities.
        journal.crash_hook = None
        try:
            rec_report = recovery.replay(
                loop=scenario.loop, supervisor=supervisor
            )
        finally:
            injector.install_journal(journal)
        report.recoveries += 1
        report.recovered_orphans += rec_report.orphans_released
        report.recovered_expired += rec_report.expired_released
        report.recovered_rearmed += rec_report.rearmed
        report.recovered_active += rec_report.active_sessions
        report.recovered_redo += rec_report.redo_released
        # Reconcile the runtime against the replay.  Playouts whose
        # timeline is still active survived the crash (client + servers
        # kept streaming): watch them by progress instead of waiting
        # for an explicit heartbeat that the simulated client never
        # sends.  A session the journal already closed — the crash
        # struck mid-teardown, after RELEASED was journaled — is stale
        # and is finalized now, or it would pin the monitor sweep
        # forever.
        for session in list(runtime.sessions.values()):
            outcome = rec_report.outcomes.get(session.holder)
            if outcome == HolderOutcome.ACTIVE:
                supervisor.forget(session.holder)
                supervisor.watch(session)
            else:
                runtime.abort_session(session)
        supervisor.arm(scenario.loop)

    for index in range(spec.requests):
        scenario.loop.at(
            scenario.loop.now + index * spec.request_spacing_s,
            lambda i=index: submit(i),
            label=f"chaos-request-{index + 1}",
        )
    while True:
        try:
            scenario.loop.run()
            break
        except ManagerCrashError:
            recover()

    # Final reaping pass: zombies left by releases that were swallowed
    # while their fault window was still open are collected now.
    committer.reap_expired(scenario.clock.now())

    for session in runtime.finished:
        report.adaptations += session.record.adaptations
        report.failed_adaptations += session.record.failed_adaptations
        report.interruptions += session.record.interruptions
        if session.record.completed:
            report.completed_sessions += 1
        if session.record.aborted:
            report.aborted_sessions += 1

    report.retry_after_hints = tuple(hints)
    report.supervisor_releases = supervisor.stats.sessions_released
    report.journal_records = len(journal)
    report.commit_attempts = committer.stats.attempts
    report.retries = committer.stats.retries
    report.breaker_skips = committer.stats.breaker_skips
    report.breaker_opens = health.opens
    report.leases_reaped = committer.stats.leases_reaped
    report.fault_stats = injector.stats.as_dict()
    report.leaked_streams = sum(
        server.stream_count for server in scenario.servers.values()
    )
    report.leaked_flows = scenario.transport.flow_count
    report.leaked_bps = scenario.topology.total_reserved_bps()
    if recorder is not None:
        recorder.finish(scenario.clock.now())
        report.timeline = recorder.as_dict()
        if spec.timeseries_jsonl is not None:
            recorder.write_jsonl(spec.timeseries_jsonl)
    if exporter is not None:
        exporter.close()
    return report, scenario
