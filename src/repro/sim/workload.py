"""Workload generation: synthetic users for the system-level experiments.

Requests arrive as a Poisson process; each request picks a document
(Zipf-ish popularity — news consumption is head-heavy), a client, and a
user profile from a weighted mix.  Session holding times equal document
duration (presentational playout).  Everything is driven by an explicit
seeded generator so sweeps are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.profile_manager import standard_profiles
from ..core.profiles import UserProfile
from ..util.errors import SimulationError
from ..util.rng import RngLike, make_rng
from ..util.validation import check_positive

__all__ = ["Request", "WorkloadSpec", "generate_requests", "zipf_weights"]


@dataclass(frozen=True, slots=True)
class Request:
    """One user request: who asks for what, when."""

    arrival_s: float
    client_id: str
    document_id: str
    profile: UserProfile


def zipf_weights(n: int, skew: float = 0.8) -> np.ndarray:
    """Normalised Zipf(``skew``) popularity over ``n`` items."""
    if n < 1:
        raise SimulationError("need at least one item")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-skew)
    return weights / weights.sum()


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Parameters of one synthetic workload."""

    arrival_rate_per_s: float = 0.05
    horizon_s: float = 3_600.0
    document_skew: float = 0.8
    profile_mix: "tuple[tuple[str, float], ...]" = (
        ("premium", 0.25),
        ("balanced", 0.5),
        ("economy", 0.25),
    )

    def __post_init__(self) -> None:
        check_positive(self.arrival_rate_per_s, "arrival_rate_per_s")
        check_positive(self.horizon_s, "horizon_s")
        if not self.profile_mix:
            raise SimulationError("profile mix must not be empty")
        total = sum(weight for _, weight in self.profile_mix)
        if total <= 0:
            raise SimulationError("profile mix weights must sum positive")


def generate_requests(
    spec: WorkloadSpec,
    document_ids: Sequence[str],
    client_ids: Sequence[str],
    *,
    rng: RngLike = None,
    profiles: "Sequence[UserProfile] | None" = None,
) -> list[Request]:
    """Draw the full request trace for one run."""
    if not document_ids:
        raise SimulationError("no documents to request")
    if not client_ids:
        raise SimulationError("no clients to request from")
    rng = make_rng(rng)

    by_name = {p.name: p for p in (profiles or standard_profiles())}
    mix_profiles = []
    mix_weights = []
    for name, weight in spec.profile_mix:
        if name not in by_name:
            raise SimulationError(f"unknown profile {name!r} in mix")
        mix_profiles.append(by_name[name])
        mix_weights.append(float(weight))
    mix = np.array(mix_weights)
    mix = mix / mix.sum()

    doc_weights = zipf_weights(len(document_ids), spec.document_skew)

    requests: list[Request] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / spec.arrival_rate_per_s))
        if t >= spec.horizon_s:
            break
        requests.append(
            Request(
                arrival_s=t,
                client_id=str(client_ids[int(rng.integers(len(client_ids)))]),
                document_id=str(
                    document_ids[int(rng.choice(len(document_ids), p=doc_weights))]
                ),
                profile=mix_profiles[int(rng.choice(len(mix_profiles), p=mix))],
            )
        )
    return requests
