"""The media server: admission + reservation ledger + scheduler.

One :class:`MediaServer` is one server machine of §4's "set of server
machines".  The QoS manager's resource-commitment step calls
:meth:`admit` / :meth:`release`; the playout engine drives
:meth:`execute_round`; the adaptation experiments inject load spikes
with :meth:`set_degradation` (a degraded server sheds its most recent
streams exactly like an oversubscribed link does).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..util.errors import AdmissionError, ReservationError, ServerCrashedError
from ..util.validation import check_fraction, check_name, check_positive
from .admission import AdmissionController, AdmissionDecision
from .disk import DiskModel
from .scheduler import RoundScheduler, SchedulingPolicy

__all__ = ["StreamReservation", "MediaServer"]


@dataclass(frozen=True, slots=True)
class StreamReservation:
    """One admitted stream's hold on the server."""

    stream_id: str
    server_id: str
    variant_id: str
    rate_bps: float
    holder: str
    sequence: int  # admission order; later streams are shed first


class MediaServer:
    """A continuous-media file server machine."""

    def __init__(
        self,
        server_id: str,
        *,
        access_point: str | None = None,
        disk: DiskModel | None = None,
        admission: AdmissionController | None = None,
        scheduling: SchedulingPolicy = SchedulingPolicy.SCAN,
    ) -> None:
        self.server_id = check_name(server_id, "server_id")
        self.access_point = access_point or f"{server_id}-net"
        self.disk = disk or DiskModel()
        self.admission = admission or AdmissionController(disk=self.disk)
        self.scheduler = RoundScheduler(self.disk, scheduling)
        self._streams: dict[str, StreamReservation] = {}
        self._sequence = itertools.count(1)
        self._degradation = 0.0
        # Opt-in: a degraded server also refuses *new* admissions that
        # would not fit its shrunken round budget.  Off by default — the
        # adaptation experiments rely on degradation only shedding held
        # streams; the storm scenario turns it on so mass renegotiation
        # cannot trivially re-admit onto the browned-out machine.
        self.degradation_limits_admission = False
        self._crashed = False
        # Thin fault-injection hook (see repro.faults.injector); None in
        # production paths so the happy path costs one identity check.
        self.fault_hook = None
        # Observability seam (see repro.telemetry): assign a hub and
        # admissions/releases are counted per server.
        self.telemetry = None

    # -- capacity state -----------------------------------------------------------

    def stream_rates(self) -> tuple[float, ...]:
        return tuple(s.rate_bps for s in self._streams.values())

    @property
    def stream_count(self) -> int:
        return len(self._streams)

    @property
    def aggregate_rate_bps(self) -> float:
        return sum(self.stream_rates())

    @property
    def disk_utilization(self) -> float:
        return self.disk.round_feasibility(self.stream_rates()).disk_utilization

    def can_admit(self, rate_bps: float) -> AdmissionDecision:
        decision = self.admission.evaluate(self.stream_rates(), rate_bps)
        if (
            decision
            and self.degradation_limits_admission
            and self._degradation > 0.0
        ):
            rates = list(self.stream_rates()) + [rate_bps]
            feasibility = self.disk.round_feasibility(rates)
            budget = self.disk.round_s * (1.0 - self._degradation)
            if feasibility.busy_s > budget + 1e-12:
                return AdmissionDecision(
                    False, "disk",
                    f"round busy {feasibility.busy_s * 1e3:.1f} ms exceeds "
                    f"degraded budget {budget * 1e3:.1f} ms "
                    f"(degradation {self._degradation:g})",
                )
        return decision

    # -- admission / release -----------------------------------------------------------

    def admit(
        self, variant_id: str, rate_bps: float, *, holder: str = "anonymous"
    ) -> StreamReservation:
        """Admit one stream or raise :class:`AdmissionError` (or
        :class:`ServerCrashedError` while the machine is down)."""
        check_positive(rate_bps, "rate_bps")
        if self._crashed:
            raise ServerCrashedError(f"{self.server_id} is down")
        if self.fault_hook is not None:
            self.fault_hook.before_admit(self, variant_id, rate_bps)
        decision = self.can_admit(rate_bps)
        if not decision:
            raise AdmissionError(
                f"{self.server_id} rejected {variant_id!r}: "
                f"{decision.limiting_resource} ({decision.detail})"
            )
        sequence = next(self._sequence)
        stream_id = f"{self.server_id}/stream-{sequence}"
        reservation = StreamReservation(
            stream_id=stream_id,
            server_id=self.server_id,
            variant_id=variant_id,
            rate_bps=rate_bps,
            holder=holder,
            sequence=sequence,
        )
        self._streams[stream_id] = reservation
        self.scheduler.add_stream(stream_id, rate_bps)
        if self.telemetry is not None:
            self.telemetry.count(
                "server.streams.reserved", server=self.server_id
            )
        return reservation

    def release(self, reservation: "StreamReservation | str") -> None:
        stream_id = (
            reservation.stream_id
            if isinstance(reservation, StreamReservation)
            else reservation
        )
        if self.fault_hook is not None and self.fault_hook.intercept_stream_release(
            self, stream_id
        ):
            return  # lost release: the ledger leaks until the lease reaper runs
        if self._streams.pop(stream_id, None) is None:
            raise ReservationError(
                f"{self.server_id}: no stream {stream_id!r}"
            )
        self.scheduler.remove_stream(stream_id)
        if self.telemetry is not None:
            self.telemetry.count(
                "server.streams.released", server=self.server_id
            )

    def release_all(self) -> None:
        for stream_id in list(self._streams):
            self.release(stream_id)

    def reservations(self) -> tuple[StreamReservation, ...]:
        return tuple(self._streams.values())

    def has_stream(self, stream_id: str) -> bool:
        return stream_id in self._streams

    def streams_for_holder(self, holder: str) -> tuple[StreamReservation, ...]:
        """Every stream admitted on behalf of ``holder`` (the
        crash-recovery compensation scan)."""
        return tuple(
            s for s in self._streams.values() if s.holder == holder
        )

    # -- crash / restart ---------------------------------------------------------------

    @property
    def is_crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """The machine goes down: admissions raise, every held stream is
        violated until :meth:`restart`."""
        self._crashed = True

    def restart(self, *, preserve_streams: bool = False) -> None:
        """Bring the machine back.  A real crash loses the in-memory
        reservation ledger, so by default held streams are wiped — their
        holders' later releases are tolerated by the rollback paths."""
        if not preserve_streams:
            for stream_id in list(self._streams):
                self._streams.pop(stream_id)
                self.scheduler.remove_stream(stream_id)
        self._crashed = False

    # -- degradation / adaptation hooks ----------------------------------------------

    def set_degradation(self, fraction: float) -> None:
        """Shrink the server's deliverable share by ``fraction`` —
        models a load spike, a failing disk, or background maintenance."""
        self._degradation = check_fraction(fraction, "degradation fraction")

    @property
    def degradation(self) -> float:
        return self._degradation

    def violated_holders(self) -> frozenset[str]:
        """Holders currently shed because degradation shrank capacity
        below the admitted aggregate; latest admissions shed first.  A
        crashed machine sheds everyone."""
        if self._crashed:
            return frozenset(s.holder for s in self._streams.values())
        if self._degradation == 0.0:
            return frozenset()
        rates = self.stream_rates()
        feasibility = self.disk.round_feasibility(rates)
        budget = self.disk.round_s * (1.0 - self._degradation)
        if feasibility.busy_s <= budget + 1e-12:
            return frozenset()
        victims: list[str] = []
        running = 0.0
        for reservation in sorted(
            self._streams.values(), key=lambda r: r.sequence
        ):
            running += (
                reservation.rate_bps * self.disk.round_s / self.disk.transfer_rate_bps
                + self.disk.overhead_s
            )
            if running > budget + 1e-12:
                victims.append(reservation.holder)
        return frozenset(victims)

    def execute_round(self, rng=None):
        """Advance one service round (delegates to the scheduler)."""
        return self.scheduler.execute_round(rng)

    def __repr__(self) -> str:
        return (
            f"MediaServer({self.server_id}: {self.stream_count} streams, "
            f"{self.aggregate_rate_bps / 1e6:.1f} Mbps)"
        )
