"""Continuous-media file server substrate (stands in for the UBC CMFS)."""

from .admission import AdmissionController, AdmissionDecision
from .disk import DiskModel, RoundFeasibility
from .scheduler import RoundPlan, RoundScheduler, SchedulingPolicy, StreamState
from .server import MediaServer, StreamReservation
from .storage import (
    PlacementReport,
    rebalance,
    storage_by_server,
    validate_placement,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "DiskModel",
    "RoundFeasibility",
    "RoundPlan",
    "RoundScheduler",
    "SchedulingPolicy",
    "StreamState",
    "MediaServer",
    "StreamReservation",
    "PlacementReport",
    "rebalance",
    "storage_by_server",
    "validate_placement",
]
