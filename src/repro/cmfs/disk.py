"""Disk model for the continuous-media file server.

The UBC CMFS [Neu 96] serves variable-bit-rate streams from disk in
fixed-length *rounds*: in each round every admitted stream gets one
contiguous read of its next data.  A round is feasible when the sum of
per-stream transfer times plus per-stream positioning overhead (seek +
rotational latency) fits in the round:

    Σᵢ (rateᵢ · R / transfer_rate)  +  n · (seek + rot)  ≤  R

This single inequality is the entire real-time admission condition the
negotiation needs — it exhibits the right qualitative behaviour: more
streams burn more positioning overhead, faster streams burn transfer
time, and a saturated disk rejects further admissions (FAILEDTRYLATER
pressure in experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..util.errors import ValidationError
from ..util.validation import check_positive

__all__ = ["DiskModel", "RoundFeasibility"]


@dataclass(frozen=True, slots=True)
class RoundFeasibility:
    """Outcome of a round-feasibility evaluation."""

    feasible: bool
    busy_s: float
    round_s: float
    stream_count: int

    @property
    def disk_utilization(self) -> float:
        """Busy share of the round (may exceed 1 when infeasible)."""
        return self.busy_s / self.round_s


@dataclass(frozen=True, slots=True)
class DiskModel:
    """A single mechanical disk of the era (defaults ≈ a mid-90s
    Seagate Barracuda: ~8.5 ms average seek, 7200 rpm, ~60 Mbit/s
    sustained transfer)."""

    transfer_rate_bps: float = 60_000_000.0
    avg_seek_s: float = 0.0085
    rotational_latency_s: float = 0.00417  # half a revolution at 7200 rpm
    round_s: float = 0.5

    def __post_init__(self) -> None:
        check_positive(self.transfer_rate_bps, "transfer_rate_bps")
        check_positive(self.avg_seek_s, "avg_seek_s")
        check_positive(self.rotational_latency_s, "rotational_latency_s")
        check_positive(self.round_s, "round_s")
        if self.overhead_s >= self.round_s:
            raise ValidationError(
                "positioning overhead exceeds the round length; "
                "no stream could ever be admitted"
            )

    @property
    def overhead_s(self) -> float:
        """Positioning overhead charged per stream per round."""
        return self.avg_seek_s + self.rotational_latency_s

    def round_feasibility(self, stream_rates_bps: Iterable[float]) -> RoundFeasibility:
        """Evaluate the round inequality for the given admitted rates."""
        rates = list(stream_rates_bps)
        transfer_s = sum(r * self.round_s / self.transfer_rate_bps for r in rates)
        busy = transfer_s + len(rates) * self.overhead_s
        return RoundFeasibility(
            feasible=busy <= self.round_s + 1e-12,
            busy_s=busy,
            round_s=self.round_s,
            stream_count=len(rates),
        )

    def can_admit(
        self, existing_rates_bps: Iterable[float], new_rate_bps: float
    ) -> bool:
        """Would the round stay feasible with one more stream?"""
        check_positive(new_rate_bps, "new_rate_bps")
        rates = list(existing_rates_bps)
        rates.append(new_rate_bps)
        return self.round_feasibility(rates).feasible

    def max_streams_at_rate(self, rate_bps: float) -> int:
        """How many identical streams of ``rate_bps`` one disk sustains
        (closed form of the round inequality)."""
        check_positive(rate_bps, "rate_bps")
        per_stream = (
            rate_bps * self.round_s / self.transfer_rate_bps + self.overhead_s
        )
        return int(self.round_s / per_stream)

    def service_time_s(self, block_bits: float) -> float:
        """Time to position and read one block (used by the playout
        engine to model per-block service latency)."""
        check_positive(block_bits, "block_bits")
        return self.overhead_s + block_bits / self.transfer_rate_bps
