"""Variant placement across the server fleet.

Variants name their hosting server (§2: "the localization of the file");
this module validates placements against a deployed fleet, summarises
per-server storage demand, and can re-balance a catalogue across servers
for the capacity-planning example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..documents.catalog import DocumentCatalog
from ..documents.document import Document
from ..documents.monomedia import Monomedia, Variant
from ..util.errors import ServerError
from .server import MediaServer

__all__ = ["PlacementReport", "validate_placement", "storage_by_server", "rebalance"]


@dataclass(frozen=True, slots=True)
class PlacementReport:
    """Summary of catalogue placement against a fleet."""

    known_servers: frozenset[str]
    referenced_servers: frozenset[str]
    orphan_servers: frozenset[str]   # referenced but not deployed
    variants_per_server: Mapping[str, int]
    bits_per_server: Mapping[str, float]

    @property
    def valid(self) -> bool:
        return not self.orphan_servers


def validate_placement(
    catalog: "DocumentCatalog | Iterable[Document]",
    servers: Sequence[MediaServer],
) -> PlacementReport:
    """Check every variant's server reference against the fleet."""
    known = frozenset(server.server_id for server in servers)
    variants_per: dict[str, int] = {}
    bits_per: dict[str, float] = {}
    referenced: set[str] = set()
    for document in catalog:
        for variant in document.iter_variants():
            referenced.add(variant.server_id)
            variants_per[variant.server_id] = (
                variants_per.get(variant.server_id, 0) + 1
            )
            bits_per[variant.server_id] = (
                bits_per.get(variant.server_id, 0.0) + variant.size_bits
            )
    return PlacementReport(
        known_servers=known,
        referenced_servers=frozenset(referenced),
        orphan_servers=frozenset(referenced - known),
        variants_per_server=variants_per,
        bits_per_server=bits_per,
    )


def storage_by_server(
    catalog: "DocumentCatalog | Iterable[Document]",
) -> dict[str, float]:
    """Total stored bits per server id."""
    totals: dict[str, float] = {}
    for document in catalog:
        for variant in document.iter_variants():
            totals[variant.server_id] = (
                totals.get(variant.server_id, 0.0) + variant.size_bits
            )
    return totals


def rebalance(
    document: Document, server_ids: Sequence[str]
) -> Document:
    """Re-assign variants of ``document`` round-robin over ``server_ids``.

    Returns a new document; used to spread a hot article across servers
    so the negotiation has genuinely distinct configurations to choose
    between.
    """
    if not server_ids:
        raise ServerError("rebalance needs at least one server id")
    components: list[Monomedia] = []
    index = 0
    for component in document.components:
        new_variants: list[Variant] = []
        for variant in component.variants:
            server = server_ids[index % len(server_ids)]
            index += 1
            new_variants.append(
                Variant(
                    variant_id=variant.variant_id,
                    monomedia_id=variant.monomedia_id,
                    codec=variant.codec,
                    qos=variant.qos,
                    size_bits=variant.size_bits,
                    block_stats=variant.block_stats,
                    server_id=server,
                    duration_s=variant.duration_s,
                )
            )
        components.append(component.with_variants(new_variants))
    return Document(
        document_id=document.document_id,
        title=document.title,
        components=tuple(components),
        sync=document.sync,
        copyright_cost=document.copyright_cost,
    )
