"""Round-based SCAN scheduling of admitted streams.

Within each round the CMFS serves every stream once; ordering the reads
by track position (SCAN) minimises seek distance.  We model track
positions abstractly (a position in [0, 1) per stream, advancing as the
file is consumed) — enough to reproduce the scheduler's two observable
effects: per-round service order and seek-overhead reduction relative to
FCFS, which the E-series ablation benchmark measures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..util.errors import ServerError
from ..util.validation import check_fraction, check_positive
from .disk import DiskModel

__all__ = ["SchedulingPolicy", "StreamState", "RoundPlan", "RoundScheduler"]


class SchedulingPolicy(enum.Enum):
    FCFS = "fcfs"
    SCAN = "scan"


@dataclass(slots=True)
class StreamState:
    """Scheduler-side state of one admitted stream."""

    stream_id: str
    rate_bps: float
    track_position: float = 0.0  # abstract head position in [0, 1)
    blocks_served: int = 0

    def __post_init__(self) -> None:
        check_positive(self.rate_bps, "rate_bps")
        check_fraction(self.track_position, "track_position")


@dataclass(frozen=True, slots=True)
class RoundPlan:
    """One round's service order and timing."""

    order: tuple[str, ...]
    seek_cost: float           # abstract total head travel in [0, n]
    busy_s: float
    feasible: bool


class RoundScheduler:
    """Plans service rounds over the currently admitted streams."""

    def __init__(
        self,
        disk: DiskModel,
        policy: SchedulingPolicy = SchedulingPolicy.SCAN,
    ) -> None:
        self.disk = disk
        self.policy = policy
        self._streams: dict[str, StreamState] = {}

    # -- stream management ------------------------------------------------------

    def add_stream(self, stream_id: str, rate_bps: float, track_position: float = 0.0) -> None:
        if stream_id in self._streams:
            raise ServerError(f"stream {stream_id!r} already scheduled")
        self._streams[stream_id] = StreamState(
            stream_id=stream_id, rate_bps=rate_bps, track_position=track_position
        )

    def remove_stream(self, stream_id: str) -> None:
        if self._streams.pop(stream_id, None) is None:
            raise ServerError(f"no stream {stream_id!r}")

    @property
    def stream_count(self) -> int:
        return len(self._streams)

    def stream_ids(self) -> tuple[str, ...]:
        return tuple(self._streams)

    def rates(self) -> tuple[float, ...]:
        return tuple(s.rate_bps for s in self._streams.values())

    # -- planning -------------------------------------------------------------------

    def plan_round(self) -> RoundPlan:
        """Compute the service order and seek cost for the next round."""
        streams = list(self._streams.values())
        if self.policy is SchedulingPolicy.SCAN:
            streams.sort(key=lambda s: s.track_position)
        feasibility = self.disk.round_feasibility(s.rate_bps for s in streams)
        seek_cost = self._seek_cost(streams)
        return RoundPlan(
            order=tuple(s.stream_id for s in streams),
            seek_cost=seek_cost,
            busy_s=feasibility.busy_s,
            feasible=feasibility.feasible,
        )

    @staticmethod
    def _seek_cost(streams: "list[StreamState]") -> float:
        """Total abstract head travel when serving in the given order,
        starting from position 0."""
        position = 0.0
        travel = 0.0
        for stream in streams:
            travel += abs(stream.track_position - position)
            position = stream.track_position
        return travel

    def execute_round(self, rng: "np.random.Generator | None" = None) -> RoundPlan:
        """Plan the round and advance stream head positions.

        Positions drift as files are consumed; with an RNG provided the
        drift is jittered (VBR block placement), otherwise deterministic.
        """
        plan = self.plan_round()
        for stream in self._streams.values():
            drift = 0.02
            if rng is not None:
                drift *= float(rng.uniform(0.5, 1.5))
            stream.track_position = (stream.track_position + drift) % 1.0
            stream.blocks_served += 1
        return plan
