"""Admission control for the continuous-media file server.

A new stream is admitted only if, with it added:

1. the disk round inequality still holds (:class:`DiskModel`);
2. the per-stream double buffer fits the buffer pool
   (two rounds of peak-rate data per stream);
3. the server NIC can carry the aggregate peak rate;
4. the configured hard stream limit is respected.

Each rule can be relaxed to build the "no admission control" baseline
used by experiment E7 (the blocking-vs-load comparison needs a server
that accepts everything and then degrades everyone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..util.validation import check_positive
from .disk import DiskModel

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """Outcome plus the first limiting resource (for diagnostics and
    the E7/E8 status breakdowns)."""

    admitted: bool
    limiting_resource: str = ""
    detail: str = ""

    def __bool__(self) -> bool:
        return self.admitted


@dataclass(frozen=True, slots=True)
class AdmissionController:
    """Evaluates the four admission rules against server state."""

    disk: DiskModel
    buffer_bits: float = 512_000_000.0   # 64 MB buffer pool
    nic_bps: float = 155_000_000.0       # OC-3 ATM interface
    max_streams: int = 64
    enforce_disk: bool = True
    enforce_buffer: bool = True
    enforce_nic: bool = True

    def __post_init__(self) -> None:
        check_positive(self.buffer_bits, "buffer_bits")
        check_positive(self.nic_bps, "nic_bps")
        check_positive(self.max_streams, "max_streams")

    def buffer_demand_bits(self, rate_bps: float) -> float:
        """Double-buffering demand of one stream: two rounds of data at
        peak rate (one being filled, one being drained)."""
        return 2.0 * rate_bps * self.disk.round_s

    def evaluate(
        self,
        existing_rates_bps: Iterable[float],
        new_rate_bps: float,
    ) -> AdmissionDecision:
        check_positive(new_rate_bps, "new_rate_bps")
        rates = list(existing_rates_bps)

        if len(rates) + 1 > self.max_streams:
            return AdmissionDecision(
                False, "streams",
                f"stream limit {self.max_streams} reached",
            )

        if self.enforce_disk and not self.disk.can_admit(rates, new_rate_bps):
            feasibility = self.disk.round_feasibility(rates + [new_rate_bps])
            return AdmissionDecision(
                False, "disk",
                f"round busy {feasibility.busy_s * 1e3:.1f} ms exceeds "
                f"{feasibility.round_s * 1e3:.1f} ms",
            )

        if self.enforce_buffer:
            demand = sum(self.buffer_demand_bits(r) for r in rates)
            demand += self.buffer_demand_bits(new_rate_bps)
            if demand > self.buffer_bits:
                return AdmissionDecision(
                    False, "buffer",
                    f"buffer demand {demand / 8e6:.1f} MB exceeds "
                    f"{self.buffer_bits / 8e6:.1f} MB",
                )

        if self.enforce_nic:
            aggregate = sum(rates) + new_rate_bps
            if aggregate > self.nic_bps:
                return AdmissionDecision(
                    False, "nic",
                    f"aggregate {aggregate / 1e6:.1f} Mbps exceeds NIC "
                    f"{self.nic_bps / 1e6:.1f} Mbps",
                )

        return AdmissionDecision(True)

    def headroom(self, existing_rates_bps: Iterable[float]) -> float:
        """Largest additional peak rate admissible right now (bps),
        by bisection over the admission test — used by capacity-planning
        examples and the FAILEDTRYLATER diagnostics."""
        rates = list(existing_rates_bps)
        lo, hi = 0.0, self.nic_bps
        if not self.evaluate(rates, max(hi, 1.0)).admitted:
            # bisect only when the top is infeasible; otherwise hi is it
            for _ in range(48):
                mid = (lo + hi) / 2.0
                if mid <= 0.0:
                    break
                if self.evaluate(rates, mid).admitted:
                    lo = mid
                else:
                    hi = mid
            return lo
        return hi
