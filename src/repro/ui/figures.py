"""Structure figures rendered from live objects (paper Figures 1–2).

``document_model_figure`` prints the OMT aggregation of Figure 1 for a
concrete document (document → monomedia → variants); ``mm_profile_figure``
prints the Figure 2 MM-profile tree for a concrete profile.  The F-series
benchmark regenerates both.
"""

from __future__ import annotations

import math

from ..core.profiles import UserProfile
from ..documents.document import Document
from ..util.units import format_bitrate, format_size

__all__ = ["document_model_figure", "mm_profile_figure"]


def document_model_figure(document: Document) -> str:
    """Figure 1 instantiated: the aggregation tree of one document."""
    lines = [
        f"Document {document.document_id!r} "
        f"({'monomedia' if document.is_monomedia else 'multimedia'})",
        f"|  title: {document.title}",
        f"|  copyright: {document.copyright_cost}",
        f"|  sync: {len(document.sync.temporal)} temporal relation(s), "
        f"{'spatial layout' if document.sync.spatial else 'no spatial layout'}",
    ]
    for component in document.components:
        lines.append(f"+- Monomedia {component.monomedia_id!r} "
                     f"[{component.medium.value}] '{component.title}' "
                     f"{component.duration_s:g}s")
        for variant in component.variants:
            stats = variant.block_stats
            rate = (
                format_bitrate(stats.avg_block_bits * stats.blocks_per_second)
                if stats.blocks_per_second
                else format_size(variant.size_bits)
            )
            lines.append(
                f"|  +- Variant {variant.variant_id!r}: {variant.codec} "
                f"{variant.qos} ~{rate} @ {variant.server_id}"
            )
    return "\n".join(lines)


def mm_profile_figure(profile: UserProfile) -> str:
    """Figure 2 instantiated: the MM-profile tree of one user profile."""
    lines = [f"UserProfile {profile.name!r}"]
    for title, mm in (("desired", profile.desired), ("worst acceptable", profile.worst)):
        lines.append(f"+- MM profile ({title})")
        for medium, qos in mm.qos_points():
            lines.append(f"|  +- {medium.value} profile: {qos}")
        lines.append(f"|  +- cost profile: {mm.cost}")
        lines.append(
            f"|  +- time profile: deadline {mm.time.delivery_deadline_s:g}s, "
            f"choice period {mm.time.choice_period_s:g}s"
        )
    importance = profile.importance
    lines.append("+- importance profile")
    if importance is not None:
        cost_weight = getattr(importance, "cost_per_dollar", None)
        if cost_weight is not None:
            lines.append(f"   +- cost importance: {cost_weight:g} per $")
        media_weight = getattr(importance, "media_weight", None)
        if media_weight:
            weights = ", ".join(
                f"{medium.value}={weight:g}"
                for medium, weight in media_weight.items()
                if not math.isclose(weight, 1.0)
            )
            lines.append(f"   +- media weights: {weights or 'uniform'}")
    return "\n".join(lines)
