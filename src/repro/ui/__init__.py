"""Text-mode QoS GUI (paper §8) and structure figures (Figures 1–2)."""

from .figures import document_model_figure, mm_profile_figure
from .widgets import button_row, choice_row, scale_bar
from .windows import (
    audio_profile_window,
    booking_window,
    cost_profile_window,
    information_window,
    main_window,
    profile_component_window,
    video_profile_window,
)

__all__ = [
    "booking_window",
    "document_model_figure",
    "mm_profile_figure",
    "button_row",
    "choice_row",
    "scale_bar",
    "audio_profile_window",
    "cost_profile_window",
    "information_window",
    "main_window",
    "profile_component_window",
    "video_profile_window",
]
