"""The QoS GUI windows (paper §8, Figures 3–7) rendered as text.

Each function renders one window of the original Motif GUI from live
objects; the window inventory and contents follow §8:

* **main window** (Fig. 3/4) — select / edit / delete a user profile,
  set the default, OK to start negotiation, EXIT;
* **profile component window** (Fig. 5) — the monomedia/time/cost
  profiles of one user profile, with the constraint buttons of
  unsatisfiable profiles shown active (red) after a failed negotiation;
* **per-medium profile windows** (Fig. 6) — scaling bars with desired,
  worst-acceptable and (after negotiation) offered values;
* **information window** (Fig. 7) — the negotiation status, and on
  success the offered QoS parameter values and cost, waiting for OK
  within ``choicePeriod``.
"""

from __future__ import annotations

from ..core.negotiation import NegotiationResult
from ..core.profile_manager import ProfileManager
from ..core.profiles import MMProfile, UserProfile
from ..documents.media import (
    ColorMode,
    FROZEN_FRAME_RATE,
    HDTV_FRAME_RATE,
    HDTV_RESOLUTION,
    Medium,
    MIN_RESOLUTION,
)
from ..documents.quality import AudioQoS, ImageQoS, TextQoS, VideoQoS
from ..util.tables import render_box
from .widgets import button_row, choice_row, scale_bar

__all__ = [
    "booking_window",
    "main_window",
    "profile_component_window",
    "video_profile_window",
    "audio_profile_window",
    "cost_profile_window",
    "information_window",
]


def main_window(manager: ProfileManager) -> str:
    """Figure 3/4: the profile list with the GUI's command buttons."""
    lines = ["User profiles:"]
    for name in manager.names():
        marker = "*" if name == manager.default_name else " "
        lines.append(f"  {marker} {name}")
    lines.append("")
    lines.append(button_row("OK", "Edit", "Delete", "Set default", "EXIT"))
    return render_box(lines, title="QoS GUI", width=52)


def _qos_lines(bound_desired, bound_worst, offered=None) -> "list[str]":
    lines: list[str] = []
    if isinstance(bound_desired, VideoQoS):
        worst = bound_worst
        offer = offered if isinstance(offered, VideoQoS) else None
        lines.append(
            choice_row(
                "color",
                [str(mode) for mode in ColorMode],
                str(bound_desired.color),
            )
        )
        lines.append(
            scale_bar(
                "frame rate", FROZEN_FRAME_RATE, HDTV_FRAME_RATE,
                desired=bound_desired.frame_rate,
                worst=worst.frame_rate if worst else None,
                offer=offer.frame_rate if offer else None,
                unit="f/s",
            )
        )
        lines.append(
            scale_bar(
                "resolution", MIN_RESOLUTION, HDTV_RESOLUTION,
                desired=bound_desired.resolution,
                worst=worst.resolution if worst else None,
                offer=offer.resolution if offer else None,
                unit="px",
            )
        )
    elif isinstance(bound_desired, AudioQoS):
        lines.append(
            choice_row(
                "quality", ["telephone", "radio", "cd"],
                str(bound_desired.grade),
            )
        )
        lines.append(
            choice_row("language",
                       ["english", "french", "german", "spanish"],
                       str(bound_desired.language))
        )
        if isinstance(offered, AudioQoS):
            lines.append(f"offered      {offered}")
    elif isinstance(bound_desired, (ImageQoS,)):
        lines.append(
            choice_row(
                "color", [str(mode) for mode in ColorMode],
                str(bound_desired.color),
            )
        )
        lines.append(
            scale_bar(
                "resolution", MIN_RESOLUTION, HDTV_RESOLUTION,
                desired=bound_desired.resolution,
                worst=bound_worst.resolution if bound_worst else None,
                offer=offered.resolution if isinstance(offered, ImageQoS) else None,
                unit="px",
            )
        )
    elif isinstance(bound_desired, TextQoS):
        lines.append(
            choice_row("language",
                       ["english", "french", "german", "spanish"],
                       str(bound_desired.language))
        )
        if isinstance(offered, TextQoS):
            lines.append(f"offered      {offered}")
    return lines


def profile_component_window(
    profile: UserProfile,
    *,
    violated_media: "set[Medium] | None" = None,
    cost_violated: bool = False,
) -> str:
    """Figure 5: the component list; violated constraints marked red (!)."""
    violated_media = violated_media or set()
    active = {medium.value for medium in violated_media}
    if cost_violated:
        active.add("cost")
    lines = [f"Profile: {profile.name}", ""]
    component_buttons = [m.value for m in profile.media()] + ["time", "cost"]
    lines.append(button_row(*component_buttons, active=active))
    lines.append("")
    lines.append(f"max cost: {profile.max_cost}")
    lines.append(
        f"delivery deadline: {profile.desired.time.delivery_deadline_s:g} s, "
        f"choice period: {profile.desired.time.choice_period_s:g} s"
    )
    lines.append("")
    lines.append(button_row("Save", "Save as", "CANCEL"))
    return render_box(lines, title="Profile components", width=60)


def video_profile_window(
    profile: UserProfile, offer: "MMProfile | None" = None
) -> str:
    """Figure 6: the video profile editor with offer bars."""
    desired = profile.desired.video
    worst = profile.worst.video
    offered = offer.video if offer is not None else None
    if desired is None:
        lines = ["(no video constraints in this profile)"]
    else:
        lines = _qos_lines(desired, worst, offered)
    lines.append("")
    lines.append(button_row("OK", "Save", "Save as", "show example", "CANCEL"))
    return render_box(lines, title="Video profile", width=66)


def audio_profile_window(
    profile: UserProfile, offer: "MMProfile | None" = None
) -> str:
    """The audio sibling of Figure 6."""
    desired = profile.desired.audio
    worst = profile.worst.audio
    offered = offer.audio if offer is not None else None
    if desired is None:
        lines = ["(no audio constraints in this profile)"]
    else:
        lines = _qos_lines(desired, worst, offered)
    lines.append("")
    lines.append(button_row("OK", "Save", "Save as", "show example", "CANCEL"))
    return render_box(lines, title="Audio profile", width=66)


def cost_profile_window(profile: UserProfile) -> str:
    """The cost profile editor."""
    importance = profile.importance
    cost_weight = getattr(importance, "cost_per_dollar", 0.0)
    lines = [
        scale_bar("max cost", 0, 20, desired=profile.max_cost.amount, unit="$"),
        scale_bar("importance", 0, 10, desired=cost_weight),
        "",
        button_row("OK", "Save", "Save as", "CANCEL"),
    ]
    return render_box(lines, title="Cost profile", width=66)


def information_window(
    result: NegotiationResult, *, choice_period_s: "float | None" = None
) -> str:
    """Figure 7: the negotiation outcome presented to the user."""
    lines = [f"negotiation status: {result.status}"]
    if result.user_offer is not None:
        lines.append("")
        for medium, qos in result.user_offer.qos_points():
            lines.append(f"  {medium.value:<8} {qos}")
        lines.append(f"  {'cost':<8} {result.user_offer.cost}")
    if result.status.reserves_resources:
        period = choice_period_s
        if period is None and result.commitment is not None:
            period = result.commitment.choice_period_s
        lines.append("")
        lines.append(
            f"press OK within {period:g} s to start the delivery"
            if period is not None
            else "press OK to start the delivery"
        )
        lines.append("")
        lines.append(button_row("OK", "CANCEL"))
    else:
        lines.append("")
        lines.append(button_row("OK"))
    return render_box(lines, title="Information", width=60)


def booking_window(plan) -> str:
    """The advance-booking counterpart of the information window
    ([Haf 96] extension): the reserved future window, its offer, and
    the claim/cancel actions."""
    from ..util.units import format_duration

    lines = [
        f"booking {plan.plan_id}: {plan.status}",
        "",
        f"  window : t={plan.start_s:g}s .. t={plan.end_s:g}s "
        f"({format_duration(plan.end_s - plan.start_s)})",
    ]
    if plan.user_offer is not None:
        for medium, qos in plan.user_offer.qos_points():
            lines.append(f"  {medium.value:<8} {qos}")
        lines.append(f"  {'cost':<8} {plan.user_offer.cost}")
    lines.append("")
    state = (
        "claimed" if plan.claimed
        else "cancelled" if plan.cancelled
        else f"{len(plan.bookings)} resource bookings held"
    )
    lines.append(f"  state  : {state}")
    lines.append("")
    lines.append(button_row("Claim", "Cancel"))
    return render_box(lines, title="Advance booking", width=60)
