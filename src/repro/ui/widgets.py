"""Text-mode widgets for the QoS GUI windows.

The original GUI (AIC/Motif, §8) used scaling bars and predefined-value
selectors; these render as plain text: a scale bar marks the worst
acceptable value, the desired value, and optionally the offered value on
one line, so the §8 behaviour ("the offer provided by the system is also
displayed for each QoS parameter on the offer scaling bar") is visible
in a terminal.
"""

from __future__ import annotations

from ..util.errors import ValidationError

__all__ = ["scale_bar", "button_row", "choice_row"]


def scale_bar(
    label: str,
    lo: float,
    hi: float,
    *,
    desired: "float | None" = None,
    worst: "float | None" = None,
    offer: "float | None" = None,
    width: int = 40,
    unit: str = "",
) -> str:
    """One scaling bar with markers: ``w`` worst, ``d`` desired, ``o``
    offer (``*`` where two coincide)."""
    if hi <= lo:
        raise ValidationError(f"scale needs hi > lo, got [{lo}, {hi}]")
    cells = [" "] * width

    def pos(value: float) -> int:
        clamped = min(max(value, lo), hi)
        return min(int((clamped - lo) / (hi - lo) * (width - 1)), width - 1)

    markers = []
    if worst is not None:
        markers.append((pos(worst), "w"))
    if desired is not None:
        markers.append((pos(desired), "d"))
    if offer is not None:
        markers.append((pos(offer), "o"))
    for index, mark in markers:
        cells[index] = "*" if cells[index] != " " else mark
    bar = "".join(cells)
    values = []
    if worst is not None:
        values.append(f"w={worst:g}{unit}")
    if desired is not None:
        values.append(f"d={desired:g}{unit}")
    if offer is not None:
        values.append(f"o={offer:g}{unit}")
    return f"{label:<12} [{bar}] {' '.join(values)}"


def button_row(*labels: str, active: "set[str] | None" = None) -> str:
    """A row of GUI buttons; active (red, §8) buttons are marked ``!``."""
    active = active or set()
    rendered = []
    for label in labels:
        mark = "!" if label in active else " "
        rendered.append(f"[{mark}{label}{mark}]")
    return "  ".join(rendered)


def choice_row(label: str, choices: "list[str]", selected: str) -> str:
    """A predefined-values selector with the current choice bracketed."""
    rendered = [
        f"<{choice}>" if choice == selected else f" {choice} "
        for choice in choices
    ]
    return f"{label:<12} " + " ".join(rendered)
