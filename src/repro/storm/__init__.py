"""Storm survival: backpressure and batched mass re-reservation.

A *renegotiation storm* is what a brownout does to the active phase: a
fractional capacity loss sheds dozens of holders in one monitor sweep,
and every victim — plus every new arrival refused FAILEDTRYLATER —
converges on the QoS manager at once.  This package keeps the manager
live and leak-free through it:

* :class:`~repro.storm.gate.AdmissionGate` — a token-bucket admission
  gate with a bounded, seeded-jitter retry queue and explicit load
  shedding (honest ``retry_after_s`` hints) in front of
  ``negotiate``/``renegotiate``;
* :class:`~repro.storm.controller.StormController` — buffers violations
  into waves, batches victims by capability class, downgrades in place
  along a short class-wide candidate list, and falls back to the full
  §4 renegotiation only when the class target does not fit.

The deterministic storm scenario that drives both lives in
:mod:`repro.sim.storm` (``python -m repro storm``).
"""

from .controller import StormController, StormControllerStats
from .gate import AdmissionGate, GatePolicy, GateStats, TokenBucket

__all__ = [
    "AdmissionGate",
    "GatePolicy",
    "GateStats",
    "StormController",
    "StormControllerStats",
    "TokenBucket",
]
