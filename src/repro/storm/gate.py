"""Admission backpressure in front of the QoS manager.

A renegotiation storm is dangerous twice over: the first wave of
violations triggers mass renegotiation, and every request that fails
FAILEDTRYLATER comes straight back — synchronized — until the manager
spends all its time walking offer lists that cannot commit.  The
:class:`AdmissionGate` breaks that loop in front of
:meth:`~repro.core.negotiation.QoSManager.negotiate` /
:meth:`~repro.core.negotiation.QoSManager.renegotiate`:

* a **token bucket** bounds the rate at which negotiation attempts
  reach the manager at all;
* requests that find the bucket empty wait in a **bounded retry
  queue**, re-dispatched at seeded-jitter times (jitter de-synchronizes
  the retry herd — without it every shed request comes back on the same
  tick it was refused on);
* a FAILEDTRYLATER verdict re-parks the request for the hinted
  ``retry_after_s`` (the breaker's quarantine expiry when one is open)
  instead of hammering the manager, up to a bounded retry budget;
* when the queue is full the gate **sheds load** explicitly: the caller
  gets a synthetic FAILEDTRYLATER whose ``retry_after_s`` is an honest
  estimate — time until a token is free plus the time to drain the
  queue ahead of it — not a hardcoded "try later".

Everything is driven off the deterministic event loop and one seeded
generator, so a storm run is exactly reproducible.  With
``enabled=False`` the gate is a pure passthrough; the storm scenario
uses that mode to measure what the thundering herd costs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..core.negotiation import NegotiationResult
from ..core.status import NegotiationStatus
from ..util.rng import RngLike, make_rng
from ..util.validation import (
    check_at_least,
    check_fraction,
    check_non_negative,
    check_positive,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..session.engine import EventLoop
    from ..telemetry import Telemetry

__all__ = ["GatePolicy", "GateStats", "TokenBucket", "AdmissionGate"]

Attempt = Callable[[], NegotiationResult]
Deliver = Callable[[NegotiationResult], None]
Start = Callable[[Deliver], None]


@dataclass(frozen=True, slots=True)
class GatePolicy:
    """Knobs of one admission gate.

    ``rate_per_s``/``burst`` shape the token bucket; ``queue_limit``
    bounds the retry queue (beyond it, requests are shed);
    ``retry_limit`` is how many FAILEDTRYLATER verdicts a request may
    re-park on before the gate passes the failure through to the
    caller; ``jitter`` spreads every scheduled delay by up to that
    fraction either way.
    """

    rate_per_s: float = 4.0
    burst: int = 16
    queue_limit: int = 64
    retry_limit: int = 4
    jitter: float = 0.2
    min_retry_delay_s: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.rate_per_s, "rate_per_s")
        check_at_least(self.burst, 1, "burst", integer=True)
        check_at_least(self.queue_limit, 0, "queue_limit", integer=True)
        check_at_least(self.retry_limit, 0, "retry_limit", integer=True)
        check_fraction(self.jitter, "jitter")
        check_non_negative(self.min_retry_delay_s, "min_retry_delay_s")


@dataclass(slots=True)
class GateStats:
    """What the gate did, for the storm report."""

    submitted: int = 0
    admitted: int = 0
    queued: int = 0
    shed: int = 0
    redispatched: int = 0
    requeued_try_later: int = 0
    delivered: int = 0
    max_queue_depth: int = 0

    def as_dict(self) -> "dict[str, int]":
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "queued": self.queued,
            "shed": self.shed,
            "redispatched": self.redispatched,
            "requeued_try_later": self.requeued_try_later,
            "delivered": self.delivered,
            "max_queue_depth": self.max_queue_depth,
        }


class TokenBucket:
    """A classic token bucket on simulated time."""

    __slots__ = ("rate_per_s", "burst", "_tokens", "_stamp")

    def __init__(
        self, rate_per_s: float, burst: int, *, now: float = 0.0
    ) -> None:
        self.rate_per_s = check_positive(rate_per_s, "rate_per_s")
        self.burst = int(check_at_least(burst, 1, "burst", integer=True))
        self._tokens = float(self.burst)  # starts full
        self._stamp = float(now)

    def _refill(self, now: float) -> None:
        if now > self._stamp:
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._stamp) * self.rate_per_s,
            )
        self._stamp = max(self._stamp, now)

    def try_take(self, now: float) -> bool:
        """Consume one token if available."""
        self._refill(now)
        if self._tokens >= 1.0 - 1e-12:
            self._tokens -= 1.0
            return True
        return False

    def time_until_token(self, now: float) -> float:
        """How long until one token is available (0 when one is)."""
        self._refill(now)
        if self._tokens >= 1.0 - 1e-12:
            return 0.0
        return (1.0 - self._tokens) / self.rate_per_s

    @property
    def tokens(self) -> float:
        return self._tokens


@dataclass(slots=True)
class _Pending:
    """One request parked in the retry queue.

    Exactly one of ``attempt`` (synchronous negotiation) or ``start``
    (deferred: the concurrent service spawns a task and calls back with
    the verdict) is set.  ``last_hint_s`` remembers the largest
    manager/breaker ``retry_after_s`` seen on earlier FAILEDTRYLATER
    verdicts, so a later shed surfaces the *max* of the gate's own
    estimate and the known-closed window — hints stay monotone no
    matter which path delivers last.
    """

    label: str
    attempt: "Attempt | None"
    deliver: Deliver
    submitted_at: float
    retries_left: int
    start: "Start | None" = None
    last_hint_s: "float | None" = None
    parked_at: float = 0.0
    """When the request last entered the gate's control (submission,
    or the FTL verdict that re-parked it) — the base of the per-dispatch
    ``storm.gate.wait_s`` observation, so waits never double-count the
    time an earlier attempt spent negotiating."""


class AdmissionGate:
    """Token-bucket + bounded-retry-queue front of the QoS manager.

    Callers :meth:`submit` a closure running the actual negotiation and
    a delivery callback; the gate decides *when* the closure runs — now
    (token available), later (parked with jitter), or never (shed, with
    an honest retry hint delivered instead).
    """

    def __init__(
        self,
        loop: "EventLoop",
        *,
        policy: "GatePolicy | None" = None,
        seed: RngLike = 0,
        telemetry: "Telemetry | None" = None,
        enabled: bool = True,
    ) -> None:
        if telemetry is None:
            from ..telemetry import Telemetry as _Telemetry

            telemetry = _Telemetry.disabled()
        self.loop = loop
        self.policy = policy or GatePolicy()
        self.telemetry = telemetry
        self.enabled = enabled
        self.stats = GateStats()
        self.bucket = TokenBucket(
            self.policy.rate_per_s, self.policy.burst, now=loop.now
        )
        self._rng = make_rng(seed)
        self._seq = itertools.count(1)
        # Min-heap of (not_before, seq, pending); seq breaks ties so
        # equal not-befores dispatch in park order, deterministically.
        self._queue: "list[tuple[float, int, _Pending]]" = []

    # -- public surface ------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def submit(self, label: str, attempt: Attempt, deliver: Deliver) -> None:
        """Route one negotiation request through the gate.

        ``attempt`` runs the negotiation (it is only invoked when the
        gate dispatches the request); ``deliver`` receives the terminal
        :class:`NegotiationResult` — possibly a synthetic shed verdict.
        """
        self.stats.submitted += 1
        pending = _Pending(
            label=label,
            attempt=attempt,
            deliver=deliver,
            submitted_at=self.loop.now,
            retries_left=self.policy.retry_limit,
            parked_at=self.loop.now,
        )
        if not self.enabled:
            # Passthrough: the thundering herd, measured for comparison.
            self.stats.admitted += 1
            self._decision("admitted")
            self._finish(pending, pending.attempt())
            return
        self._dispatch_or_park(pending)

    def submit_deferred(
        self, label: str, start: Start, deliver: Deliver
    ) -> None:
        """Like :meth:`submit`, for negotiations that finish later.

        ``start`` is invoked when the gate dispatches the request; it
        receives a callback to invoke with the terminal
        :class:`NegotiationResult` once the (cooperative) negotiation
        completes.  The gate applies the same FAILEDTRYLATER
        requeue/shed policy to that verdict as it does to synchronous
        attempts.
        """
        self.stats.submitted += 1
        pending = _Pending(
            label=label,
            attempt=None,
            deliver=deliver,
            submitted_at=self.loop.now,
            retries_left=self.policy.retry_limit,
            start=start,
            parked_at=self.loop.now,
        )
        if not self.enabled:
            self.stats.admitted += 1
            self._decision("admitted")
            start(lambda result: self._finish(pending, result))
            return
        self._dispatch_or_park(pending)

    # -- dispatch machinery --------------------------------------------------------

    def _dispatch_or_park(self, pending: _Pending) -> None:
        now = self.loop.now
        if self.bucket.try_take(now):
            self.stats.admitted += 1
            self._decision("admitted")
            self._run(pending)
        elif len(self._queue) < self.policy.queue_limit:
            self.stats.queued += 1
            self._decision("queued")
            self._park(pending, self.bucket.time_until_token(now))
        else:
            self._shed(pending)

    def _run(self, pending: _Pending) -> None:
        self.telemetry.observe(
            "storm.gate.wait_s", self.loop.now - pending.parked_at
        )
        if pending.start is not None:
            pending.start(
                lambda result: self._on_result(pending, result)
            )
            return
        assert pending.attempt is not None
        self._on_result(pending, pending.attempt())

    def _on_result(
        self, pending: _Pending, result: NegotiationResult
    ) -> None:
        """Apply the retry/shed policy to one negotiation verdict."""
        if (
            result.status is NegotiationStatus.FAILED_TRY_LATER
            and pending.retries_left > 0
        ):
            # Honour the manager's own hint (breaker quarantine expiry
            # when one is open) instead of guessing.
            pending.retries_left -= 1
            pending.parked_at = self.loop.now
            self.stats.requeued_try_later += 1
            self.telemetry.count("storm.gate.retries")
            hint = result.retry_after_s or self.policy.min_retry_delay_s
            pending.last_hint_s = max(pending.last_hint_s or 0.0, hint)
            if len(self._queue) < self.policy.queue_limit:
                self._park(
                    pending, max(hint, self.policy.min_retry_delay_s)
                )
            else:
                self._shed(pending)
            return
        if result.status is NegotiationStatus.FAILED_TRY_LATER:
            # Terminal pass-through of the manager's refusal: the
            # client's next submission still pays the gate's own
            # readmission cost, so surface the *max* of every hint
            # source — never whichever path happened to run last.
            result.retry_after_s = max(
                result.retry_after_s or 0.0,
                pending.last_hint_s or 0.0,
                self.bucket.time_until_token(self.loop.now),
            )
        self._finish(pending, result)

    def _park(self, pending: _Pending, delay_s: float) -> None:
        not_before = self.loop.now + self._jittered(
            max(delay_s, self.policy.min_retry_delay_s)
        )
        heapq.heappush(
            self._queue, (not_before, next(self._seq), pending)
        )
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, len(self._queue)
        )
        self._gauge()
        self.loop.at(
            not_before, self._pump, label=f"gate:pump:{pending.label}"
        )

    def _pump(self) -> None:
        """Drain every due queue entry the bucket can pay for."""
        now = self.loop.now
        while self._queue and self._queue[0][0] <= now + 1e-9:
            if not self.bucket.try_take(now):
                # Due but no token: push the head back out by the
                # token wait so the herd stays spread.
                _, _, head = heapq.heappop(self._queue)
                self._gauge()
                self._park(head, self.bucket.time_until_token(now))
                return
            _, _, pending = heapq.heappop(self._queue)
            self._gauge()
            self.stats.redispatched += 1
            self._run(pending)

    def _shed(self, pending: _Pending) -> None:
        """Queue full: refuse explicitly, with an honest hint.

        When an earlier attempt already produced a breaker hint
        (``last_hint_s``), the shed hint is the max of that and the
        gate's own drain estimate — retrying into a known-closed
        quarantine window helps nobody.
        """
        self.stats.shed += 1
        self._decision("shed")
        hint = self._shed_hint()
        if pending.last_hint_s is not None:
            hint = max(hint, pending.last_hint_s)
        self._finish(
            pending,
            NegotiationResult(
                status=NegotiationStatus.FAILED_TRY_LATER,
                retry_after_s=hint,
            ),
        )

    def _shed_hint(self) -> float:
        """When is resubmitting worth it?  After a token frees *and*
        the queue ahead drains at the refill rate."""
        now = self.loop.now
        return (
            self.bucket.time_until_token(now)
            + len(self._queue) / self.policy.rate_per_s
        )

    def _finish(self, pending: _Pending, result: NegotiationResult) -> None:
        self.stats.delivered += 1
        self.telemetry.observe(
            "storm.retry.convergence_s",
            self.loop.now - pending.submitted_at,
        )
        pending.deliver(result)

    # -- small helpers -------------------------------------------------------------

    def _jittered(self, delay_s: float) -> float:
        if self.policy.jitter <= 0.0:
            return delay_s
        spread = self.policy.jitter * float(self._rng.uniform(-1.0, 1.0))
        return max(delay_s * (1.0 + spread), 0.0)

    def _decision(self, decision: str) -> None:
        self.telemetry.count("storm.gate.decisions", decision=decision)

    def _gauge(self) -> None:
        self.telemetry.metrics.gauge_set(
            "storm.queue.depth", float(len(self._queue))
        )

    def __repr__(self) -> str:
        return (
            f"AdmissionGate({'on' if self.enabled else 'passthrough'}, "
            f"{self.queue_depth} queued, "
            f"{self.bucket.tokens:.1f} tokens)"
        )
